"""The ordered label set of Figures 6 and 11.

The paper stores the arrival labels ``kappa(e)`` of the elements in
``R_N`` "according to an increasing ordering", with constant-time links
between each label, its element in the R-tree, and the interval(s) whose
endpoints carry it.  Because a data stream hands labels to the structure
in strictly increasing order — and deletions may strike anywhere — the
right substrate is a doubly-linked list threaded through a hash map:

* ``append(kappa, payload)``: O(1) (labels arrive in increasing order);
* ``remove(kappa)``: O(1);
* ``oldest`` / ``youngest``: O(1) (expiry checks look at the head);
* ``payload(kappa)`` and membership: O(1).

The payload is opaque to this module; the n-of-N engine stores its
per-element record there, which realises the paper's 1-1 links between
the label set, the R-tree entries and the interval-tree entries.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.exceptions import (
    DuplicateKeyError,
    EmptyStructureError,
    KeyNotFoundError,
    corruption,
)

P = TypeVar("P")


class _LabelNode(Generic[P]):
    __slots__ = ("kappa", "payload", "prev", "next")

    def __init__(self, kappa: int, payload: P) -> None:
        self.kappa = kappa
        self.payload = payload
        self.prev: Optional["_LabelNode[P]"] = None
        self.next: Optional["_LabelNode[P]"] = None


class LabelSet(Generic[P]):
    """Ordered set of arrival labels with O(1) append/remove/min.

    Labels must be appended in strictly increasing order, mirroring
    stream arrival; any label may be removed at any time.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, _LabelNode[P]] = {}
        self._head: Optional[_LabelNode[P]] = None
        self._tail: Optional[_LabelNode[P]] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, kappa: int, payload: P) -> None:
        """Append ``kappa`` (larger than any label ever stored).

        Raises
        ------
        DuplicateKeyError
            If ``kappa`` is already present.
        ValueError
            If ``kappa`` does not exceed the current youngest label.
        """
        if self._tail is not None and kappa <= self._tail.kappa:
            raise ValueError(
                f"labels must arrive in increasing order: "
                f"{kappa} <= {self._tail.kappa}"
            )
        if kappa in self._nodes:  # pragma: no cover - defensive; the
            # monotonicity check above already rejects re-use while any
            # larger-or-equal label is present.
            raise DuplicateKeyError(f"label already present: {kappa}")
        node = _LabelNode(kappa, payload)
        self._nodes[kappa] = node
        if self._tail is None:
            self._head = self._tail = node
        else:
            node.prev = self._tail
            self._tail.next = node
            self._tail = node

    def remove(self, kappa: int) -> P:
        """Remove ``kappa``; return its payload.

        Raises
        ------
        KeyNotFoundError
            If ``kappa`` is absent.
        """
        node = self._nodes.pop(kappa, None)
        if node is None:
            raise KeyNotFoundError(f"label not present: {kappa}")
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None
        return node.payload

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def oldest(self) -> Tuple[int, P]:
        """``(kappa, payload)`` of the smallest label.

        Raises
        ------
        EmptyStructureError
            If the set is empty.
        """
        if self._head is None:
            raise EmptyStructureError("oldest() on an empty label set")
        return self._head.kappa, self._head.payload

    def youngest(self) -> Tuple[int, P]:
        """``(kappa, payload)`` of the largest label."""
        if self._tail is None:
            raise EmptyStructureError("youngest() on an empty label set")
        return self._tail.kappa, self._tail.payload

    def payload(self, kappa: int) -> P:
        """The payload attached to ``kappa``."""
        node = self._nodes.get(kappa)
        if node is None:
            raise KeyNotFoundError(f"label not present: {kappa}")
        return node.payload

    def get(self, kappa: int, default: Optional[P] = None) -> Optional[P]:
        """The payload attached to ``kappa``, or ``default``."""
        node = self._nodes.get(kappa)
        return default if node is None else node.payload

    def __contains__(self, kappa: int) -> bool:
        return kappa in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return bool(self._nodes)

    def __iter__(self) -> Iterator[int]:
        """Yield labels in increasing order."""
        node = self._head
        while node is not None:
            yield node.kappa
            node = node.next

    def items(self) -> Iterator[Tuple[int, P]]:
        """Yield ``(kappa, payload)`` in increasing label order."""
        node = self._head
        while node is not None:
            yield node.kappa, node.payload
            node = node.next

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify list/map consistency and strict ordering.

        Raises
        ------
        StructureCorruptionError
            On the first violated property (survives ``python -O``).
        """
        seen = 0
        node = self._head
        prev: Optional[_LabelNode[P]] = None
        while node is not None:
            if self._nodes.get(node.kappa) is not node:
                raise corruption(
                    "labelset",
                    "labelset-links",
                    f"map/list mismatch at label {node.kappa}",
                )
            if prev is not None:
                if not prev.kappa < node.kappa:
                    raise corruption(
                        "labelset",
                        "labelset-order",
                        f"ordering violated: {prev.kappa} before {node.kappa}",
                    )
                if node.prev is not prev:
                    raise corruption(
                        "labelset",
                        "labelset-links",
                        f"broken back-link at label {node.kappa}",
                    )
            seen += 1
            prev = node
            node = node.next
        if not (prev is self._tail or (prev is None and self._tail is None)):
            raise corruption(
                "labelset", "labelset-links", "tail pointer out of date"
            )
        if seen != len(self._nodes):
            raise corruption(
                "labelset",
                "labelset-links",
                f"node count mismatch: walked {seen}, "
                f"indexed {len(self._nodes)}",
            )
