"""Minimum bounding rectangles (MBRs) for the in-memory R-tree.

An MBR is an axis-aligned box in ``d`` dimensions, stored as two tuples:
the *lower* corner (coordinate-wise minimum) and the *upper* corner
(coordinate-wise maximum).  Besides the classic R-tree box algebra
(union, enlargement, containment, overlap) this module implements the
three dominance-oriented region tests from Figure 7 of the paper:

``may_contain_dominated(q)``
    The box's *candidate region* test for depth-first dominance
    reporting: can the box contain a point that the query point ``q``
    (weakly) dominates?  True iff ``q_i <= upper_i`` on every axis.

``fully_dominated_by(q)``
    The *l-corner* test: does ``q`` dominate *every* point of the box?
    True iff ``q_i <= lower_i`` on every axis; in that case the whole
    subtree can be harvested without further inspection.

``may_contain_dominator(q)`` / ``fully_dominates(q)``
    The symmetric tests used by the best-first critical-dominator
    search: the box can contain a dominator of ``q`` iff
    ``lower_i <= q_i`` everywhere, and the *r-corner* case — every
    point of the box dominates ``q`` — holds iff ``upper_i <= q_i``
    everywhere.

Dominance here is *weak* (``<=`` on every axis); see
:mod:`repro.core.dominance` for the rationale.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.exceptions import DimensionMismatchError

Point = Tuple[float, ...]


class MBR:
    """An axis-aligned minimum bounding rectangle in ``d`` dimensions.

    Instances are immutable; all combining operations return new boxes.

    Parameters
    ----------
    lower:
        Coordinate-wise minimum corner.
    upper:
        Coordinate-wise maximum corner.  Must satisfy
        ``lower[i] <= upper[i]`` on every axis.
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower: Sequence[float], upper: Sequence[float]) -> None:
        if len(lower) != len(upper):
            raise DimensionMismatchError(len(lower), len(upper))
        lo = tuple(float(v) for v in lower)
        hi = tuple(float(v) for v in upper)
        for axis, (a, b) in enumerate(zip(lo, hi)):
            if a > b:
                raise ValueError(
                    f"invalid MBR: lower[{axis}]={a} > upper[{axis}]={b}"
                )
        self.lower: Point = lo
        self.upper: Point = hi

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """A degenerate box covering exactly one point."""
        return cls(point, point)

    @classmethod
    def union_of(cls, boxes: Iterable["MBR"]) -> "MBR":
        """The tightest box enclosing every box in ``boxes``.

        Raises
        ------
        ValueError
            If ``boxes`` is empty.
        """
        it = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_of() needs at least one box") from None
        lo = list(first.lower)
        hi = list(first.upper)
        for box in it:
            for axis in range(len(lo)):
                if box.lower[axis] < lo[axis]:
                    lo[axis] = box.lower[axis]
                if box.upper[axis] > hi[axis]:
                    hi[axis] = box.upper[axis]
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of axes."""
        return len(self.lower)

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree "margin" metric)."""
        return sum(b - a for a, b in zip(self.lower, self.upper))

    def area(self) -> float:
        """Product of side lengths (volume, in d dimensions)."""
        result = 1.0
        for a, b in zip(self.lower, self.upper):
            result *= b - a
        return result

    def center(self) -> Point:
        """Geometric centre of the box."""
        return tuple((a + b) / 2.0 for a, b in zip(self.lower, self.upper))

    def union(self, other: "MBR") -> "MBR":
        """Tightest box enclosing both ``self`` and ``other``."""
        self._check_dim(other.dim)
        return MBR(
            tuple(min(a, b) for a, b in zip(self.lower, other.lower)),
            tuple(max(a, b) for a, b in zip(self.upper, other.upper)),
        )

    def extend_point(self, point: Sequence[float]) -> "MBR":
        """Tightest box enclosing ``self`` and ``point``."""
        self._check_dim(len(point))
        return MBR(
            tuple(min(a, p) for a, p in zip(self.lower, point)),
            tuple(max(b, p) for b, p in zip(self.upper, point)),
        )

    def enlargement(self, other: "MBR") -> float:
        """Area increase required for ``self`` to absorb ``other``."""
        return self.union(other).area() - self.area()

    def contains_point(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies inside the (closed) box."""
        self._check_dim(len(point))
        return all(
            a <= p <= b for a, p, b in zip(self.lower, point, self.upper)
        )

    def contains_box(self, other: "MBR") -> bool:
        """Whether ``other`` is entirely inside the (closed) box."""
        self._check_dim(other.dim)
        return all(
            a <= c and d <= b
            for a, b, c, d in zip(self.lower, self.upper, other.lower, other.upper)
        )

    def intersects(self, other: "MBR") -> bool:
        """Whether the two closed boxes share at least one point."""
        self._check_dim(other.dim)
        return all(
            a <= d and c <= b
            for a, b, c, d in zip(self.lower, self.upper, other.lower, other.upper)
        )

    # ------------------------------------------------------------------
    # Dominance-oriented region tests (paper, Figure 7)
    # ------------------------------------------------------------------

    def may_contain_dominated(self, q: Sequence[float]) -> bool:
        """Candidate-region test for dominance *reporting* (Figure 7a).

        True iff the box may contain a point weakly dominated by ``q``,
        i.e. ``q`` is coordinate-wise ``<=`` the box's upper corner.
        """
        self._check_dim(len(q))
        return all(qi <= hi for qi, hi in zip(q, self.upper))

    def fully_dominated_by(self, q: Sequence[float]) -> bool:
        """The *l-corner* test (Figure 7a): ``q`` dominates the whole box.

        True iff ``q`` is coordinate-wise ``<=`` the box's lower corner,
        in which case every point in the subtree is dominated by ``q``.
        """
        self._check_dim(len(q))
        return all(qi <= lo for qi, lo in zip(q, self.lower))

    def may_contain_dominator(self, q: Sequence[float]) -> bool:
        """Candidate-region test for the *dominator* search (Figure 7b).

        True iff the box may contain a point that weakly dominates ``q``,
        i.e. the box's lower corner is coordinate-wise ``<=`` ``q``.
        """
        self._check_dim(len(q))
        return all(lo <= qi for lo, qi in zip(self.lower, q))

    def fully_dominates(self, q: Sequence[float]) -> bool:
        """The *r-corner* test (Figure 7b): every box point dominates ``q``.

        True iff the box's upper corner is coordinate-wise ``<=`` ``q``.
        """
        self._check_dim(len(q))
        return all(hi <= qi for hi, qi in zip(self.upper, q))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def _check_dim(self, other_dim: int) -> None:
        if other_dim != self.dim:
            raise DimensionMismatchError(self.dim, other_dim)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return self.lower == other.lower and self.upper == other.upper

    def __hash__(self) -> int:
        return hash((self.lower, self.upper))

    def __repr__(self) -> str:
        return f"MBR(lower={self.lower}, upper={self.upper})"
