"""A dynamic interval tree answering *stabbing queries*.

Section 2.3 of the paper treats stabbing-query processing as a black
box: given ``m`` intervals and a stabbing point ``p``, report every
interval containing ``p``, with ``O(log m)`` amortised updates.  The
encoding scheme of section 3.2 stores the half-open interval
``(kappa(e'), kappa(e)]`` for every critical-dominance edge and stabs
with ``M - n + 1`` to answer an n-of-N query.

This module implements the black box as a CLRS-style *augmented*
red-black tree (built on :mod:`repro.structures.rbtree`): intervals are
keyed by ``(low, high, seq)`` (the sequence number admits duplicate
endpoints), and every node carries the maximum ``high`` within its
subtree.  A stab at ``t`` descends only into subtrees whose max-high
reaches ``t`` and prunes right subtrees whose lows already equal or
exceed ``t``, giving output-sensitive ``O(min(m, k log m) + log m)``
reporting — the same update complexity as the Edelsbrunner/Mehlhorn
structure the paper cites, and indistinguishable at reproduction scale
(see DESIGN.md §4).

Intervals are half-open ``(low, high]`` — exactly the shape produced by
the paper's encoding: ``low < t <= high`` means "stabbed".
"""

from __future__ import annotations

from typing import Generic, Iterator, List, TypeVar

from repro.exceptions import InvalidIntervalError, corruption
from repro.structures.rbtree import NIL, RBNode, RedBlackTree

D = TypeVar("D")

#: Aggregate value used for empty subtrees; compares below every high.
_NEG_INF = float("-inf")


class Interval(Generic[D]):
    """A half-open interval ``(low, high]`` carrying an opaque payload.

    ``high`` may be ``math.inf`` (used by the (n1,n2)-of-N structures
    for live elements whose backward critical ancestor does not exist).
    """

    __slots__ = ("low", "high", "data")

    def __init__(self, low: float, high: float, data: D) -> None:
        if not low < high:
            raise InvalidIntervalError(
                f"half-open interval needs low < high, got ({low}, {high}]"
            )
        self.low = low
        self.high = high
        self.data = data

    def contains(self, t: float) -> bool:
        """Whether ``t`` stabs this interval: ``low < t <= high``."""
        return self.low < t <= self.high

    def __repr__(self) -> str:
        return f"Interval(({self.low}, {self.high}], data={self.data!r})"


class IntervalHandle(Generic[D]):
    """An opaque handle returned by :meth:`IntervalTree.insert`.

    Handles stay valid until the interval is removed, letting the n-of-N
    engine maintain the constant-time links between interval endpoints
    and the label set (paper, Figure 6).
    """

    __slots__ = ("interval", "_node")

    def __init__(self, interval: Interval[D], node: RBNode) -> None:
        self.interval = interval
        self._node = node


def _augment_max_high(node: RBNode) -> None:
    """Recompute a node's subtree max-high from its children."""
    best = node.value.high
    left = node.left
    if left is not NIL and left.aggregate > best:
        best = left.aggregate
    right = node.right
    if right is not NIL and right.aggregate > best:
        best = right.aggregate
    node.aggregate = best


class IntervalTree(Generic[D]):
    """Dynamic set of half-open intervals supporting stabbing queries."""

    def __init__(self) -> None:
        self._tree: RedBlackTree = RedBlackTree(augment=_augment_max_high)
        self._seq = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonically increasing structure version.

        Bumped by every :meth:`insert` and :meth:`remove` (and twice by
        :meth:`replace`).  Two equal versions guarantee an identical
        interval set, so read-path caches — notably
        :class:`repro.accel.stab_cache.StabCache` — can validate a
        memoized answer with a single integer comparison.
        """
        return self._version

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, low: float, high: float, data: D) -> IntervalHandle[D]:
        """Insert ``(low, high]`` with payload ``data``; return a handle."""
        interval = Interval(low, high, data)
        key = (low, high, self._seq)
        self._seq += 1
        self._version += 1
        node = self._tree.insert(key, interval)
        return IntervalHandle(interval, node)

    def remove(self, handle: IntervalHandle[D]) -> None:
        """Remove the interval behind ``handle``.

        The handle must be live (obtained from :meth:`insert` and not
        yet removed); double removal is a programming error.
        """
        self._tree.delete_node(handle._node)
        handle._node = NIL
        self._version += 1

    def replace(
        self, handle: IntervalHandle[D], low: float, high: float
    ) -> IntervalHandle[D]:
        """Atomically swap an interval's endpoints, keeping its payload.

        Used by Algorithm 1 line 6: on expiry of a root's parent, the
        child's interval ``(kappa(parent), kappa(e)]`` becomes
        ``(0, kappa(e)]``.
        """
        data = handle.interval.data
        self.remove(handle)
        return self.insert(low, high, data)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def stab(self, t: float) -> List[D]:
        """Payloads of every interval with ``low < t <= high``.

        Output order follows the tree's depth-first traversal: it is
        deterministic for a given update history but not sorted; callers
        that need sorted results (the engines sort by ``kappa``) order
        the output themselves.
        """
        # Iterative DFS: recursion depth could hit Python's limit for
        # large windows even on a balanced tree's worst paths.  This
        # loop and the one in :meth:`stab_intervals` differ only in what
        # they append; keeping two copies removes a per-node flag branch
        # from the hot path.
        out: List[D] = []
        stack = [self._tree.root]
        while stack:
            current = stack.pop()
            if current is NIL or current.aggregate < t:
                continue
            interval: Interval[D] = current.value
            if interval.low < t:
                if t <= interval.high:
                    out.append(interval.data)
                # Right keys have low >= this low; they may still be < t.
                stack.append(current.right)
            # Left subtree always has lows <= this low; worth visiting
            # whenever its max-high reaches t (checked on pop).
            stack.append(current.left)
        return out

    def stab_intervals(self, t: float) -> List[Interval[D]]:
        """Like :meth:`stab` but returning the :class:`Interval` objects."""
        out: List[Interval[D]] = []
        stack = [self._tree.root]
        while stack:
            current = stack.pop()
            if current is NIL or current.aggregate < t:
                continue
            interval: Interval[D] = current.value
            if interval.low < t:
                if t <= interval.high:
                    out.append(interval)
                stack.append(current.right)
            stack.append(current.left)
        return out

    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def intervals(self) -> Iterator[Interval[D]]:
        """Iterate intervals in ``(low, high, insertion)`` order."""
        for _, interval in self._tree.items():
            yield interval

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify red-black properties and max-high aggregates.

        Raises
        ------
        StructureCorruptionError
            On the first violated property (survives ``python -O``).
        """
        self._tree.check_invariants()
        self._check_aggregate(self._tree.root)

    def _check_aggregate(self, node: RBNode) -> float:
        if node is NIL:
            return _NEG_INF
        expected = max(
            node.value.high,
            self._check_aggregate(node.left),
            self._check_aggregate(node.right),
        )
        if node.aggregate != expected:
            raise corruption(
                "interval_tree",
                "max-high-augmentation",
                f"aggregate mismatch at {node.key!r}: "
                f"{node.aggregate} != {expected}",
            )
        return expected
