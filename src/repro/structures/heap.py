"""Indexed binary heaps with delete-by-key.

The paper needs two kinds of priority queues:

* a **min-heap on kappa** over the current result set of a continuous
  n-of-N query (the *trigger list* of Algorithm 2) — elements must also
  be deletable from the middle when they are dominated by a newcomer;
* a **max-heap on the m_v augmentation** for the best-first critical
  dominator search on the R-tree (section 3.3).

Python's :mod:`heapq` offers neither deletion by key nor a max variant,
so this module implements a classic array-backed binary heap with a
position index (``key -> slot``), supporting ``push``, ``pop``,
``peek``, ``delete`` and ``update_priority`` in ``O(log n)``.

Keys must be hashable and unique within one heap; priorities must be
mutually comparable.  Ties are broken by insertion order so iteration
is deterministic, which keeps the engines reproducible under test.
"""

from __future__ import annotations

from typing import Any, Dict, Generic, Hashable, Iterator, List, Tuple, TypeVar

from repro.exceptions import (
    DuplicateKeyError,
    EmptyStructureError,
    KeyNotFoundError,
    corruption,
)

K = TypeVar("K", bound=Hashable)


class IndexedHeap(Generic[K]):
    """A binary min-heap keyed by unique hashable keys.

    Each entry is a ``(priority, key)`` pair; the heap orders entries by
    ``priority`` (then by insertion sequence for determinism).  A
    side-index maps keys to array slots so that arbitrary entries can be
    removed or re-prioritised in logarithmic time.

    Use :class:`MaxIndexedHeap` when the *largest* priority should be on
    top.
    """

    def __init__(self) -> None:
        # Each slot holds (priority, tiebreak, key).
        self._entries: List[Tuple[object, int, K]] = []
        self._index: Dict[K, int] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def push(self, key: K, priority: Any) -> None:
        """Insert ``key`` with ``priority``.

        Raises
        ------
        DuplicateKeyError
            If ``key`` is already present.
        """
        if key in self._index:
            raise DuplicateKeyError(f"key already in heap: {key!r}")
        self._entries.append((self._order(priority), self._seq, key))
        self._seq += 1
        slot = len(self._entries) - 1
        self._index[key] = slot
        self._sift_up(slot)

    def pop(self) -> Tuple[K, object]:
        """Remove and return ``(key, priority)`` of the top entry."""
        if not self._entries:
            raise EmptyStructureError("pop from an empty heap")
        priority, _, key = self._entries[0]
        self._remove_slot(0)
        return key, self._unorder(priority)

    def peek(self) -> Tuple[K, object]:
        """Return ``(key, priority)`` of the top entry without removing it."""
        if not self._entries:
            raise EmptyStructureError("peek at an empty heap")
        priority, _, key = self._entries[0]
        return key, self._unorder(priority)

    def delete(self, key: K) -> None:
        """Remove ``key`` from anywhere in the heap.

        Raises
        ------
        KeyNotFoundError
            If ``key`` is not present.
        """
        slot = self._index.get(key)
        if slot is None:
            raise KeyNotFoundError(f"key not in heap: {key!r}")
        self._remove_slot(slot)

    def discard(self, key: K) -> bool:
        """Remove ``key`` if present; return whether it was removed."""
        slot = self._index.get(key)
        if slot is None:
            return False
        self._remove_slot(slot)
        return True

    def update_priority(self, key: K, priority: Any) -> None:
        """Change the priority of an existing ``key``."""
        slot = self._index.get(key)
        if slot is None:
            raise KeyNotFoundError(f"key not in heap: {key!r}")
        _, tiebreak, _ = self._entries[slot]
        self._entries[slot] = (self._order(priority), tiebreak, key)
        # The entry may need to move either way.
        if not self._sift_up(slot):
            self._sift_down(slot)

    def priority_of(self, key: K) -> Any:
        """Return the current priority of ``key``."""
        slot = self._index.get(key)
        if slot is None:
            raise KeyNotFoundError(f"key not in heap: {key!r}")
        return self._unorder(self._entries[slot][0])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[K]:
        """Iterate over keys in arbitrary (heap-array) order."""
        return iter(list(self._index))

    def keys(self) -> List[K]:
        """Keys currently in the heap, in heap-array order."""
        return [key for _, _, key in self._entries]

    def check_invariants(self) -> None:
        """Verify the heap property and index consistency.

        Raises
        ------
        StructureCorruptionError
            On the first violated property (survives ``python -O``).
        """
        for slot in range(1, len(self._entries)):
            parent = (slot - 1) // 2
            if not self._entries[parent][:2] <= self._entries[slot][:2]:
                raise corruption(
                    "heap",
                    "heap-order",
                    f"heap property violated at slot {slot}",
                )
        if len(self._index) != len(self._entries):
            raise corruption(
                "heap",
                "heap-index",
                f"index size {len(self._index)} != entry count "
                f"{len(self._entries)}",
            )
        for key, slot in self._index.items():
            if self._entries[slot][2] != key:
                raise corruption(
                    "heap", "heap-index", f"stale index for {key!r}"
                )

    # ------------------------------------------------------------------
    # Ordering hooks (overridden by the max variant)
    # ------------------------------------------------------------------

    @staticmethod
    def _order(priority: Any) -> Any:
        return priority

    @staticmethod
    def _unorder(stored: Any) -> Any:
        return stored

    # ------------------------------------------------------------------
    # Internal array mechanics
    # ------------------------------------------------------------------

    def _remove_slot(self, slot: int) -> None:
        last = len(self._entries) - 1
        key = self._entries[slot][2]
        del self._index[key]
        if slot != last:
            moved = self._entries[last]
            self._entries[slot] = moved
            self._index[moved[2]] = slot
            self._entries.pop()
            # The moved entry may need to travel either direction.
            if not self._sift_up(slot):
                self._sift_down(slot)
        else:
            self._entries.pop()

    def _sift_up(self, slot: int) -> bool:
        """Bubble the entry at ``slot`` up; return True if it moved."""
        moved = False
        entry = self._entries[slot]
        while slot > 0:
            parent = (slot - 1) // 2
            if self._entries[parent][:2] <= entry[:2]:
                break
            self._entries[slot] = self._entries[parent]
            self._index[self._entries[slot][2]] = slot
            slot = parent
            moved = True
        if moved:
            self._entries[slot] = entry
            self._index[entry[2]] = slot
        return moved

    def _sift_down(self, slot: int) -> bool:
        """Push the entry at ``slot`` down; return True if it moved."""
        moved = False
        size = len(self._entries)
        entry = self._entries[slot]
        while True:
            child = 2 * slot + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._entries[right][:2] < self._entries[child][:2]:
                child = right
            if entry[:2] <= self._entries[child][:2]:
                break
            self._entries[slot] = self._entries[child]
            self._index[self._entries[slot][2]] = slot
            slot = child
            moved = True
        if moved:
            self._entries[slot] = entry
            self._index[entry[2]] = slot
        return moved


class _Reversed:
    """Wrapper inverting comparisons, used to derive a max-heap."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __le__(self, other: "_Reversed") -> bool:
        return other.value <= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value

    def __repr__(self) -> str:
        return f"_Reversed({self.value!r})"


class MaxIndexedHeap(IndexedHeap[K]):
    """An :class:`IndexedHeap` whose top entry has the *largest* priority."""

    @staticmethod
    def _order(priority: Any) -> _Reversed:
        return _Reversed(priority)

    @staticmethod
    def _unorder(stored: Any) -> Any:
        return stored.value

    def check_invariants(self) -> None:  # pragma: no cover - thin override
        super().check_invariants()


class MinIndexedHeap(IndexedHeap[K]):
    """Alias emphasising min-ordering at call sites (trigger lists)."""
