"""In-memory R-tree over the non-redundant set ``R_N``.

Section 3.3 of the paper organises ``R_N`` in a main-memory R-tree to
support the two computations driven by every arrival ``e_new``:

* **Dominance reporting** (``D_{e_new}``, Algorithm 1 line 9): a
  depth-first search that expands a node only when ``e_new`` falls in
  the node's *candidate region* (Figure 7a), harvests whole subtrees
  when ``e_new`` dominates the box's lower corner (*l-corner*), removes
  discovered elements immediately without rebalancing, shrinks bounding
  boxes as the recursion returns (Figure 8), and rebalances bottom-up
  once the search finishes.

* **Critical-dominator search** (Algorithm 1 line 14): a best-first
  search on a max-heap keyed by ``m_v`` — the maximum arrival label
  ``kappa`` within each subtree — that expands a node only when
  ``e_new`` falls in its dominator candidate region (Figure 7b) and
  terminates early when the box's upper corner dominates ``e_new``
  (*r-corner*), in which case the subtree's ``m_v`` element is the
  answer.

The tree is a classic Guttman R-tree with quadratic split and a
condense-and-reinsert deletion path (the "B+-tree bottom-up strategy
combined with [R*-tree] techniques" the paper describes maps to the
same underfull-node handling).  Every node additionally carries
``max_kappa``, the ``m_v`` augmentation.

Entries are points: ``(point, kappa, data)``; ``kappa`` values must be
unique (they are stream positions).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.accel.rtree_kernels import (
    KERNEL_MIN_LEAF,
    LeafKernel,
    as_probe,
    best_dominator_index,
    dominated_indices,
    resolve_kernel_policy,
)
from repro.exceptions import (
    DimensionMismatchError,
    DuplicateKeyError,
    KeyNotFoundError,
    corruption,
)
from repro.structures.mbr import MBR

Point = Tuple[float, ...]

DEFAULT_MAX_ENTRIES = 12
DEFAULT_MIN_ENTRIES = 4


class RTreeEntry:
    """A leaf-level record: a point, its arrival label and a payload."""

    __slots__ = ("point", "kappa", "data", "_leaf")

    def __init__(self, point: Point, kappa: int, data: Any) -> None:
        self.point = point
        self.kappa = kappa
        self.data = data
        self._leaf: Optional["_Node"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RTreeEntry(kappa={self.kappa}, point={self.point})"


class _Node:
    """An internal or leaf node.

    Leaf nodes hold :class:`RTreeEntry` children; internal nodes hold
    child :class:`_Node` objects.  ``mbr`` and ``max_kappa`` summarise
    the whole subtree; both are ``None`` only for an empty root.

    ``kernel`` lazily caches a :class:`LeafKernel` mirror of a leaf's
    children for the vectorised search path.  Every structural change
    funnels through :meth:`recompute` (or :meth:`adopt`), both of which
    drop the cache, so a non-``None`` kernel always matches the child
    list exactly.
    """

    __slots__ = ("is_leaf", "children", "mbr", "max_kappa", "parent", "kernel")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.children: List[Any] = []
        self.mbr: Optional[MBR] = None
        self.max_kappa: int = -1
        self.parent: Optional["_Node"] = None
        self.kernel: Optional[LeafKernel] = None

    def recompute(self) -> None:
        """Refresh ``mbr`` and ``max_kappa`` from the children."""
        self.kernel = None
        if not self.children:
            self.mbr = None
            self.max_kappa = -1
            return
        if self.is_leaf:
            self.mbr = MBR.union_of(
                MBR.from_point(entry.point) for entry in self.children
            )
            self.max_kappa = max(entry.kappa for entry in self.children)
        else:
            self.mbr = MBR.union_of(child.mbr for child in self.children)
            self.max_kappa = max(child.max_kappa for child in self.children)

    def adopt(self, child: Any) -> None:
        """Attach a child and set its parent link."""
        self.children.append(child)
        # Unconditional: only leaves ever hold a kernel, but dropping it
        # on every mutation path keeps the invalidation discipline
        # locally checkable (and is free for internal nodes).
        self.kernel = None
        if self.is_leaf:
            child._leaf = self
        else:
            child.parent = self


class RTree:
    """A point R-tree with dominance-oriented searches.

    Parameters
    ----------
    dim:
        Dimensionality of stored points.
    max_entries / min_entries:
        Node capacity bounds; ``2 <= min_entries <= max_entries // 2``.
    kernels:
        Vectorised leaf-search policy: ``"auto"`` (use NumPy when
        importable, the default), ``"on"`` (same, recorded intent) or
        ``"off"`` (always use the pure-Python per-entry loops).  The
        two paths return identical results (property-tested).
    """

    def __init__(
        self,
        dim: int,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int = DEFAULT_MIN_ENTRIES,
        split: str = "quadratic",
        kernels: str = "auto",
    ) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be positive, got {dim}")
        if not 2 <= min_entries <= max_entries // 2:
            raise ValueError(
                f"need 2 <= min_entries <= max_entries // 2, got "
                f"min={min_entries}, max={max_entries}"
            )
        if split not in ("quadratic", "rstar"):
            raise ValueError(
                f"split must be 'quadratic' or 'rstar', got {split!r}"
            )
        self.dim = dim
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.split_policy = split
        self.kernel_policy = kernels
        self.layout = "pointer"
        self.layout_policy = "pointer"
        self._use_kernels = resolve_kernel_policy(kernels)
        #: Nodes expanded by the most recent :meth:`report_dominated`
        #: call (instrumentation for the pruning regression tests).
        self.last_report_visits = 0
        self._root = _Node(is_leaf=True)
        self._entries: Dict[int, RTreeEntry] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, kappa: int) -> bool:
        return kappa in self._entries

    def entries(self) -> Iterator[RTreeEntry]:
        """Iterate all entries (arbitrary deterministic order)."""
        return iter(list(self._entries.values()))

    def entry(self, kappa: int) -> RTreeEntry:
        """The entry labelled ``kappa``."""
        entry = self._entries.get(kappa)
        if entry is None:
            raise KeyNotFoundError(f"no entry with kappa={kappa}")
        return entry

    def height(self) -> int:
        """Tree height (a lone leaf root has height 1)."""
        node = self._root
        height = 1
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    # ------------------------------------------------------------------
    # Insertion (Guttman ChooseLeaf + quadratic split)
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float], kappa: int, data: Any = None) -> RTreeEntry:
        """Insert ``point`` with arrival label ``kappa``.

        Raises
        ------
        DuplicateKeyError
            If an entry with this ``kappa`` already exists.
        DimensionMismatchError
            If the point has the wrong dimensionality.
        """
        if len(point) != self.dim:
            raise DimensionMismatchError(self.dim, len(point))
        if kappa in self._entries:
            raise DuplicateKeyError(f"entry with kappa={kappa} already present")
        entry = RTreeEntry(tuple(float(v) for v in point), kappa, data)
        self._entries[kappa] = entry
        leaf = self._choose_leaf(entry.point)
        leaf.adopt(entry)
        self._handle_overflow_and_adjust(leaf)
        return entry

    def _choose_leaf(self, point: Point) -> _Node:
        node = self._root
        box = MBR.from_point(point)
        while not node.is_leaf:
            best = None
            best_key = None
            for child in node.children:
                enlargement = child.mbr.enlargement(box)
                key = (enlargement, child.mbr.area(), len(child.children))
                if best_key is None or key < best_key:
                    best_key = key
                    best = child
            node = best
        return node

    def _handle_overflow_and_adjust(self, node: _Node) -> None:
        """Split overflowing nodes bottom-up, then refresh summaries."""
        while True:
            if len(node.children) > self.max_entries:
                sibling = self._split(node)
                parent = node.parent
                if parent is None:
                    new_root = _Node(is_leaf=False)
                    new_root.adopt(node)
                    new_root.adopt(sibling)
                    new_root.recompute()
                    self._root = new_root
                    return
                parent.adopt(sibling)
                node.recompute()
                sibling.recompute()
                node = parent
            else:
                node.recompute()
                if node.parent is None:
                    return
                node = node.parent

    def _split(self, node: _Node) -> _Node:
        """Split an overflowing node per the configured policy."""
        if self.split_policy == "rstar":
            return self._split_rstar(node)
        return self._split_quadratic(node)

    def _split_rstar(self, node: _Node) -> _Node:
        """R*-tree split [Beckmann et al., the paper's citation [2]].

        Choose the split *axis* minimising the summed margins of all
        admissible distributions, then along that axis the distribution
        with the least overlap (ties: least total area).  Children are
        considered in lower-corner order per axis (points have a single
        corner, so the R*'s two sort passes coincide for leaves).
        """
        children = node.children
        boxes = [self._child_box(node, c) for c in children]
        m = self.min_entries
        count = len(children)

        best_axis = None
        best_axis_margin = None
        axis_orders = {}
        for axis in range(self.dim):
            order = sorted(
                range(count), key=lambda i: (boxes[i].lower[axis],
                                             boxes[i].upper[axis])
            )
            axis_orders[axis] = order
            margin_sum = 0.0
            for k in range(m, count - m + 1):
                left = MBR.union_of(boxes[i] for i in order[:k])
                right = MBR.union_of(boxes[i] for i in order[k:])
                margin_sum += left.margin() + right.margin()
            if best_axis_margin is None or margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis = axis

        order = axis_orders[best_axis]
        best_key = None
        best_k = m
        for k in range(m, count - m + 1):
            left = MBR.union_of(boxes[i] for i in order[:k])
            right = MBR.union_of(boxes[i] for i in order[k:])
            overlap = self._overlap_area(left, right)
            key = (overlap, left.area() + right.area())
            if best_key is None or key < best_key:
                best_key = key
                best_k = k

        sibling = _Node(is_leaf=node.is_leaf)
        keep = [children[i] for i in order[:best_k]]
        move = [children[i] for i in order[best_k:]]
        node.children = []
        for child in keep:
            node.adopt(child)
        for child in move:
            sibling.adopt(child)
        node.recompute()
        sibling.recompute()
        return sibling

    @staticmethod
    def _overlap_area(a: MBR, b: MBR) -> float:
        """Area of the intersection of two boxes (0 when disjoint)."""
        result = 1.0
        for lo_a, hi_a, lo_b, hi_b in zip(a.lower, a.upper, b.lower, b.upper):
            extent = min(hi_a, hi_b) - max(lo_a, lo_b)
            if extent <= 0:
                return 0.0
            result *= extent
        return result

    def _split_quadratic(self, node: _Node) -> _Node:
        """Quadratic split: distribute children between node and a sibling."""
        children = node.children
        boxes = [self._child_box(node, c) for c in children]

        # Pick the two seeds wasting the most area if grouped together.
        worst = -1.0
        seed_a = 0
        seed_b = 1
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                waste = (
                    boxes[i].union(boxes[j]).area()
                    - boxes[i].area()
                    - boxes[j].area()
                )
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j

        group_a = [children[seed_a]]
        group_b = [children[seed_b]]
        box_a = boxes[seed_a]
        box_b = boxes[seed_b]
        remaining = [
            (children[k], boxes[k])
            for k in range(len(children))
            if k not in (seed_a, seed_b)
        ]

        while remaining:
            # Force-assign when one group must take all leftovers.
            if len(group_a) + len(remaining) == self.min_entries:
                for child, box in remaining:
                    group_a.append(child)
                    box_a = box_a.union(box)
                break
            if len(group_b) + len(remaining) == self.min_entries:
                for child, box in remaining:
                    group_b.append(child)
                    box_b = box_b.union(box)
                break
            # Pick the child with the strongest group preference.
            best_idx = 0
            best_diff = -1.0
            for idx, (_, box) in enumerate(remaining):
                diff = abs(box_a.enlargement(box) - box_b.enlargement(box))
                if diff > best_diff:
                    best_diff = diff
                    best_idx = idx
            child, box = remaining.pop(best_idx)
            grow_a = box_a.enlargement(box)
            grow_b = box_b.enlargement(box)
            pick_a = (
                grow_a < grow_b
                or (grow_a == grow_b and box_a.area() < box_b.area())
                or (grow_a == grow_b and box_a.area() == box_b.area()
                    and len(group_a) <= len(group_b))
            )
            if pick_a:
                group_a.append(child)
                box_a = box_a.union(box)
            else:
                group_b.append(child)
                box_b = box_b.union(box)

        sibling = _Node(is_leaf=node.is_leaf)
        node.children = []
        for child in group_a:
            node.adopt(child)
        for child in group_b:
            sibling.adopt(child)
        node.recompute()
        sibling.recompute()
        return sibling

    @staticmethod
    def _child_box(node: _Node, child: Any) -> MBR:
        return MBR.from_point(child.point) if node.is_leaf else child.mbr

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, kappa: int) -> RTreeEntry:
        """Remove the entry labelled ``kappa`` and rebalance."""
        entry = self._entries.pop(kappa, None)
        if entry is None:
            raise KeyNotFoundError(f"no entry with kappa={kappa}")
        leaf = entry._leaf
        leaf.children.remove(entry)
        entry._leaf = None
        self._condense(leaf)
        return entry

    def _condense(self, node: _Node) -> None:
        """Bottom-up condense: drop underfull nodes, reinsert orphans."""
        orphans: List[RTreeEntry] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.children) < self.min_entries:
                parent.children.remove(node)
                node.parent = None
                self._collect_entries(node, orphans)
            else:
                node.recompute()
            node = parent
        node.recompute()
        self._shrink_root()
        for orphan in orphans:
            # Reinsert through the normal path (preserves balance).
            leaf = self._choose_leaf(orphan.point)
            leaf.adopt(orphan)
            self._handle_overflow_and_adjust(leaf)

    def _shrink_root(self) -> None:
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.children and not self._root.is_leaf:
            self._root = _Node(is_leaf=True)

    @staticmethod
    def _collect_entries(node: _Node, out: List[RTreeEntry]) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.children)
            else:
                stack.extend(current.children)

    # ------------------------------------------------------------------
    # Dominance reporting (depth-first, Figure 7a / Figure 8)
    # ------------------------------------------------------------------

    def _leaf_kernel(self, node: _Node) -> LeafKernel:
        """The node's cached :class:`LeafKernel`, building it on demand."""
        kernel = node.kernel
        if kernel is None:
            kernel = LeafKernel.from_entries(node.children)
            node.kernel = kernel
        return kernel

    def report_dominated(self, q: Sequence[float]) -> List[RTreeEntry]:
        """Entries weakly dominated by ``q`` (non-destructive).

        Subtrees are pruned *before* descending: a child is pushed only
        when ``q`` falls inside its candidate region (Figure 7a), so a
        node whose box merely overlaps elsewhere never costs a visit.
        :attr:`last_report_visits` records the nodes expanded.
        """
        if len(q) != self.dim:
            raise DimensionMismatchError(self.dim, len(q))
        out: List[RTreeEntry] = []
        visits = 0
        probe = as_probe(q) if self._use_kernels else None
        root = self._root
        stack: List[_Node] = []
        if root.mbr is not None and root.mbr.may_contain_dominated(q):
            stack.append(root)
        while stack:
            node = stack.pop()
            mbr = node.mbr
            if mbr is None:
                continue
            visits += 1
            if mbr.fully_dominated_by(q):
                self._collect_entries(node, out)
                continue
            if node.is_leaf:
                if probe is not None and len(node.children) >= KERNEL_MIN_LEAF:
                    children = node.children
                    out.extend(
                        children[i]
                        for i in dominated_indices(self._leaf_kernel(node), probe)
                    )
                else:
                    out.extend(
                        entry
                        for entry in node.children
                        # Hot path: inlining the weak-dominance test here
                        # (rather than calling core.dominance per entry)
                        # measurably speeds up report_dominated.
                        if all(a <= b for a, b in zip(q, entry.point))  # lint: skip=REPRO002
                    )
            else:
                for child in node.children:
                    child_mbr = child.mbr
                    if child_mbr is not None and child_mbr.may_contain_dominated(q):
                        stack.append(child)
        self.last_report_visits = visits
        return out

    def remove_dominated(self, q: Sequence[float]) -> List[RTreeEntry]:
        """Remove and return every entry weakly dominated by ``q``.

        This is Algorithm 1's ``D_{e_new}`` computation: discovered
        elements are unlinked immediately, bounding boxes shrink as the
        depth-first search returns (Figure 8), and the tree is
        rebalanced once afterwards.
        """
        if len(q) != self.dim:
            raise DimensionMismatchError(self.dim, len(q))
        removed: List[RTreeEntry] = []
        dirty: Set[int] = set()
        probe = as_probe(q) if self._use_kernels else None
        self._dfs_remove(self._root, q, probe, removed, dirty)
        if not removed:
            return removed
        for entry in removed:
            del self._entries[entry.kappa]
            entry._leaf = None
        self._rebalance_after_bulk_delete(dirty)
        return removed

    def _dfs_remove(
        self,
        node: _Node,
        q: Sequence[float],
        probe: Any,
        removed: List[RTreeEntry],
        dirty: Set[int],
    ) -> bool:
        """Recursive removal; returns True if the subtree became empty.

        Nodes whose child list changed (and their ancestors) are added
        to ``dirty`` so the rebalance pass can skip untouched subtrees.
        ``probe`` is the pre-converted kernel probe (``None`` when the
        vectorised path is off).
        """
        if node.mbr is None or not node.mbr.may_contain_dominated(q):
            return False
        if node.mbr.fully_dominated_by(q):
            # l-corner: harvest the whole subtree.
            self._collect_entries(node, removed)
            node.children = []
            node.recompute()
            dirty.add(id(node))
            return True
        if node.is_leaf:
            # Reuse a kernel a read-only search already built, but never
            # build one here: a hit mutates the leaf and drops the cache
            # immediately, so building would be pure overhead.
            if probe is not None and node.kernel is not None:
                hit = dominated_indices(node.kernel, probe)
                if not hit:
                    return False
                hit_set = set(hit)
                removed.extend(node.children[i] for i in hit)
                kept = [
                    entry
                    for i, entry in enumerate(node.children)
                    if i not in hit_set
                ]
            else:
                kept = []
                for entry in node.children:
                    # Hot path: inlined weak-dominance test, as above.
                    if all(a <= b for a, b in zip(q, entry.point)):  # lint: skip=REPRO002
                        removed.append(entry)
                    else:
                        kept.append(entry)
                if len(kept) == len(node.children):
                    return False
            node.children = kept
            node.recompute()
            dirty.add(id(node))
            return not kept
        survivors = []
        changed = False
        for child in node.children:
            emptied = self._dfs_remove(child, q, probe, removed, dirty)
            if emptied:
                child.parent = None
                changed = True
            else:
                survivors.append(child)
        if not changed and not dirty & {id(c) for c in survivors}:
            return False
        node.children = survivors
        # Shrink on return (Figure 8) so ancestors prune with tight boxes.
        node.recompute()
        dirty.add(id(node))
        return not survivors

    def _rebalance_after_bulk_delete(self, dirty: Optional[Set[int]] = None) -> None:
        """Condense every underfull node left behind by a bulk delete.

        ``dirty`` (node ids touched by the delete) restricts the walk to
        the modified paths; ``None`` condenses the whole tree.
        """
        orphans: List[RTreeEntry] = []
        self._prune_underfull(self._root, orphans, is_root=True, dirty=dirty)
        self._shrink_root()
        for orphan in orphans:
            leaf = self._choose_leaf(orphan.point)
            leaf.adopt(orphan)
            self._handle_overflow_and_adjust(leaf)

    def _prune_underfull(
        self,
        node: _Node,
        orphans: List[RTreeEntry],
        is_root: bool,
        dirty: Optional[Set[int]] = None,
    ) -> bool:
        """Post-order prune; returns True if ``node`` should be detached."""
        if not node.is_leaf:
            survivors = []
            for child in node.children:
                if dirty is not None and id(child) not in dirty:
                    survivors.append(child)
                elif self._prune_underfull(child, orphans, is_root=False, dirty=dirty):
                    child.parent = None
                else:
                    survivors.append(child)
            node.children = survivors
        node.recompute()
        if is_root:
            return False
        if len(node.children) < self.min_entries:
            self._collect_entries(node, orphans)
            return True
        return False

    # ------------------------------------------------------------------
    # Best-first critical-dominator search (Figure 7b)
    # ------------------------------------------------------------------

    def max_kappa_dominator(
        self, q: Sequence[float], kappa_below: Optional[int] = None
    ) -> Optional[RTreeEntry]:
        """The entry with the largest ``kappa`` that weakly dominates ``q``.

        ``kappa_below``, when given, restricts the search to entries with
        ``kappa < kappa_below`` (used when the query point itself is
        already stored, as in the (n1,n2)-of-N maintenance).

        Returns ``None`` when no stored point dominates ``q``.
        """
        if len(q) != self.dim:
            raise DimensionMismatchError(self.dim, len(q))
        # Max-heap via negated priorities on the stdlib heap (this search
        # runs once per arrival — the C heap beats the indexed heap, and
        # no decrease-key is ever needed).  The counter breaks priority
        # ties so heapq never compares nodes/entries.
        heap: List[Tuple[int, int, Any]] = []
        counter = 0
        probe = as_probe(q) if self._use_kernels else None

        def push(item: Any, priority: int) -> None:
            nonlocal counter
            if kappa_below is not None and priority >= kappa_below:
                # Subtree may still contain smaller kappas; only prune
                # single entries, not nodes.
                if isinstance(item, RTreeEntry):
                    return
            heapq.heappush(heap, (-priority, counter, item))
            counter += 1

        if self._root.mbr is not None:
            push(self._root, self._root.max_kappa)

        while heap:
            _, _, item = heapq.heappop(heap)
            if isinstance(item, RTreeEntry):
                if kappa_below is not None and item.kappa >= kappa_below:
                    continue
                # Hot path: inlined weak-dominance test, as above.
                if all(a <= b for a, b in zip(item.point, q)):  # lint: skip=REPRO002
                    return item
                continue
            node: _Node = item
            if node.mbr is None or not node.mbr.may_contain_dominator(q):
                continue
            if node.mbr.fully_dominates(q):
                # r-corner: every point under this node dominates q.
                entry = self._descend_max_kappa(node, kappa_below)
                if entry is None:
                    continue
                if kappa_below is None:
                    # Unconstrained: the subtree maximum was this item's
                    # priority, so no other frontier item can beat it.
                    return entry
                # Constrained: the eligible maximum may be smaller than
                # the node's priority; let the frontier arbitrate.
                push(entry, entry.kappa)
                continue
            if node.is_leaf:
                if probe is not None and node.kernel is not None:
                    # Reuse a kernel a read-only reporting search already
                    # built, but never build one here: on the pure-ingest
                    # path (n-of-N never calls report_dominated) the next
                    # insert would drop it before any reuse, which is
                    # exactly the measured 0.94-0.99x kernels-on ingest
                    # regression.  One vectorised pass finds the leaf's
                    # best eligible dominator; any other dominating child
                    # has a smaller kappa and could never outrank it on
                    # the frontier, so a single push per leaf suffices.
                    best = best_dominator_index(node.kernel, probe, kappa_below)
                    if best >= 0:
                        leaf_entry = node.children[best]
                        push(leaf_entry, leaf_entry.kappa)
                else:
                    for entry in node.children:
                        push(entry, entry.kappa)
            else:
                for child in node.children:
                    push(child, child.max_kappa)
        return None

    def top_kappa_dominators(self, q: Sequence[float], k: int) -> List[RTreeEntry]:
        """The ``k`` youngest entries weakly dominating ``q``, youngest
        first (fewer if fewer exist).

        Used by the windowed k-skyband engine, which needs an element's
        top-k older dominators rather than just the critical one.
        Implemented as ``k`` constrained best-first searches — ``k`` is
        small in practice, and each search prunes independently.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        found: List[RTreeEntry] = []
        bound: Optional[int] = None
        while len(found) < k:
            entry = self.max_kappa_dominator(q, kappa_below=bound)
            if entry is None:
                break
            found.append(entry)
            bound = entry.kappa
        return found

    def _descend_max_kappa(
        self, node: _Node, kappa_below: Optional[int]
    ) -> Optional[RTreeEntry]:
        """The max-kappa entry under ``node`` (respecting ``kappa_below``).

        When ``kappa_below`` filters out the subtree maximum we fall back
        to a linear scan of the subtree — only reachable when the caller
        constrains kappa, which the hot n-of-N path never does.
        """
        if kappa_below is None:
            while not node.is_leaf:
                node = max(node.children, key=lambda c: c.max_kappa)
            return max(node.children, key=lambda e: e.kappa)
        entries: List[RTreeEntry] = []
        self._collect_entries(node, entries)
        eligible = [e for e in entries if e.kappa < kappa_below]
        if not eligible:
            return None
        return max(eligible, key=lambda e: e.kappa)

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify structural invariants over the whole tree.

        Raises
        ------
        StructureCorruptionError
            On the first violated property (survives ``python -O``).
        """
        if self._root.parent is not None:
            raise corruption("rtree", "rtree-links", "root has a parent")
        depths: Set[int] = set()
        count = self._check_node(self._root, depth=1, depths=depths, is_root=True)
        if count != len(self._entries):
            raise corruption(
                "rtree",
                "rtree-count",
                f"entry count mismatch: tree has {count}, index has "
                f"{len(self._entries)}",
            )
        if len(depths) > 1:
            raise corruption(
                "rtree", "rtree-depth", f"leaves at different depths: {depths}"
            )
        for kappa, entry in self._entries.items():
            if entry.kappa != kappa:
                raise corruption(
                    "rtree",
                    "rtree-links",
                    f"index key {kappa} holds entry labelled {entry.kappa}",
                    kappas=(kappa,),
                )
            if entry._leaf is None or entry not in entry._leaf.children:
                raise corruption(
                    "rtree",
                    "rtree-links",
                    f"stale leaf link for kappa={kappa}",
                    kappas=(kappa,),
                )

    def _check_node(
        self, node: _Node, depth: int, depths: Set[int], is_root: bool
    ) -> int:
        if not is_root and len(node.children) < self.min_entries:
            raise corruption("rtree", "rtree-fanout", "underfull node")
        if len(node.children) > self.max_entries:
            raise corruption("rtree", "rtree-fanout", "overfull node")
        if node.is_leaf:
            depths.add(depth)
            if node.children:
                expected = MBR.union_of(
                    MBR.from_point(e.point) for e in node.children
                )
                if node.mbr != expected:
                    raise corruption(
                        "rtree", "rtree-mbr", "leaf MBR not tight"
                    )
                if node.max_kappa != max(e.kappa for e in node.children):
                    raise corruption(
                        "rtree",
                        "rtree-augmentation",
                        f"leaf max-kappa {node.max_kappa} does not match "
                        f"its entries",
                    )
                for entry in node.children:
                    if entry._leaf is not node:
                        raise corruption(
                            "rtree",
                            "rtree-links",
                            f"entry kappa={entry.kappa} does not point back "
                            f"at its leaf",
                            kappas=(entry.kappa,),
                        )
                kernel = node.kernel
                if kernel is not None:
                    points = [tuple(p) for p in kernel.points.tolist()]
                    kappas = kernel.kappas.tolist()
                    if points != [e.point for e in node.children] or (
                        kappas != [e.kappa for e in node.children]
                    ):
                        raise corruption(
                            "rtree",
                            "rtree-kernel-cache",
                            "cached leaf kernel does not mirror the "
                            "leaf's children",
                        )
            elif not (is_root and node.mbr is None):
                raise corruption(
                    "rtree", "rtree-mbr", "empty non-root leaf with an MBR"
                )
            return len(node.children)
        if not node.children:
            raise corruption(
                "rtree", "rtree-fanout", "internal node with no children"
            )
        total = 0
        for child in node.children:
            if child.parent is not node:
                raise corruption("rtree", "rtree-links", "broken parent link")
            total += self._check_node(child, depth + 1, depths, is_root=False)
        expected = MBR.union_of(c.mbr for c in node.children)
        if node.mbr != expected:
            raise corruption("rtree", "rtree-mbr", "internal MBR not tight")
        if node.max_kappa != max(c.max_kappa for c in node.children):
            raise corruption(
                "rtree",
                "rtree-augmentation",
                f"internal max-kappa {node.max_kappa} does not match "
                f"its children",
            )
        return total
