"""Data-structure substrates for the sliding-window skyline engines.

Everything here is self-contained and paper-faithful:

* :mod:`repro.structures.rbtree` — augmentable red-black tree;
* :mod:`repro.structures.interval_tree` — dynamic stabbing-query tree;
* :mod:`repro.structures.rtree` — in-memory R-tree with the paper's
  depth-first dominance reporting and best-first dominator search;
* :mod:`repro.structures.rtree_soa` — struct-of-arrays rebuild of the
  same search surface (pooled NumPy matrices, blocks as index ranges)
  plus the ``rtree_layout`` factory the engines construct through;
* :mod:`repro.structures.heap` — indexed min/max heaps (trigger lists);
* :mod:`repro.structures.mbr` — bounding-box algebra incl. Figure 7's
  candidate-region tests;
* :mod:`repro.structures.labelset` — the ordered label set of Figure 6.
"""

from repro.structures.heap import IndexedHeap, MaxIndexedHeap, MinIndexedHeap
from repro.structures.interval_tree import Interval, IntervalHandle, IntervalTree
from repro.structures.labelset import LabelSet
from repro.structures.mbr import MBR
from repro.structures.rbtree import RedBlackTree
from repro.structures.rtree import RTree, RTreeEntry
from repro.structures.rtree_soa import (
    RTREE_LAYOUTS,
    SoAEntry,
    SoARTree,
    make_rtree,
    resolve_rtree_layout,
)

__all__ = [
    "IndexedHeap",
    "MaxIndexedHeap",
    "MinIndexedHeap",
    "Interval",
    "IntervalHandle",
    "IntervalTree",
    "LabelSet",
    "MBR",
    "RedBlackTree",
    "RTree",
    "RTreeEntry",
    "RTREE_LAYOUTS",
    "SoAEntry",
    "SoARTree",
    "make_rtree",
    "resolve_rtree_layout",
]
