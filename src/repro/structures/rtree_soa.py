"""Struct-of-arrays dominance index over ``R_N`` (the SoA R-tree).

The pointer R-tree (:mod:`repro.structures.rtree`) spends its ingest
budget on Python object walks: every arrival runs a dominance removal,
a critical-dominator search and an insert, and each of those touches
dozens of ``_Node``/``RTreeEntry`` objects plus per-leaf ``LeafKernel``
caches that the very next structural change invalidates.  The profile
in ROADMAP.md (d=5 ingest at ~1.3 ms/element, kernels *neutral to
negative*) says the fix is structural, not micro-tuning.

This module rebuilds the same search surface on a struct-of-arrays
layout:

* all points live in one pooled ``(rows, dim)`` float64 matrix with a
  parallel ``(rows,)`` int64 kappa vector;
* a "node" is a **block** — an index range ``[b*B, b*B + len_b)`` into
  the pooled arrays, with live rows kept contiguous by swap-with-last
  deletion;
* per-block summaries (lower/upper corner, ``max_kappa``) are stored as
  small NumPy matrices of their own, so the Figure 7 candidate-region
  tests run over *all* blocks in one broadcasted comparison, and each
  surviving block is answered by one reduction over its slice.

``report_dominated`` / ``remove_dominated`` / ``max_kappa_dominator``
therefore do two vectorised passes (block mask, then per-block slice
reduction) instead of a per-entry Python walk — and there is no kernel
cache to invalidate, because the pooled matrix *is* the structure.

Expiry is batched by design: :meth:`SoARTree.delete` is an O(1) swap
that marks the block's summary dirty, and summaries are re-derived
lazily (:meth:`SoARTree._refresh`) at the start of the next search, so
a window slide that expires E elements costs one summary recompute per
touched block instead of E rebalances.  Stale summaries are only ever
*conservative* supersets (deletion shrinks the true box, insertion
extends the stored box), so pruning stays sound in between refreshes.

The pointer tree remains available behind the ``rtree_layout`` knob
(``"auto"``/``"soa"``/``"pointer"``); :func:`make_rtree` is the single
construction point used by every engine, and the two layouts are
property-tested for exact parity.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

try:  # pragma: no cover - exercised only without NumPy installed
    import numpy as _np
except ImportError:  # pragma: no cover - NumPy is optional
    _np = None  # type: ignore[assignment]

from repro.accel.rtree_kernels import HAVE_NUMPY, resolve_kernel_policy
from repro.exceptions import (
    DimensionMismatchError,
    DuplicateKeyError,
    KeyNotFoundError,
    corruption,
)
from repro.structures.rtree import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_MIN_ENTRIES,
    RTree,
)

Point = Tuple[float, ...]

#: Legal values of the ``rtree_layout`` knob.
RTREE_LAYOUTS = ("auto", "soa", "pointer")

#: Environment override consulted by ``rtree_layout="auto"`` — the CI
#: matrix mechanism (mirrors ``REPRO_SHARD_REPLICAS``).
LAYOUT_ENV = "REPRO_RTREE_LAYOUT"

#: Fraction below which average block occupancy triggers a repack.
_REPACK_OCCUPANCY = 0.35

#: Fill fraction a repack packs blocks to (headroom for new inserts).
_REPACK_FILL = 0.75


def resolve_rtree_layout(layout: str) -> str:
    """Map an ``rtree_layout`` knob value to the effective layout.

    ``"auto"`` consults the :data:`LAYOUT_ENV` environment variable
    (``soa``/``pointer``/``auto``) and otherwise prefers ``"soa"``
    whenever NumPy is importable.  ``"soa"`` without NumPy degrades to
    ``"pointer"`` with no error, like the kernels ``"on"`` policy.

    Raises
    ------
    ValueError
        If ``layout`` (or a non-empty :data:`LAYOUT_ENV`) is not one of
        :data:`RTREE_LAYOUTS`.
    """
    if layout not in RTREE_LAYOUTS:
        raise ValueError(
            f"rtree_layout must be one of {RTREE_LAYOUTS}, got {layout!r}"
        )
    if layout == "auto":
        env = os.environ.get(LAYOUT_ENV, "").strip().lower()
        if env and env not in RTREE_LAYOUTS:
            raise ValueError(
                f"{LAYOUT_ENV} must be one of {RTREE_LAYOUTS}, got {env!r}"
            )
        layout = env if env in ("soa", "pointer") else "soa"
    if layout == "soa" and not HAVE_NUMPY:
        return "pointer"
    return layout


class SoAEntry:
    """A stored record: a point, its arrival label and a payload.

    ``row`` is the entry's current index into the pooled arrays; it
    changes under swap-with-last deletion and repacking, and is ``-1``
    once the entry has been removed.
    """

    __slots__ = ("point", "kappa", "data", "row")

    def __init__(self, point: Point, kappa: int, data: Any) -> None:
        self.point = point
        self.kappa = kappa
        self.data = data
        self.row = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoAEntry(kappa={self.kappa}, point={self.point})"


class SoARTree:
    """Struct-of-arrays dominance index with the R-tree search surface.

    Drop-in for :class:`~repro.structures.rtree.RTree` everywhere the
    engines use it (same constructor knobs, same methods, same
    corruption check ids); requires NumPy — :func:`make_rtree` handles
    the fallback.

    Parameters
    ----------
    dim:
        Dimensionality of stored points.
    max_entries / min_entries:
        Accepted for interface parity (persisted and surfaced like the
        pointer tree's); the block capacity is derived from
        ``max_entries`` so tuning carries over proportionally.
    split:
        Accepted and recorded for parity (``"quadratic"``/``"rstar"``);
        blocks split by median along the widest axis regardless.
    kernels:
        Accepted, validated and recorded for parity; the SoA layout is
        always vectorised.
    """

    def __init__(
        self,
        dim: int,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int = DEFAULT_MIN_ENTRIES,
        split: str = "quadratic",
        kernels: str = "auto",
        block_capacity: Optional[int] = None,
    ) -> None:
        if _np is None:
            raise RuntimeError(
                "SoARTree requires NumPy; use rtree_layout='pointer'"
            )
        if dim < 1:
            raise ValueError(f"dimension must be positive, got {dim}")
        if not 2 <= min_entries <= max_entries // 2:
            raise ValueError(
                f"need 2 <= min_entries <= max_entries // 2, got "
                f"min={min_entries}, max={max_entries}"
            )
        if split not in ("quadratic", "rstar"):
            raise ValueError(
                f"split must be 'quadratic' or 'rstar', got {split!r}"
            )
        resolve_kernel_policy(kernels)  # validate; SoA always vectorises
        self.dim = dim
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.split_policy = split
        self.kernel_policy = kernels
        self.layout = "soa"
        self.layout_policy = "soa"
        if block_capacity is None:
            block_capacity = max(32, 4 * max_entries)
        if block_capacity < 2:
            raise ValueError(
                f"block_capacity must be >= 2, got {block_capacity}"
            )
        self.block_capacity = block_capacity
        #: Blocks expanded by the most recent ``report_dominated`` call
        #: (instrumentation, mirrors the pointer tree's counter).
        self.last_report_visits = 0
        blocks = 4
        rows = blocks * block_capacity
        self._points = _np.zeros((rows, dim), dtype=_np.float64)
        self._kappas = _np.full(rows, -1, dtype=_np.int64)
        self._rows: List[Optional[SoAEntry]] = [None] * rows
        self._blk_len = _np.zeros(blocks, dtype=_np.int64)
        self._blk_lower = _np.full((blocks, dim), _np.inf, dtype=_np.float64)
        self._blk_upper = _np.full((blocks, dim), -_np.inf, dtype=_np.float64)
        self._blk_maxk = _np.full(blocks, -1, dtype=_np.int64)
        self._free = list(range(blocks - 1, -1, -1))
        self._dirty: Set[int] = set()
        self._entries: Dict[int, SoAEntry] = {}

    # ------------------------------------------------------------------
    # Basic accessors (pointer-tree parity surface)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, kappa: int) -> bool:
        return kappa in self._entries

    def entries(self) -> Iterator[SoAEntry]:
        """Iterate all entries (arbitrary deterministic order)."""
        return iter(list(self._entries.values()))

    def entry(self, kappa: int) -> SoAEntry:
        """The entry labelled ``kappa``."""
        entry = self._entries.get(kappa)
        if entry is None:
            raise KeyNotFoundError(f"no entry with kappa={kappa}")
        return entry

    def height(self) -> int:
        """Always 1: the SoA index is a single level of blocks."""
        return 1

    def active_blocks(self) -> int:
        """Number of non-empty blocks (introspection/benchmarks)."""
        return int((self._blk_len > 0).sum())

    # ------------------------------------------------------------------
    # Block bookkeeping
    # ------------------------------------------------------------------

    def _alloc_block(self) -> int:
        if not self._free:
            self._grow()
        return int(self._free.pop())

    def _grow(self) -> None:
        """Double the block pool (amortised array growth)."""
        old = int(self._blk_len.shape[0])
        new = old * 2
        cap = self.block_capacity
        self._points = _np.vstack(
            [self._points, _np.zeros((old * cap, self.dim))]
        )
        self._kappas = _np.concatenate(
            [self._kappas, _np.full(old * cap, -1, dtype=_np.int64)]
        )
        self._rows.extend([None] * (old * cap))
        self._blk_len = _np.concatenate(
            [self._blk_len, _np.zeros(old, dtype=_np.int64)]
        )
        self._blk_lower = _np.vstack(
            [self._blk_lower, _np.full((old, self.dim), _np.inf)]
        )
        self._blk_upper = _np.vstack(
            [self._blk_upper, _np.full((old, self.dim), -_np.inf)]
        )
        self._blk_maxk = _np.concatenate(
            [self._blk_maxk, _np.full(old, -1, dtype=_np.int64)]
        )
        self._free.extend(range(new - 1, old - 1, -1))

    def _release_block(self, b: int) -> None:
        """Return an emptied block slot to the free pool."""
        self._blk_lower[b] = _np.inf
        self._blk_upper[b] = -_np.inf
        self._blk_maxk[b] = -1
        self._blk_len[b] = 0
        self._dirty.discard(b)
        self._free.append(b)

    def _refresh(self) -> None:
        """Re-derive tight summaries for every dirty block.

        Called at the start of each search: deletions in between only
        *shrink* a block's true extent, so the stored summary stays a
        conservative superset and pruning in the interim remains sound;
        refreshing here restores exact pruning at one recompute per
        touched block per slide, however many elements expired.
        """
        if not self._dirty:
            return
        cap = self.block_capacity
        for b in self._dirty:
            length = int(self._blk_len[b])
            start = b * cap
            pts = self._points[start:start + length]
            self._blk_lower[b] = pts.min(axis=0)
            self._blk_upper[b] = pts.max(axis=0)
            self._blk_maxk[b] = self._kappas[start:start + length].max()
        self._dirty.clear()

    def _recompute_block(self, b: int) -> None:
        """Tight summary for one block (empty blocks are released)."""
        length = int(self._blk_len[b])
        if length == 0:
            self._release_block(b)
            return
        cap = self.block_capacity
        start = b * cap
        pts = self._points[start:start + length]
        self._blk_lower[b] = pts.min(axis=0)
        self._blk_upper[b] = pts.max(axis=0)
        self._blk_maxk[b] = self._kappas[start:start + length].max()
        self._dirty.discard(b)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(
        self, point: Sequence[float], kappa: int, data: Any = None
    ) -> SoAEntry:
        """Insert ``point`` with arrival label ``kappa``.

        Raises
        ------
        DuplicateKeyError
            If an entry with this ``kappa`` already exists.
        DimensionMismatchError
            If the point has the wrong dimensionality.
        """
        if len(point) != self.dim:
            raise DimensionMismatchError(self.dim, len(point))
        if kappa in self._entries:
            raise DuplicateKeyError(
                f"entry with kappa={kappa} already present"
            )
        coords = tuple(float(v) for v in point)
        probe = _np.asarray(coords, dtype=_np.float64)
        entry = SoAEntry(coords, kappa, data)
        self._entries[kappa] = entry
        b = self._choose_block(probe)
        if int(self._blk_len[b]) >= self.block_capacity:
            b = self._split_block(b, probe)
        cap = self.block_capacity
        row = b * cap + int(self._blk_len[b])
        self._points[row] = probe
        self._kappas[row] = kappa
        self._rows[row] = entry
        entry.row = row
        self._blk_len[b] += 1
        # Extend the summary in place: exact when the block was tight,
        # still conservative when it was dirty.
        _np.minimum(self._blk_lower[b], probe, out=self._blk_lower[b])
        _np.maximum(self._blk_upper[b], probe, out=self._blk_upper[b])
        if kappa > int(self._blk_maxk[b]):
            self._blk_maxk[b] = kappa
        return entry

    def _choose_block(self, probe: Any) -> int:
        """Guttman ChooseLeaf over blocks: least enlargement, then least
        area, then fewest occupants (all vectorised)."""
        active = _np.flatnonzero(self._blk_len > 0)
        if active.size == 0:
            return self._alloc_block()
        lower = self._blk_lower[active]
        upper = self._blk_upper[active]
        area = _np.prod(upper - lower, axis=1)
        grown = _np.prod(
            _np.maximum(upper, probe) - _np.minimum(lower, probe), axis=1
        )
        enlargement = grown - area
        # Argmin cascade instead of a three-key lexsort: each tie-break
        # only materialises when the previous key actually ties, which
        # is the common case for key one (zero enlargement) but rare
        # after that.  Picks the identical block to the stable lexsort
        # (first index among the minimal triples).
        cand = _np.flatnonzero(enlargement == enlargement.min())
        if cand.size > 1:
            sub_area = area[cand]
            cand = cand[sub_area == sub_area.min()]
            if cand.size > 1:
                sub_len = self._blk_len[active[cand]]
                cand = cand[sub_len == sub_len.min()]
        return int(active[cand[0]])

    def _split_block(self, b: int, probe: Any) -> int:
        """Split a full block by median along its widest axis; return
        whichever half needs less enlargement for ``probe``."""
        cap = self.block_capacity
        start = b * cap
        length = int(self._blk_len[b])
        pts = self._points[start:start + length].copy()
        kappas = self._kappas[start:start + length].copy()
        owners = self._rows[start:start + length]
        axis = int(_np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = _np.argsort(pts[:, axis], kind="stable")
        half = length // 2
        sibling = self._alloc_block()
        for target, picks in ((b, order[:half]), (sibling, order[half:])):
            tstart = target * cap
            self._points[tstart:tstart + picks.size] = pts[picks]
            self._kappas[tstart:tstart + picks.size] = kappas[picks]
            for offset, src in enumerate(picks.tolist()):
                owner = owners[src]
                self._rows[tstart + offset] = owner
                if owner is not None:
                    owner.row = tstart + offset
            for row in range(tstart + picks.size, tstart + cap):
                self._rows[row] = None
            self._blk_len[target] = picks.size
            self._recompute_block(target)
        grow_b = self._enlargement_of(b, probe)
        grow_s = self._enlargement_of(sibling, probe)
        return b if grow_b <= grow_s else sibling

    def _enlargement_of(self, b: int, probe: Any) -> float:
        lower = self._blk_lower[b]
        upper = self._blk_upper[b]
        grown = _np.prod(
            _np.maximum(upper, probe) - _np.minimum(lower, probe)
        )
        return float(grown - _np.prod(upper - lower))

    # ------------------------------------------------------------------
    # Deletion (batched-expiry path)
    # ------------------------------------------------------------------

    def delete(self, kappa: int) -> SoAEntry:
        """Remove the entry labelled ``kappa``.

        O(1): the row is swapped with its block's last live row and the
        block's summary is marked dirty — re-derivation is deferred to
        the next search, so a whole window slide of expiries costs one
        summary recompute per touched block.
        """
        entry = self._entries.pop(kappa, None)
        if entry is None:
            raise KeyNotFoundError(f"no entry with kappa={kappa}")
        row = entry.row
        cap = self.block_capacity
        b = row // cap
        last = b * cap + int(self._blk_len[b]) - 1
        if row != last:
            mover = self._rows[last]
            self._points[row] = self._points[last]
            self._kappas[row] = self._kappas[last]
            self._rows[row] = mover
            if mover is not None:
                mover.row = row
        self._rows[last] = None
        self._blk_len[b] -= 1
        entry.row = -1
        if int(self._blk_len[b]) == 0:
            self._release_block(b)
        else:
            self._dirty.add(b)
        self._maybe_repack()
        return entry

    def _maybe_repack(self) -> None:
        """Repack when average occupancy decays below the threshold.

        Long-running expiry can strand many near-empty blocks whose
        summaries still cost a visit each; packing the survivors into
        ~:data:`_REPACK_FILL`-full blocks (sorted for spatial locality)
        restores dense slices.
        """
        live = len(self._entries)
        active = int((self._blk_len > 0).sum())
        if active <= 1:
            return
        if live >= _REPACK_OCCUPANCY * active * self.block_capacity:
            return
        entries = sorted(self._entries.values(), key=lambda e: e.point)
        cap = self.block_capacity
        fill = max(2, int(cap * _REPACK_FILL))
        blocks = int(self._blk_len.shape[0])
        self._rows = [None] * (blocks * cap)
        self._blk_len[:] = 0
        self._blk_lower[:] = _np.inf
        self._blk_upper[:] = -_np.inf
        self._blk_maxk[:] = -1
        self._dirty.clear()
        self._free = list(range(blocks - 1, -1, -1))
        for chunk_start in range(0, len(entries), fill):
            chunk = entries[chunk_start:chunk_start + fill]
            b = self._alloc_block()
            start = b * cap
            for offset, entry in enumerate(chunk):
                row = start + offset
                self._points[row] = entry.point
                self._kappas[row] = entry.kappa
                self._rows[row] = entry
                entry.row = row
            self._blk_len[b] = len(chunk)
            self._recompute_block(b)

    # ------------------------------------------------------------------
    # Dominance reporting (Figure 7a as block-mask + slice reductions)
    # ------------------------------------------------------------------

    def _candidate_blocks(self, probe: Any) -> Any:
        """Blocks whose box may contain points dominated by ``probe``
        (``probe <= upper`` on every axis), as an index array."""
        active = _np.flatnonzero(self._blk_len > 0)
        if active.size == 0:
            return active
        mask = (probe <= self._blk_upper[active]).all(axis=1)
        return active[mask]

    def report_dominated(self, q: Sequence[float]) -> List[SoAEntry]:
        """Entries weakly dominated by ``q`` (non-destructive), sorted
        by kappa.

        One broadcasted test selects candidate blocks (Figure 7a);
        blocks whose lower corner is dominated are harvested whole
        (l-corner shortcut); the rest are answered by a single
        reduction over their slice.  :attr:`last_report_visits` counts
        the blocks expanded.
        """
        if len(q) != self.dim:
            raise DimensionMismatchError(self.dim, len(q))
        self._refresh()
        probe = _np.asarray(q, dtype=_np.float64)
        out: List[SoAEntry] = []
        cand = self._candidate_blocks(probe)
        visits = 0
        cap = self.block_capacity
        if cand.size:
            whole = (probe <= self._blk_lower[cand]).all(axis=1)
            for b, harvest in zip(cand.tolist(), whole.tolist()):
                visits += 1
                start = b * cap
                length = int(self._blk_len[b])
                if harvest:
                    rows: Iterator[int] = iter(range(start, start + length))
                else:
                    hits = _np.flatnonzero(
                        (probe <= self._points[start:start + length]).all(
                            axis=1
                        )
                    )
                    rows = (start + i for i in hits.tolist())
                for row in rows:
                    owner = self._rows[row]
                    if owner is not None:
                        out.append(owner)
        self.last_report_visits = visits
        out.sort(key=lambda e: e.kappa)
        return out

    def remove_dominated(self, q: Sequence[float]) -> List[SoAEntry]:
        """Remove and return every entry weakly dominated by ``q``
        (Algorithm 1's ``D_{e_new}``), sorted by kappa.

        Survivors of each touched block are compacted in one gather;
        emptied blocks are released; summaries are re-derived tight
        immediately (the slice is already hot).
        """
        if len(q) != self.dim:
            raise DimensionMismatchError(self.dim, len(q))
        self._refresh()
        probe = _np.asarray(q, dtype=_np.float64)
        removed: List[SoAEntry] = []
        cand = self._candidate_blocks(probe)
        cap = self.block_capacity
        for b in cand.tolist():
            start = b * cap
            length = int(self._blk_len[b])
            if (probe <= self._blk_lower[b]).all():
                # l-corner: the whole block is dominated.
                for row in range(start, start + length):
                    owner = self._rows[row]
                    if owner is not None:
                        removed.append(owner)
                    self._rows[row] = None
                self._blk_len[b] = 0
                self._release_block(b)
                continue
            mask = (probe <= self._points[start:start + length]).all(axis=1)
            hits = _np.flatnonzero(mask)
            if hits.size == 0:
                continue
            keep = _np.flatnonzero(~mask)
            for i in hits.tolist():
                owner = self._rows[start + i]
                if owner is not None:
                    removed.append(owner)
            kept_rows = [self._rows[start + i] for i in keep.tolist()]
            self._points[start:start + keep.size] = (
                self._points[start + keep]
            )
            self._kappas[start:start + keep.size] = (
                self._kappas[start + keep]
            )
            for offset, owner in enumerate(kept_rows):
                self._rows[start + offset] = owner
                if owner is not None:
                    owner.row = start + offset
            for row in range(start + keep.size, start + length):
                self._rows[row] = None
            self._blk_len[b] = keep.size
            self._recompute_block(b)
        for entry in removed:
            del self._entries[entry.kappa]
            entry.row = -1
        if removed:
            self._maybe_repack()
        removed.sort(key=lambda e: e.kappa)
        return removed

    # ------------------------------------------------------------------
    # Best-first critical-dominator search (Figure 7b over blocks)
    # ------------------------------------------------------------------

    def max_kappa_dominator(
        self, q: Sequence[float], kappa_below: Optional[int] = None
    ) -> Optional[SoAEntry]:
        """The entry with the largest ``kappa`` weakly dominating ``q``
        (optionally restricted to ``kappa < kappa_below``), or ``None``.

        Candidate blocks (``lower <= q`` on every axis, Figure 7b) are
        visited in descending ``max_kappa`` order; once the best found
        kappa meets the next block's augmentation bound the scan stops
        — the block-level analogue of the paper's best-first pruning.
        """
        if len(q) != self.dim:
            raise DimensionMismatchError(self.dim, len(q))
        self._refresh()
        probe = _np.asarray(q, dtype=_np.float64)
        active = _np.flatnonzero(self._blk_len > 0)
        if active.size == 0:
            return None
        mask = (self._blk_lower[active] <= probe).all(axis=1)
        cand = active[mask]
        if cand.size == 0:
            return None
        order = cand[_np.argsort(-self._blk_maxk[cand], kind="stable")]
        cap = self.block_capacity
        best: Optional[SoAEntry] = None
        best_kappa = -1
        for b in order.tolist():
            if int(self._blk_maxk[b]) <= best_kappa:
                break
            start = b * cap
            length = int(self._blk_len[b])
            pts = self._points[start:start + length]
            hit = (pts <= probe).all(axis=1)
            if kappa_below is not None:
                hit &= self._kappas[start:start + length] < kappa_below
            idx = _np.flatnonzero(hit)
            if idx.size == 0:
                continue
            kappas = self._kappas[start:start + length][idx]
            top = int(_np.argmax(kappas))
            if int(kappas[top]) > best_kappa:
                best_kappa = int(kappas[top])
                best = self._rows[start + int(idx[top])]
        return best

    def top_kappa_dominators(
        self, q: Sequence[float], k: int
    ) -> List[SoAEntry]:
        """The ``k`` youngest entries weakly dominating ``q``, youngest
        first (fewer if fewer exist).

        One vectorised sweep gathers every dominator, then a partial
        sort picks the top ``k`` — cheaper than ``k`` repeated
        best-first searches on this layout.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(q) != self.dim:
            raise DimensionMismatchError(self.dim, len(q))
        self._refresh()
        probe = _np.asarray(q, dtype=_np.float64)
        active = _np.flatnonzero(self._blk_len > 0)
        if active.size == 0:
            return []
        mask = (self._blk_lower[active] <= probe).all(axis=1)
        cand = active[mask]
        cap = self.block_capacity
        rows: List[int] = []
        kappas: List[int] = []
        for b in cand.tolist():
            start = b * cap
            length = int(self._blk_len[b])
            hit = _np.flatnonzero(
                (self._points[start:start + length] <= probe).all(axis=1)
            )
            for i in hit.tolist():
                rows.append(start + i)
                kappas.append(int(self._kappas[start + i]))
        if not rows:
            return []
        order = _np.argsort(_np.asarray(kappas, dtype=_np.int64))[::-1][:k]
        found: List[SoAEntry] = []
        for i in order.tolist():
            owner = self._rows[rows[i]]
            if owner is not None:
                found.append(owner)
        return found

    # ------------------------------------------------------------------
    # Bulk maintenance (batched-ingest pipeline)
    # ------------------------------------------------------------------

    def report_dominated_batch(
        self,
        points: Sequence[Sequence[float]],
        first_only: bool = True,
    ) -> List[List[SoAEntry]]:
        """Dominated entries for a whole chunk of probes in one pass.

        Returns one bucket per probe.  With ``first_only=True`` (the
        skyline engines) each dominated entry is attributed to the
        *earliest* probe that dominates it — exactly the arrival whose
        per-element ``remove_dominated`` call would have claimed it.
        With ``first_only=False`` (the k-skyband engine) an entry
        appears in the bucket of *every* probe dominating it, so each
        arrival can count its own younger-dominance hits.

        Candidacy is resolved *per probe* (probe against block upper
        corner, one ``m x B`` compare per dimension); the live rows of
        every reachable block are then harvested with one vectorised
        multi-arange and answered by a single dense ``m x rows``
        dominance mask, built one dimension at a time with in-place
        ``&=``.  (A per-block loop answers the same query with ~8 small
        ``numpy`` calls per visited block — overhead-dominated; and a
        joint chunk-envelope candidacy makes nearly every block a
        candidate once the chunk is spread — measured ~2x slower at
        d=5.)  Buckets are kappa-sorted, matching
        :meth:`report_dominated`.  Non-destructive: callers running the
        deferred-mutation ingest pipeline apply the removals later via
        :meth:`delete_many`.
        """
        buckets: List[List[SoAEntry]] = [[] for _ in range(len(points))]
        if not points:
            return buckets
        for p in points:
            if len(p) != self.dim:
                raise DimensionMismatchError(self.dim, len(p))
        self._refresh()
        probes = _np.asarray(
            [tuple(float(v) for v in p) for p in points], dtype=_np.float64
        )
        active = _np.flatnonzero(self._blk_len > 0)
        if active.size == 0:
            self.last_report_visits = 0
            return buckets
        # A probe can only dominate rows of blocks whose upper corner
        # it is below: per-probe candidacy, not the chunk's joint box.
        upper = self._blk_upper[active]
        cand_mat = probes[:, 0][:, None] <= upper[None, :, 0]
        for k in range(1, self.dim):
            cand_mat &= probes[:, k][:, None] <= upper[None, :, k]
        hit = cand_mat.any(axis=0)
        self.last_report_visits = int(hit.sum())
        bs = active[hit]
        if bs.size == 0:
            return buckets
        cap = self.block_capacity
        starts = (bs * cap).astype(_np.int64)
        lens = self._blk_len[bs].astype(_np.int64)
        total = int(lens.sum())
        rows = _np.repeat(starts, lens) + (
            _np.arange(total, dtype=_np.int64)
            - _np.repeat(_np.cumsum(lens) - lens, lens)
        )
        pts_t = _np.ascontiguousarray(self._points[rows].T)
        dom = probes[:, 0][:, None] <= pts_t[0][None, :]
        for k in range(1, self.dim):
            dom &= probes[:, k][:, None] <= pts_t[k][None, :]
        if first_only:
            cols = _np.flatnonzero(dom.any(axis=0))
            if cols.size:
                # Probes ascend in arrival order, so the axis-0 argmax
                # is the earliest probe dominating that row.
                first = dom[:, cols].argmax(axis=0)
                for col, pos in zip(cols.tolist(), first.tolist()):
                    owner = self._rows[int(rows[col])]
                    if owner is not None:
                        buckets[pos].append(owner)
        else:
            for pos, col in _np.argwhere(dom).tolist():
                owner = self._rows[int(rows[col])]
                if owner is not None:
                    buckets[pos].append(owner)
        for bucket in buckets:
            bucket.sort(key=lambda e: e.kappa)
        return buckets

    def max_kappa_dominator_batch(
        self, points: Sequence[Sequence[float]]
    ) -> List[Optional[SoAEntry]]:
        """The critical-dominator answer for a whole chunk at once.

        Equivalent to ``[max_kappa_dominator(p) for p in points]``:
        the live rows of every block some probe can reach (block lower
        corner below the probe) are harvested with one vectorised
        multi-arange, sorted once by descending ``kappa``, and swept in
        doubling segments — a probe drops out of the sweep at its first
        hit, which in descending-``kappa`` order *is* its critical
        dominator.  The doubling schedule is the chunk-wide analogue of
        the paper's best-first stop: most probes resolve inside the
        first segment (recent arrivals dominate most of the window), so
        the expensive full-depth scan is paid only by the few probes
        with no dominator at all.  (A per-block scan in descending
        ``max_kappa`` order answers the same query but spends ~10 small
        ``numpy`` calls per visited block; on a couple hundred blocks
        that overhead dwarfs the actual comparison work — measured ~5x
        slower at d=5.)
        """
        if not points:
            return []
        for p in points:
            if len(p) != self.dim:
                raise DimensionMismatchError(self.dim, len(p))
        self._refresh()
        m = len(points)
        probes = _np.asarray(
            [tuple(float(v) for v in p) for p in points], dtype=_np.float64
        )
        active = _np.flatnonzero(self._blk_len > 0)
        if active.size == 0:
            return [None] * m
        # A block can hold a dominator of some probe only if its lower
        # corner sits below the chunk's per-dimension upper envelope —
        # conservative (a superset of the exact per-probe union) but a
        # B x d test instead of a B x m x d broadcast, and the exact
        # dominance sweep below makes over-harvesting harmless.
        cand = (self._blk_lower[active] <= probes.max(axis=0)).all(axis=1)
        bs = active[cand]
        if bs.size == 0:
            return [None] * m
        cap = self.block_capacity
        starts = (bs * cap).astype(_np.int64)
        lens = self._blk_len[bs].astype(_np.int64)
        total = int(lens.sum())
        # Multi-arange: live row indices of all candidate blocks at once.
        rows = _np.repeat(starts, lens) + (
            _np.arange(total, dtype=_np.int64)
            - _np.repeat(_np.cumsum(lens) - lens, lens)
        )
        # Kappas are unique, so a plain ascending argsort reversed is
        # the descending order (no stability needed).
        rows = rows[_np.argsort(self._kappas[rows])[::-1]]
        # One transposed contiguous copy: the sweep then runs d small
        # 2D compares per segment instead of one strided 3D broadcast
        # plus an all-reduction (measured ~3x faster at d=5).
        pts_t = _np.ascontiguousarray(self._points[rows].T)
        best_row = _np.full(m, -1, dtype=_np.int64)
        alive = _np.arange(m, dtype=_np.int64)
        lo = 0
        seg = 1024
        while lo < total and alive.size:
            hi = min(total, lo + seg)
            pa = probes[alive]
            dom = pts_t[0, lo:hi][None, :] <= pa[:, 0][:, None]
            for k in range(1, self.dim):
                dom &= pts_t[k, lo:hi][None, :] <= pa[:, k][:, None]
            hit = dom.any(axis=1)
            if hit.any():
                # First hit in the segment = highest kappa (rows are
                # globally kappa-sorted and kappas are unique).
                first = dom[hit].argmax(axis=1)
                best_row[alive[hit]] = rows[lo + first]
                alive = alive[~hit]
            lo = hi
            seg *= 2
        return [
            self._rows[row] if row >= 0 else None
            for row in best_row.tolist()
        ]

    def delete_many(self, kappas: Sequence[int]) -> List[SoAEntry]:
        """Remove a whole chunk's victims in one pass per touched block.

        The batched-ingest analogue of per-victim :meth:`delete`:
        victims are grouped by block, each touched block's survivors
        are compacted with one gather, and the block is dirty-marked
        once — the single deferred re-summarise happens at the next
        search or :meth:`insert_many`.  At most one repack at the end.
        All-or-nothing: unknown or duplicated kappas raise before any
        mutation.  Returns the removed entries in argument order.
        """
        if not kappas:
            return []
        seen: Set[int] = set()
        for kappa in kappas:
            if kappa in seen:
                raise KeyNotFoundError(
                    f"kappa={kappa} repeated in delete_many"
                )
            seen.add(kappa)
            if kappa not in self._entries:
                raise KeyNotFoundError(f"no entry with kappa={kappa}")
        removed = [self._entries.pop(kappa) for kappa in kappas]
        cap = self.block_capacity
        by_block: Dict[int, List[SoAEntry]] = {}
        for entry in removed:
            by_block.setdefault(entry.row // cap, []).append(entry)
        for b, victims in by_block.items():
            start = b * cap
            length = int(self._blk_len[b])
            gone = {entry.row for entry in victims}
            keep = [
                row for row in range(start, start + length)
                if row not in gone
            ]
            if not keep:
                for row in range(start, start + length):
                    self._rows[row] = None
                self._blk_len[b] = 0
                self._release_block(b)
            else:
                keep_idx = _np.asarray(keep, dtype=_np.int64)
                self._points[start:start + len(keep)] = (
                    self._points[keep_idx]
                )
                self._kappas[start:start + len(keep)] = (
                    self._kappas[keep_idx]
                )
                kept_owners = [self._rows[row] for row in keep]
                for offset, owner in enumerate(kept_owners):
                    self._rows[start + offset] = owner
                    if owner is not None:
                        owner.row = start + offset
                for row in range(start + len(keep), start + length):
                    self._rows[row] = None
                self._blk_len[b] = len(keep)
                self._dirty.add(b)
            for entry in victims:
                entry.row = -1
        self._maybe_repack()
        return removed

    def insert_many(
        self,
        points: Sequence[Sequence[float]],
        kappas: Sequence[int],
        datas: Optional[Sequence[Any]] = None,
    ) -> List[SoAEntry]:
        """Insert a whole chunk's survivors in one validated pass.

        Placement is per-point adaptive Guttman — the same choose /
        split / in-place-extend routine as :meth:`insert`, so a
        bulk-built index is block-for-block as tight as a per-element
        one.  (A frozen mass placement — every point choosing against
        the chunk-start summaries at once — measured 3.5x looser block
        boxes and ~3.7x more block opens per subsequent probe: chunk
        survivors are frontier points, and assigning them by stale
        least-enlargement stretches interior blocks across the
        frontier.)  The batching win lives in the bulk searches and
        :meth:`delete_many`, not here; the single ``_refresh()`` up
        front tightens every block a preceding :meth:`delete_many`
        left dirty, which keeps the in-place summary extension exact.
        All-or-nothing on validation errors.
        """
        if len(points) != len(kappas):
            raise ValueError(
                f"insert_many got {len(points)} points but "
                f"{len(kappas)} kappas"
            )
        if datas is not None and len(datas) != len(points):
            raise ValueError(
                f"insert_many got {len(points)} points but "
                f"{len(datas)} payloads"
            )
        for p in points:
            if len(p) != self.dim:
                raise DimensionMismatchError(self.dim, len(p))
        fresh: Set[int] = set()
        for kappa in kappas:
            if kappa in self._entries or kappa in fresh:
                raise DuplicateKeyError(
                    f"entry with kappa={kappa} already present"
                )
            fresh.add(int(kappa))
        if not points:
            return []
        self._refresh()
        coords = [tuple(float(v) for v in p) for p in points]
        probes = _np.asarray(coords, dtype=_np.float64)
        cap = self.block_capacity
        entries: List[SoAEntry] = []
        # Chunk-local placement cache.  ``_choose_block`` re-derives
        # the active-block list and every block's area on each call;
        # across a chunk those change only at the block just extended
        # (or the rare split), so mirror them once and update the
        # touched row in place.  Choices are identical to per-element
        # ``insert``: same keys, same ascending block order.
        act = _np.flatnonzero(self._blk_len > 0).astype(_np.int64)
        low = self._blk_lower[act].copy()
        upp = self._blk_upper[act].copy()
        area = _np.prod(upp - low, axis=1)
        lens = self._blk_len[act].astype(_np.int64)

        def _rebuild() -> None:
            nonlocal act, low, upp, area, lens
            act = _np.flatnonzero(self._blk_len > 0).astype(_np.int64)
            low = self._blk_lower[act].copy()
            upp = self._blk_upper[act].copy()
            area = _np.prod(upp - low, axis=1)
            lens = self._blk_len[act].astype(_np.int64)

        for i, c in enumerate(coords):
            probe = probes[i]
            entry = SoAEntry(
                c, int(kappas[i]), None if datas is None else datas[i]
            )
            fast = False
            new_area = 0.0
            pos = -1
            if act.size:
                grown = _np.prod(
                    _np.maximum(upp, probe) - _np.minimum(low, probe),
                    axis=1,
                )
                enl = grown - area
                cand = _np.flatnonzero(enl == enl.min())
                if cand.size > 1:
                    sub_area = area[cand]
                    cand = cand[sub_area == sub_area.min()]
                    if cand.size > 1:
                        sub_len = lens[cand]
                        cand = cand[sub_len == sub_len.min()]
                pos = int(cand[0])
                if int(lens[pos]) < cap:
                    fast = True
                    new_area = float(grown[pos])
                    b = int(act[pos])
                else:
                    b = self._split_block(int(act[pos]), probe)
            else:
                b = self._alloc_block()
            if fast:
                row = b * cap + int(lens[pos])
                self._points[row] = probe
                self._kappas[row] = entry.kappa
                self._rows[row] = entry
                entry.row = row
                self._blk_len[b] += 1
                lens[pos] += 1
                lo_r = _np.minimum(low[pos], probe)
                up_r = _np.maximum(upp[pos], probe)
                low[pos] = lo_r
                upp[pos] = up_r
                self._blk_lower[b] = lo_r
                self._blk_upper[b] = up_r
                # ``grown[pos]`` *is* the block's area once extended.
                area[pos] = new_area
            else:
                # Fresh or just-split block: write through the global
                # arrays, then re-mirror the cache (rare).
                row = b * cap + int(self._blk_len[b])
                self._points[row] = probe
                self._kappas[row] = entry.kappa
                self._rows[row] = entry
                entry.row = row
                self._blk_len[b] += 1
                _np.minimum(
                    self._blk_lower[b], probe, out=self._blk_lower[b]
                )
                _np.maximum(
                    self._blk_upper[b], probe, out=self._blk_upper[b]
                )
                _rebuild()
            if entry.kappa > int(self._blk_maxk[b]):
                self._blk_maxk[b] = entry.kappa
            self._entries[entry.kappa] = entry
            entries.append(entry)
        return entries

    # ------------------------------------------------------------------
    # Validation (used by the sanitizer and the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify structural invariants over the whole index.

        Raises the same check ids as the pointer tree wherever the
        concept carries over — in particular ``rtree-kernel-cache``
        covers the pooled coordinate/kappa matrices (the SoA analogue
        of a cached leaf kernel: the matrix must mirror the entry
        objects row for row).  Dirty blocks are *not* refreshed first:
        their summaries must still be conservative supersets.

        Raises
        ------
        StructureCorruptionError
            On the first violated property (survives ``python -O``).
        """
        cap = self.block_capacity
        blocks = int(self._blk_len.shape[0])
        total = int(self._blk_len.sum())
        if total != len(self._entries):
            raise corruption(
                "rtree",
                "rtree-count",
                f"entry count mismatch: blocks hold {total}, index has "
                f"{len(self._entries)}",
            )
        for b in range(blocks):
            length = int(self._blk_len[b])
            if length < 0 or length > cap:
                raise corruption(
                    "rtree",
                    "rtree-fanout",
                    f"block {b} holds {length} rows (capacity {cap})",
                )
            start = b * cap
            for offset in range(length):
                owner = self._rows[start + offset]
                if owner is None or owner.row != start + offset:
                    raise corruption(
                        "rtree",
                        "rtree-links",
                        f"row {start + offset} does not link back to its "
                        f"entry",
                    )
            for offset in range(length, cap):
                if self._rows[start + offset] is not None:
                    raise corruption(
                        "rtree",
                        "rtree-links",
                        f"ghost entry past block {b}'s live range",
                    )
            if length == 0:
                if int(self._blk_maxk[b]) != -1 or not (
                    self._blk_lower[b] == _np.inf
                ).all():
                    raise corruption(
                        "rtree",
                        "rtree-mbr",
                        f"empty block {b} has a non-empty summary",
                    )
                continue
            pts = self._points[start:start + length]
            kappas = self._kappas[start:start + length]
            for offset in range(length):
                owner = self._rows[start + offset]
                if owner is None:  # unreachable: link check above
                    continue
                if (
                    tuple(pts[offset].tolist()) != owner.point  # lint: skip=REPRO004
                    or int(kappas[offset]) != owner.kappa
                ):
                    raise corruption(
                        "rtree",
                        "rtree-kernel-cache",
                        "pooled coordinate/kappa matrix does not mirror "
                        "the entry objects",
                        kappas=(owner.kappa,),
                    )
            lower = pts.min(axis=0)
            upper = pts.max(axis=0)
            maxk = int(kappas.max())
            if b in self._dirty:
                if (self._blk_lower[b] > lower).any() or (
                    self._blk_upper[b] < upper
                ).any():
                    raise corruption(
                        "rtree",
                        "rtree-mbr",
                        f"dirty block {b} summary is not conservative",
                    )
                if int(self._blk_maxk[b]) < maxk:
                    raise corruption(
                        "rtree",
                        "rtree-augmentation",
                        f"dirty block {b} max-kappa below its rows",
                    )
            else:
                if (self._blk_lower[b] != lower).any() or (
                    self._blk_upper[b] != upper
                ).any():
                    raise corruption(
                        "rtree", "rtree-mbr", f"block {b} box not tight"
                    )
                if int(self._blk_maxk[b]) != maxk:
                    raise corruption(
                        "rtree",
                        "rtree-augmentation",
                        f"block {b} max-kappa {int(self._blk_maxk[b])} "
                        f"does not match its rows",
                    )
        rows_total = blocks * cap
        for kappa, entry in self._entries.items():
            if entry.kappa != kappa:
                raise corruption(
                    "rtree",
                    "rtree-links",
                    f"index key {kappa} holds entry labelled {entry.kappa}",
                    kappas=(kappa,),
                )
            row = entry.row
            if not 0 <= row < rows_total or self._rows[row] is not entry:
                raise corruption(
                    "rtree",
                    "rtree-links",
                    f"stale row link for kappa={kappa}",
                    kappas=(kappa,),
                )
            if row % cap >= int(self._blk_len[row // cap]):
                raise corruption(
                    "rtree",
                    "rtree-links",
                    f"entry kappa={kappa} sits past its block's live "
                    f"range",
                    kappas=(kappa,),
                )


AnyRTree = Union[RTree, SoARTree]


def make_rtree(
    dim: int,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    min_entries: int = DEFAULT_MIN_ENTRIES,
    split: str = "quadratic",
    kernels: str = "auto",
    layout: str = "auto",
) -> AnyRTree:
    """Build the dominance index for an engine.

    The single construction point behind every engine's ``rtree_*``
    knobs: resolves ``layout`` via :func:`resolve_rtree_layout` and
    stamps the *requested* policy on the instance (``layout_policy``)
    next to the *effective* layout (``layout``) so persistence can
    round-trip the knob as configured.
    """
    effective = resolve_rtree_layout(layout)
    index: AnyRTree
    if effective == "soa":
        index = SoARTree(
            dim,
            max_entries=max_entries,
            min_entries=min_entries,
            split=split,
            kernels=kernels,
        )
    else:
        index = RTree(
            dim,
            max_entries=max_entries,
            min_entries=min_entries,
            split=split,
            kernels=kernels,
        )
    index.layout_policy = layout
    return index
