"""A red-black tree with augmentation hooks.

The paper's data-structure stack (Figures 6 and 11) relies on balanced
search trees twice: the interval trees ``I_{R_N}`` / ``I_{R_N-}`` and
the ordering of the label set.  This module provides the balanced-tree
substrate: a classic CLRS red-black tree storing ``(key, value)`` pairs
with

* ``O(log n)`` insert / delete / lookup,
* ordered iteration, minimum and successor navigation, and
* an **augmentation hook**: a callable invoked bottom-up on every node
  whose subtree changed, enabling derived structures (the max-high
  augmented interval tree of :mod:`repro.structures.interval_tree`) to
  maintain per-subtree aggregates through rotations.

Keys must be mutually comparable and unique; callers that need
duplicate logical keys (the interval tree does) disambiguate with a
sequence number inside the key tuple.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.exceptions import (
    DuplicateKeyError,
    EmptyStructureError,
    KeyNotFoundError,
    corruption,
)

K = TypeVar("K")
V = TypeVar("V")

RED = True
BLACK = False


class RBNode(Generic[K, V]):
    """A node of :class:`RedBlackTree`.

    The ``aggregate`` slot is free for augmentations; the tree core
    never touches it except through the user-supplied hook.
    """

    __slots__ = ("key", "value", "color", "left", "right", "parent", "aggregate")

    def __init__(self, key: K, value: V) -> None:
        self.key = key
        self.value = value
        self.color = RED
        self.left: "RBNode[K, V]" = NIL  # type: ignore[assignment]
        self.right: "RBNode[K, V]" = NIL  # type: ignore[assignment]
        self.parent: "RBNode[K, V]" = NIL  # type: ignore[assignment]
        self.aggregate = None

    def is_nil(self) -> bool:
        """Whether this node is the shared sentinel."""
        return self is NIL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        color = "R" if self.color is RED else "B"
        return f"RBNode({self.key!r}, {color})"


class _NilNode(RBNode):
    """The shared sentinel leaf: black, self-parented, key-less."""

    __slots__ = ()

    def __init__(self) -> None:  # noqa: D401 - special construction
        # Bypass RBNode.__init__, which refers to NIL before it exists.
        self.key = None
        self.value = None
        self.color = BLACK
        self.left = self
        self.right = self
        self.parent = self
        self.aggregate = None

    def is_nil(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NIL"


#: Shared sentinel used as every leaf and as the root's parent.
NIL: RBNode = _NilNode()

AugmentFn = Callable[[RBNode], None]


class RedBlackTree(Generic[K, V]):
    """An ordered map on comparable keys, balanced as a red-black tree.

    Parameters
    ----------
    augment:
        Optional hook ``augment(node)`` recomputing ``node.aggregate``
        from ``node`` and its (possibly NIL) children.  It is invoked on
        every node whose subtree composition changed, children first.
    """

    def __init__(self, augment: Optional[AugmentFn] = None) -> None:
        self._root: RBNode[K, V] = NIL
        self._size = 0
        self._augment = augment

    # ------------------------------------------------------------------
    # Read operations
    # ------------------------------------------------------------------

    @property
    def root(self) -> RBNode[K, V]:
        """The root node (the NIL sentinel when the tree is empty)."""
        return self._root

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: K) -> bool:
        return not self.find(key).is_nil()

    def find(self, key: K) -> RBNode[K, V]:
        """Return the node holding ``key``, or the NIL sentinel."""
        node = self._root
        while not node.is_nil():
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return node

    def min_node(self) -> RBNode[K, V]:
        """The node with the smallest key.

        Raises
        ------
        EmptyStructureError
            If the tree is empty.
        """
        if self._root.is_nil():
            raise EmptyStructureError("min of an empty tree")
        return self._subtree_min(self._root)

    def max_node(self) -> RBNode[K, V]:
        """The node with the largest key."""
        if self._root.is_nil():
            raise EmptyStructureError("max of an empty tree")
        node = self._root
        while not node.right.is_nil():
            node = node.right
        return node

    def successor(self, node: RBNode[K, V]) -> RBNode[K, V]:
        """In-order successor of ``node`` (NIL if none)."""
        if not node.right.is_nil():
            return self._subtree_min(node.right)
        parent = node.parent
        while not parent.is_nil() and node is parent.right:
            node = parent
            parent = parent.parent
        return parent

    def items(self) -> Iterator[Tuple[K, V]]:
        """Yield ``(key, value)`` pairs in increasing key order."""
        stack: List[RBNode[K, V]] = []
        node = self._root
        while stack or not node.is_nil():
            while not node.is_nil():
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[K]:
        """Yield keys in increasing order."""
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: K, value: V) -> RBNode[K, V]:
        """Insert ``(key, value)``; return the new node.

        Raises
        ------
        DuplicateKeyError
            If ``key`` is already present.
        """
        parent: RBNode[K, V] = NIL
        cursor = self._root
        while not cursor.is_nil():
            parent = cursor
            if key == cursor.key:
                raise DuplicateKeyError(f"duplicate key: {key!r}")
            cursor = cursor.left if key < cursor.key else cursor.right

        node: RBNode[K, V] = RBNode(key, value)
        node.parent = parent
        if parent.is_nil():
            self._root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node

        self._size += 1
        self._refresh_upwards(node)
        self._insert_fixup(node)
        return node

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key: K) -> V:
        """Remove ``key``; return its value.

        Raises
        ------
        KeyNotFoundError
            If ``key`` is absent.
        """
        node = self.find(key)
        if node.is_nil():
            raise KeyNotFoundError(f"key not in tree: {key!r}")
        value = node.value
        self.delete_node(node)
        return value

    def delete_node(self, node: RBNode[K, V]) -> None:
        """Unlink ``node`` (which must belong to this tree)."""
        removed_color = node.color
        if node.left.is_nil():
            fixup_start = node.right
            refresh_from = node.parent
            self._transplant(node, node.right)
        elif node.right.is_nil():
            fixup_start = node.left
            refresh_from = node.parent
            self._transplant(node, node.left)
        else:
            # Two children: splice in the in-order successor.
            successor = self._subtree_min(node.right)
            removed_color = successor.color
            fixup_start = successor.right
            if successor.parent is node:
                refresh_from = successor
                # fixup_start's parent may be NIL; point it at successor
                # so the fixup can walk upward correctly.
                fixup_start.parent = successor
            else:
                refresh_from = successor.parent
                self._transplant(successor, successor.right)
                successor.right = node.right
                successor.right.parent = successor
            self._transplant(node, successor)
            successor.left = node.left
            successor.left.parent = successor
            successor.color = node.color

        self._size -= 1
        if not refresh_from.is_nil():
            self._refresh_upwards(refresh_from)
        if removed_color is BLACK:
            self._delete_fixup(fixup_start)
        # Detach the removed node defensively.
        node.left = node.right = node.parent = NIL

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the red-black and BST properties over the whole tree.

        Raises
        ------
        StructureCorruptionError
            On the first violated property.  A real exception — not an
            ``assert`` — so the check survives ``python -O``.
        """
        if self._root.color is not BLACK:
            raise corruption("rbtree", "rbtree-color", "root must be black")
        if NIL.color is not BLACK:
            raise corruption(
                "rbtree", "rbtree-color", "sentinel must stay black"
            )
        count = self._check_subtree(self._root, None, None)[1]
        if count != self._size:
            raise corruption(
                "rbtree",
                "rbtree-size",
                f"size mismatch: counted {count}, recorded {self._size}",
            )

    def _check_subtree(
        self, node: RBNode[K, V], lo: Optional[K], hi: Optional[K]
    ) -> Tuple[int, int]:
        """Return (black height, node count) of ``node``'s subtree."""
        if node.is_nil():
            return 1, 0
        if lo is not None and not node.key > lo:
            raise corruption(
                "rbtree", "rbtree-order", f"BST order violated at {node.key!r}"
            )
        if hi is not None and not node.key < hi:
            raise corruption(
                "rbtree", "rbtree-order", f"BST order violated at {node.key!r}"
            )
        if node.color is RED and (
            node.left.color is not BLACK or node.right.color is not BLACK
        ):
            raise corruption(
                "rbtree",
                "rbtree-color",
                f"red node {node.key!r} has a red child",
            )
        lh, lc = self._check_subtree(node.left, lo, node.key)
        rh, rc = self._check_subtree(node.right, node.key, hi)
        if lh != rh:
            raise corruption(
                "rbtree",
                "rbtree-black-height",
                f"black-height mismatch under {node.key!r}",
            )
        return lh + (1 if node.color is BLACK else 0), lc + rc + 1

    # ------------------------------------------------------------------
    # Internal mechanics
    # ------------------------------------------------------------------

    @staticmethod
    def _subtree_min(node: RBNode[K, V]) -> RBNode[K, V]:
        while not node.left.is_nil():
            node = node.left
        return node

    def _refresh(self, node: RBNode[K, V]) -> None:
        if self._augment is not None and not node.is_nil():
            self._augment(node)

    def _refresh_upwards(self, node: RBNode[K, V]) -> None:
        while not node.is_nil():
            self._refresh(node)
            node = node.parent

    def _rotate_left(self, node: RBNode[K, V]) -> None:
        pivot = node.right
        node.right = pivot.left
        if not pivot.left.is_nil():
            pivot.left.parent = node
        pivot.parent = node.parent
        if node.parent.is_nil():
            self._root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
        else:
            node.parent.right = pivot
        pivot.left = node
        node.parent = pivot
        # node is now pivot's child: refresh bottom-up.
        self._refresh(node)
        self._refresh(pivot)

    def _rotate_right(self, node: RBNode[K, V]) -> None:
        pivot = node.left
        node.left = pivot.right
        if not pivot.right.is_nil():
            pivot.right.parent = node
        pivot.parent = node.parent
        if node.parent.is_nil():
            self._root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
        else:
            node.parent.left = pivot
        pivot.right = node
        node.parent = pivot
        self._refresh(node)
        self._refresh(pivot)

    def _transplant(self, old: RBNode[K, V], new: RBNode[K, V]) -> None:
        if old.parent.is_nil():
            self._root = new
        elif old is old.parent.left:
            old.parent.left = new
        else:
            old.parent.right = new
        new.parent = old.parent

    def _insert_fixup(self, node: RBNode[K, V]) -> None:
        while node.parent.color is RED:
            grand = node.parent.parent
            if node.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    node.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    node = grand
                else:
                    if node is node.parent.right:
                        node = node.parent
                        self._rotate_left(node)
                    node.parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    node.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    node = grand
                else:
                    if node is node.parent.left:
                        node = node.parent
                        self._rotate_right(node)
                    node.parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        self._root.color = BLACK

    def _delete_fixup(self, node: RBNode[K, V]) -> None:
        while node is not self._root and node.color is BLACK:
            if node is node.parent.left:
                sibling = node.parent.right
                if sibling.color is RED:
                    sibling.color = BLACK
                    node.parent.color = RED
                    self._rotate_left(node.parent)
                    sibling = node.parent.right
                if sibling.left.color is BLACK and sibling.right.color is BLACK:
                    sibling.color = RED
                    node = node.parent
                else:
                    if sibling.right.color is BLACK:
                        sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = node.parent.right
                    sibling.color = node.parent.color
                    node.parent.color = BLACK
                    sibling.right.color = BLACK
                    self._rotate_left(node.parent)
                    node = self._root
            else:
                sibling = node.parent.left
                if sibling.color is RED:
                    sibling.color = BLACK
                    node.parent.color = RED
                    self._rotate_right(node.parent)
                    sibling = node.parent.left
                if sibling.right.color is BLACK and sibling.left.color is BLACK:
                    sibling.color = RED
                    node = node.parent
                else:
                    if sibling.left.color is BLACK:
                        sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = node.parent.left
                    sibling.color = node.parent.color
                    node.parent.color = BLACK
                    sibling.left.color = BLACK
                    self._rotate_right(node.parent)
                    node = self._root
        node.color = BLACK
        # The sentinel's parent pointer may have been borrowed during the
        # fixup; restore it so later operations see a clean NIL.
        NIL.parent = NIL
        NIL.left = NIL
        NIL.right = NIL
