"""Workload builders shared by the figure benchmarks.

Scaling
-------
The paper evaluates C/C++ code with ``N = 10^6`` windows on a 2.8 GHz
Pentium 4.  A pure-Python reproduction shrinks the default sizes so
the whole suite runs in minutes; every size below is multiplied by the
``REPRO_BENCH_SCALE`` environment variable (float, default ``1.0``), so

``REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only``

runs a 10x larger study.  Shapes (who wins, growth trends, ordering of
the distributions) are scale-invariant; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.core.n1n2 import N1N2Skyline
from repro.core.nofn import NofNSkyline
from repro.streams.generators import materialize

Point = Tuple[float, ...]

#: The distribution families, in the paper's reporting order.
DISTRIBUTIONS = ("correlated", "independent", "anticorrelated")

#: Abbreviations used in the paper's tables.
DIST_LABELS = {
    "correlated": "corr",
    "independent": "indep",
    "anticorrelated": "anti",
}


def bench_scale() -> float:
    """The global size multiplier from ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be a float, got {raw!r}"
        ) from exc
    if scale <= 0:
        raise ValueError(f"REPRO_BENCH_SCALE must be positive, got {scale}")
    return scale


def scaled(base: int, minimum: int = 1) -> int:
    """``base * REPRO_BENCH_SCALE`` rounded, at least ``minimum``."""
    return max(minimum, round(base * bench_scale()))


def stream_points(
    distribution: str, dim: int, count: int, seed: int = 0
) -> List[Point]:
    """Materialised benchmark stream (generation excluded from timing)."""
    return materialize(distribution, dim, count, seed)


def build_nofn(
    distribution: str,
    dim: int,
    capacity: int,
    prefill: Optional[int] = None,
    seed: int = 0,
) -> Tuple[NofNSkyline, List[Point]]:
    """An :class:`NofNSkyline` pre-filled with ``prefill`` elements
    (default: a full window), plus the fed points."""
    if prefill is None:
        prefill = capacity
    points = stream_points(distribution, dim, prefill, seed)
    engine = NofNSkyline(dim, capacity)
    for point in points:
        engine.append(point)
    return engine, points


def build_n1n2(
    distribution: str,
    dim: int,
    capacity: int,
    prefill: Optional[int] = None,
    seed: int = 0,
) -> Tuple[N1N2Skyline, List[Point]]:
    """An :class:`N1N2Skyline` pre-filled with ``prefill`` elements."""
    if prefill is None:
        prefill = capacity
    points = stream_points(distribution, dim, prefill, seed)
    engine = N1N2Skyline(dim, capacity)
    for point in points:
        engine.append(point)
    return engine, points
