"""Shared harness for the paper-figure benchmarks (see ``benchmarks/``)."""

from repro.bench.measure import (
    PerElementCost,
    average_query_time,
    bucketed_query_times,
    feed_many_timed,
    feed_timed,
    time_batch,
    time_each,
)
from repro.bench.reporting import (
    format_count,
    format_percent,
    format_rate,
    format_seconds,
    machine_fingerprint,
    render_series,
    render_table,
)
from repro.bench.workloads import (
    DISTRIBUTIONS,
    DIST_LABELS,
    bench_scale,
    build_n1n2,
    build_nofn,
    scaled,
    stream_points,
)

__all__ = [
    "DISTRIBUTIONS",
    "DIST_LABELS",
    "PerElementCost",
    "average_query_time",
    "bench_scale",
    "bucketed_query_times",
    "build_n1n2",
    "build_nofn",
    "feed_many_timed",
    "feed_timed",
    "format_count",
    "format_percent",
    "format_rate",
    "format_seconds",
    "machine_fingerprint",
    "render_series",
    "render_table",
    "scaled",
    "stream_points",
    "time_batch",
    "time_each",
]
