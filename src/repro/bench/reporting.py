"""Plain-text table/series rendering for the figure benchmarks.

Each ``benchmarks/bench_fig*.py`` module prints the rows/series of its
paper figure through these helpers, so the reproduction's output can be
laid side by side with the paper's plots.
"""

from __future__ import annotations

import os
import platform
from typing import Dict, List, Sequence


def machine_fingerprint(**extra: object) -> Dict[str, str]:
    """Identity of the measuring machine, for benchmark snapshots.

    Includes ``cpu_count`` so parallel (sharded) numbers are never read
    without knowing how many cores produced them.  Keyword arguments
    (e.g. ``shards=...``, ``backends=...``) are stringified into the
    fingerprint so configuration rides along with machine identity.
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = "absent"
    info = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": str(os.cpu_count() or 0),
    }
    info.update({key: str(value) for key, value in extra.items()})
    return info


def format_seconds(seconds: float) -> str:
    """Human scale: us / ms / s, three significant digits."""
    if seconds == float("inf"):
        return "inf"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


def format_rate(per_second: float) -> str:
    """Elements (or queries) per second, compact."""
    if per_second == float("inf"):
        return "inf"
    if per_second >= 1e6:
        return f"{per_second / 1e6:.3g}M/s"
    if per_second >= 1e3:
        return f"{per_second / 1e3:.3g}K/s"
    return f"{per_second:.3g}/s"


def format_percent(fraction: float) -> str:
    """A 0..1 fraction as a percentage (prefilter kill rates etc.)."""
    return f"{fraction * 100:.3g}%"


def format_count(value: float) -> str:
    """Counts the way the paper's Figure 4 prints them (1.3K, 14K...)."""
    if value >= 1e6:
        return f"{value / 1e6:.3g}M"
    if value >= 1e3:
        return f"{value / 1e3:.3g}K"
    return f"{value:.4g}"


def render_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned ASCII table with a title rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = [title, "=" * max(len(title), sum(widths) + 3 * (len(widths) - 1))]
    for i, row in enumerate(cells):
        lines.append("   ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("-" * len(lines[-1]))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple],
) -> str:
    """One table per figure *plot*: an x column plus one column per line.

    ``series`` is a sequence of ``(name, values)`` pairs, each value
    list aligned with ``xs``.
    """
    headers: List[str] = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for _, values in series])
    return render_table(title, headers, rows)
