"""Timing primitives for the benchmark harness.

The paper reports three kinds of measurements:

* per-element maintenance cost, *average and maximum* (Figures 14, 18);
* average query processing time over batches of ad-hoc queries
  (Figures 12, 13, 17a) — batched because "the time of each execution
  of nN is too short to be recorded";
* per-element *delay* including both maintenance and the queries
  attributed to that element (Figures 15, 16, 17b), averaged per 1000
  elements.

These helpers implement exactly those measurement shapes on top of
:func:`time.perf_counter`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.streams.stream import SupportsAppend, SupportsAppendMany


@dataclass
class PerElementCost:
    """Average / maximum / total wall-clock cost of a per-element loop."""

    count: int
    total_seconds: float
    max_seconds: float

    @property
    def avg_seconds(self) -> float:
        """Mean cost per element (0 when nothing was measured)."""
        if self.count == 0:
            return 0.0
        return self.total_seconds / self.count

    @property
    def throughput(self) -> float:
        """Sustained elements per second (inf when instantaneous)."""
        if self.total_seconds == 0:
            return float("inf")
        return self.count / self.total_seconds


def feed_timed(
    engine: SupportsAppend,
    points: Iterable[Sequence[float]],
    warmup: int = 0,
    per_element: Optional[Callable[[int], None]] = None,
) -> PerElementCost:
    """Feed ``points`` into ``engine`` timing each arrival.

    Parameters
    ----------
    engine:
        Anything with an ``append(values)`` method.
    points:
        The stream to feed.
    warmup:
        Leading arrivals excluded from the statistics (the paper cuts
        the cheap window-filling phase "to avoid a misleading").
    per_element:
        Optional callback invoked (inside the timed region) after each
        measured arrival with the 0-based element index — used by the
        mixed-workload experiments to run the queries attributed to an
        element.
    """
    count = 0
    total = 0.0
    worst = 0.0
    for index, point in enumerate(points):
        start = time.perf_counter()
        engine.append(point)
        if per_element is not None and index >= warmup:
            per_element(index)
        elapsed = time.perf_counter() - start
        if index < warmup:
            continue
        count += 1
        total += elapsed
        if elapsed > worst:
            worst = elapsed
    return PerElementCost(count=count, total_seconds=total, max_seconds=worst)


def feed_many_timed(
    engine: SupportsAppendMany,
    points: Sequence[Sequence[float]],
    batch_size: int,
    warmup: int = 0,
) -> PerElementCost:
    """Feed ``points`` into ``engine`` through ``append_many`` in
    batches of ``batch_size``, timing each batch.

    Returns a :class:`PerElementCost` over *elements* (so throughput is
    directly comparable with :func:`feed_timed`); ``max_seconds`` is the
    worst observed per-batch latency divided by that batch's size.
    ``warmup`` leading *batches* are excluded from the statistics.
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    count = 0
    total = 0.0
    worst = 0.0
    pts = list(points)
    for index, start_idx in enumerate(range(0, len(pts), batch_size)):
        batch = pts[start_idx:start_idx + batch_size]
        start = time.perf_counter()
        engine.append_many(batch)
        elapsed = time.perf_counter() - start
        if index < warmup:
            continue
        count += len(batch)
        total += elapsed
        per_element = elapsed / len(batch)
        if per_element > worst:
            worst = per_element
    return PerElementCost(count=count, total_seconds=total, max_seconds=worst)


def time_batch(fn: Callable[[], object], repeats: int = 1) -> float:
    """Total wall-clock seconds for ``repeats`` calls of ``fn``."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return time.perf_counter() - start


def time_each(fns: Sequence[Callable[[], object]]) -> List[float]:
    """Wall-clock seconds of each callable, in order."""
    times = []
    for fn in fns:
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def average_query_time(
    run_query: Callable[[object], object], params: Sequence[object]
) -> float:
    """Mean seconds per query over a parameter batch.

    The whole batch is timed with one clock read pair per query —
    matching the paper's "average query processing costs of these 1K
    queries" methodology.
    """
    if not params:
        raise ValueError("need at least one query parameter")
    start = time.perf_counter()
    for param in params:
        run_query(param)
    return (time.perf_counter() - start) / len(params)


def bucketed_query_times(
    run_query: Callable[[object], object],
    params: Sequence[object],
    buckets: int,
) -> List[Tuple[object, float]]:
    """Average query time per consecutive-parameter bucket.

    Figure 13 "divided these 1K queries into 33 disjoint sets ... with
    the consecutive values of n" and reports each set's average; this
    reproduces that bucketing.  Returns ``(bucket_representative,
    avg_seconds)`` pairs, where the representative is the bucket's
    median parameter.
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    ordered = sorted(params)  # type: ignore[type-var]
    size = max(1, len(ordered) // buckets)
    out: List[Tuple[object, float]] = []
    for start_idx in range(0, len(ordered), size):
        chunk = ordered[start_idx:start_idx + size]
        if not chunk:
            continue
        avg = average_query_time(run_query, chunk)
        out.append((chunk[len(chunk) // 2], avg))
    return out
