"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DimensionMismatchError(ReproError):
    """A point's dimensionality does not match the structure it is used with."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"dimension mismatch: structure is {expected}-dimensional, "
            f"got a {actual}-dimensional point"
        )
        self.expected = expected
        self.actual = actual


class InvalidWindowError(ReproError):
    """A window size or query range is outside its legal domain."""


class InvalidIntervalError(ReproError):
    """An interval's endpoints are inconsistent (requires ``low < high``)."""


class DuplicateKeyError(ReproError):
    """A key that must be unique was inserted twice."""


class KeyNotFoundError(ReproError):
    """A key expected to be present in a structure is missing."""


class EmptyStructureError(ReproError):
    """An operation that needs a non-empty structure was called on an empty one."""


class QueryNotRegisteredError(ReproError):
    """A continuous query handle does not belong to this manager."""


class StreamExhaustedError(ReproError):
    """A finite stream was asked for more elements than it contains."""


class StructureCorruptionError(ReproError):
    """An engine's cross-structure invariants are broken.

    Raised from the maintenance hot path when a safety check fails
    (e.g. the oldest element of ``R_N`` is not a dominance-graph root
    at expiry time).  A real exception — not an ``assert`` — so the
    check survives ``python -O`` production deployments.
    """
