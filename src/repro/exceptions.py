"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` et al.) propagate.

This module also hosts :class:`SanitizerReport`, the structured payload
attached to every :class:`StructureCorruptionError`.  It lives here —
rather than in :mod:`repro.sanitize` — because the data-structure
substrates raise corruption errors themselves and must not import the
sanitizer subsystem (which imports the engines, which import the
structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DimensionMismatchError(ReproError):
    """A point's dimensionality does not match the structure it is used with."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"dimension mismatch: structure is {expected}-dimensional, "
            f"got a {actual}-dimensional point"
        )
        self.expected = expected
        self.actual = actual


class InvalidWindowError(ReproError):
    """A window size or query range is outside its legal domain."""


class InvalidIntervalError(ReproError):
    """An interval's endpoints are inconsistent (requires ``low < high``)."""


class DuplicateKeyError(ReproError):
    """A key that must be unique was inserted twice."""


class KeyNotFoundError(ReproError):
    """A key expected to be present in a structure is missing."""


class EmptyStructureError(ReproError):
    """An operation that needs a non-empty structure was called on an empty one."""


class QueryNotRegisteredError(ReproError):
    """A continuous query handle does not belong to this manager."""


class StreamExhaustedError(ReproError):
    """A finite stream was asked for more elements than it contains."""


class ShardFailureError(ReproError):
    """A shard of a parallel engine failed or stopped responding.

    Raised by the sharded routers (:mod:`repro.parallel`) when a worker
    process dies, raises, or misses the reply deadline.  ``detail``
    carries the worker-side traceback when one was captured, so the
    original failure is never lost to a silent hang on a queue join.
    """

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"shard {shard} failed: {detail}")
        self.shard = shard
        self.detail = detail


@dataclass(frozen=True)
class SanitizerReport:
    """Structured description of one broken invariant.

    Attached to every :class:`StructureCorruptionError` raised by the
    invariant checks so that operators (and the mutation-style test
    suite) can tell *which* structure broke *which* invariant without
    parsing the message.

    Attributes
    ----------
    structure:
        The structure at fault (``"rtree"``, ``"interval_tree"``,
        ``"labelset"``, ``"heap"``, ``"rbtree"``, ``"dominance_graph"``,
        ``"R_N"``, ``"trigger_heap"`` …).
    invariant:
        Machine-readable invariant name from the catalogue in
        ``docs/DEVELOPING.md`` (``"non-redundancy"``, ``"forest"``,
        ``"interval-encoding"``, ``"stabbing-bruteforce"``,
        ``"rtree-augmentation"``, ``"heap-order"`` …).
    message:
        Human-readable details.
    kappas:
        Arrival labels of the offending elements, when known.
    engine:
        Class name of the engine/manager under verification (empty for
        standalone structure checks).
    """

    structure: str
    invariant: str
    message: str
    kappas: Tuple[int, ...] = field(default=())
    engine: str = ""

    def describe(self) -> str:
        """One-line rendering used as the exception message."""
        where = f"{self.engine}." if self.engine else ""
        suffix = f" (kappas={list(self.kappas)})" if self.kappas else ""
        return (
            f"[{where}{self.structure}] invariant "
            f"'{self.invariant}' violated: {self.message}{suffix}"
        )


class StructureCorruptionError(ReproError):
    """An engine's cross-structure invariants are broken.

    Raised from the maintenance hot path when a safety check fails
    (e.g. the oldest element of ``R_N`` is not a dominance-graph root
    at expiry time).  A real exception — not an ``assert`` — so the
    check survives ``python -O`` production deployments.

    The optional ``report`` carries a :class:`SanitizerReport` pinning
    the broken invariant; checks raised from the invariant-sanitizer
    subsystem always attach one.
    """

    def __init__(
        self, message: str, report: Optional[SanitizerReport] = None
    ) -> None:
        super().__init__(message)
        self.report = report


def corruption(
    structure: str,
    invariant: str,
    message: str,
    kappas: Tuple[int, ...] = (),
    engine: str = "",
) -> StructureCorruptionError:
    """Build a :class:`StructureCorruptionError` with an attached report."""
    report = SanitizerReport(
        structure=structure,
        invariant=invariant,
        message=message,
        kappas=kappas,
        engine=engine,
    )
    return StructureCorruptionError(report.describe(), report)
