"""Stream replay harness.

Wraps a point source into a :class:`DataStream` that engines and
benchmarks consume: it tracks arrival positions, supports bounded
reads, and can replay itself deterministically (the same generator
family and seed always produce the same stream — the property the
paper's evaluation relies on when feeding multiple algorithms the same
data).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.exceptions import StreamExhaustedError
from repro.streams.generators import make_stream

Point = Tuple[float, ...]


class SupportsAppend(Protocol):
    """Anything with an ``append(values)`` method — every engine."""

    def append(self, values: Sequence[float]) -> Any: ...


class SupportsAppendMany(SupportsAppend, Protocol):
    """An engine that also offers the batched ``append_many`` path."""

    def append_many(self, points: Sequence[Sequence[float]]) -> Any: ...


class DataStream:
    """A positioned, replayable stream of points.

    Parameters
    ----------
    source:
        A factory returning a fresh iterator of points each time it is
        called — this is what makes the stream replayable.
    dim:
        Dimensionality of the points (validated on read).
    """

    def __init__(self, source: Callable[[], Iterable[Sequence[float]]], dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        self._source = source
        self.dim = dim
        self._iterator: Optional[Iterator[Sequence[float]]] = None
        self._position = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def synthetic(
        cls, distribution: str, dim: int, count: int, seed: int = 0
    ) -> "DataStream":
        """A stream backed by one of the benchmark generator families."""
        return cls(
            lambda: make_stream(distribution, dim, count, seed), dim
        )

    @classmethod
    def from_points(cls, points: Sequence[Sequence[float]], dim: Optional[int] = None) -> "DataStream":
        """A stream replaying a fixed point list."""
        if dim is None:
            if not points:
                raise ValueError("cannot infer dimension from an empty list")
            dim = len(points[0])
        frozen = [tuple(float(v) for v in p) for p in points]
        return cls(lambda: iter(frozen), dim)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    @property
    def position(self) -> int:
        """Number of points read since the last restart."""
        return self._position

    def restart(self) -> None:
        """Rewind to the beginning (a fresh iterator from the source)."""
        self._iterator = None
        self._position = 0

    def next(self) -> Point:
        """The next point.

        Raises
        ------
        StreamExhaustedError
            When the underlying source is finite and consumed.
        """
        if self._iterator is None:
            self._iterator = iter(self._source())
        try:
            raw = next(self._iterator)
        except StopIteration:
            raise StreamExhaustedError(
                f"stream exhausted after {self._position} points"
            ) from None
        point = tuple(float(v) for v in raw)
        if len(point) != self.dim:
            raise ValueError(
                f"stream produced a {len(point)}-dimensional point; "
                f"expected {self.dim}"
            )
        self._position += 1
        return point

    def take(self, count: int) -> List[Point]:
        """The next ``count`` points as a list."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next() for _ in range(count)]

    def batches(self, size: int) -> Iterator[List[Point]]:
        """The rest of the stream in lists of ``size`` points (the final
        batch may be shorter) — the shape ``append_many`` consumes."""
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size}")
        batch: List[Point] = []
        for point in self:
            batch.append(point)
            if len(batch) == size:
                yield batch
                batch = []
        if batch:
            yield batch

    def __iter__(self) -> Iterator[Point]:
        while True:
            try:
                yield self.next()
            except StreamExhaustedError:
                return


def feed(
    engine: SupportsAppend,
    stream: Iterable[Sequence[float]],
    limit: Optional[int] = None,
) -> int:
    """Push up to ``limit`` points from ``stream`` into ``engine``
    (anything with an ``append(values)`` method); return how many were
    fed."""
    fed = 0
    for point in stream:
        if limit is not None and fed >= limit:
            break
        engine.append(point)
        fed += 1
    return fed


def feed_many(
    engine: SupportsAppendMany,
    stream: Iterable[Sequence[float]],
    batch_size: int,
    limit: Optional[int] = None,
) -> int:
    """Push up to ``limit`` points from ``stream`` into ``engine`` in
    batches of ``batch_size`` via ``append_many`` (the final batch may
    be shorter); return how many points were fed."""
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    fed = 0
    batch: List[Sequence[float]] = []
    for point in stream:
        if limit is not None and fed + len(batch) >= limit:
            break
        batch.append(point)
        if len(batch) == batch_size:
            engine.append_many(batch)
            fed += len(batch)
            batch = []
    if batch:
        engine.append_many(batch)
        fed += len(batch)
    return fed
