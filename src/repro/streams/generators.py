"""Synthetic stream generators (Borzsonyi et al. benchmark families).

The paper evaluates against "the 3 most popular synthetic benchmark
data, *correlated*, *independent*, and *anti-correlated* [4]"
(section 5), simulating a stream by assigning arrival order equal to
generation order.  These generators reproduce the three families:

independent
    Each coordinate i.i.d. uniform on ``[0, 1]``.
correlated
    Points scatter tightly around the main diagonal: a point good in
    one dimension tends to be good in all.  Skylines are tiny.
anti-correlated
    Points scatter around the anti-diagonal hyperplane
    ``sum(x) = d/2``: a point good in one dimension tends to be bad in
    the others.  Skylines are large — the paper's hardest case.

All generators are deterministic given ``seed`` and yield plain float
tuples, so streams can be replayed exactly across engines, baselines
and benchmark runs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Tuple

Point = Tuple[float, ...]

#: Spread of correlated points around the diagonal.
_CORRELATED_SPREAD = 0.05
#: Spread of the anti-correlated plane location around 0.5 per axis.
_ANTI_PLANE_SPREAD = 0.05
#: In-plane scatter of anti-correlated points.
_ANTI_SCATTER = 0.35


def independent_stream(dim: int, count: int, seed: int = 0) -> Iterator[Point]:
    """``count`` points with i.i.d. uniform ``[0, 1]`` coordinates."""
    _validate(dim, count)
    rng = random.Random(seed)
    for _ in range(count):
        yield tuple(rng.random() for _ in range(dim))


def correlated_stream(dim: int, count: int, seed: int = 0) -> Iterator[Point]:
    """``count`` points hugging the main diagonal of the unit cube.

    A base value is drawn uniformly and each coordinate perturbs it
    with small Gaussian noise (clamped to ``[0, 1]``).
    """
    _validate(dim, count)
    rng = random.Random(seed)
    for _ in range(count):
        base = rng.random()
        yield tuple(
            _clamp(base + rng.gauss(0.0, _CORRELATED_SPREAD)) for _ in range(dim)
        )


def anticorrelated_stream(dim: int, count: int, seed: int = 0) -> Iterator[Point]:
    """``count`` points scattered along the anti-diagonal hyperplane.

    Each point starts at a plane location ``base ~ N(0.5, sigma)`` on
    every axis; zero-sum in-plane noise then trades value between axes,
    so coordinates are negatively correlated (clamped to ``[0, 1]``).
    """
    _validate(dim, count)
    rng = random.Random(seed)
    for _ in range(count):
        base = _clamp(rng.gauss(0.5, _ANTI_PLANE_SPREAD))
        noise = [rng.uniform(-_ANTI_SCATTER, _ANTI_SCATTER) for _ in range(dim)]
        mean_noise = sum(noise) / dim
        yield tuple(_clamp(base + n - mean_noise) for n in noise)


_FAMILIES: Dict[str, Callable[[int, int, int], Iterator[Point]]] = {
    "independent": independent_stream,
    "correlated": correlated_stream,
    "anticorrelated": anticorrelated_stream,
}

#: Accepted aliases for the family names.
_ALIASES = {
    "ind": "independent",
    "indep": "independent",
    "corr": "correlated",
    "anti": "anticorrelated",
    "anti-correlated": "anticorrelated",
    "anti_correlated": "anticorrelated",
}


def distributions() -> List[str]:
    """Canonical names of the available families."""
    return sorted(_FAMILIES)


def make_stream(
    distribution: str, dim: int, count: int, seed: int = 0
) -> Iterator[Point]:
    """Build a generator by family name (aliases accepted).

    Raises
    ------
    ValueError
        For an unknown family name.
    """
    name = _ALIASES.get(distribution.lower(), distribution.lower())
    factory = _FAMILIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose from {distributions()}"
        )
    return factory(dim, count, seed)


def materialize(
    distribution: str, dim: int, count: int, seed: int = 0
) -> List[Point]:
    """Like :func:`make_stream` but returning a list (benchmarks
    pre-generate inputs so data generation never pollutes timings)."""
    return list(make_stream(distribution, dim, count, seed))


def _clamp(value: float) -> float:
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


def _validate(dim: int, count: int) -> None:
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
