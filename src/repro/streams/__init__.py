"""Synthetic stream substrates for the evaluation (paper section 5)."""

from repro.streams.generators import (
    anticorrelated_stream,
    correlated_stream,
    distributions,
    independent_stream,
    make_stream,
    materialize,
)
from repro.streams.snapshots import (
    random_n1n2_pairs,
    random_n_values,
    snapshot_positions,
)
from repro.streams.stream import DataStream, feed, feed_many

__all__ = [
    "DataStream",
    "anticorrelated_stream",
    "correlated_stream",
    "distributions",
    "feed",
    "feed_many",
    "independent_stream",
    "make_stream",
    "materialize",
    "random_n1n2_pairs",
    "random_n_values",
    "snapshot_positions",
]
