"""Snapshot sampling for the evaluation harness.

The paper's query experiments (sections 5.1 and 5.5) "randomly take
1000 snapshots of the most recent N elements" and evaluate queries at
each.  This module provides the deterministic sampling utilities the
benchmark harness uses to pick snapshot positions and query parameters
exactly the way the paper describes.
"""

from __future__ import annotations

import random
from typing import List, Tuple


def snapshot_positions(
    stream_length: int, window: int, count: int, seed: int = 0
) -> List[int]:
    """``count`` sorted stream positions at which to snapshot.

    Positions lie in ``[window, stream_length]`` so that each snapshot
    has a full window behind it (the paper reports "only the
    performance from the 10^6+1-th element" for the same reason).
    Sampling is with replacement when ``count`` exceeds the candidate
    range; otherwise without.
    """
    if window > stream_length:
        raise ValueError(
            f"window ({window}) exceeds stream length ({stream_length})"
        )
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    lo, hi = window, stream_length
    span = hi - lo + 1
    if count <= span:
        positions = rng.sample(range(lo, hi + 1), count)
    else:
        positions = [rng.randint(lo, hi) for _ in range(count)]
    positions.sort()
    return positions


def random_n_values(
    window: int, count: int, seed: int = 0, minimum: int = 1
) -> List[int]:
    """``count`` random ``n`` values in ``[minimum, window]`` for
    n-of-N queries (paper section 5.1 draws 1000 ``n`` values from
    ``[1000, 10^6]``)."""
    if not 1 <= minimum <= window:
        raise ValueError(
            f"need 1 <= minimum <= window, got minimum={minimum}, "
            f"window={window}"
        )
    rng = random.Random(seed)
    return [rng.randint(minimum, window) for _ in range(count)]


def random_n1n2_pairs(
    window: int, count: int, min_gap: int = 0, seed: int = 0
) -> List[Tuple[int, int]]:
    """``count`` random ``(n1, n2)`` pairs with ``n2 - n1 >= min_gap``
    (paper section 5.5 uses ``n2 - n1 >= 500``)."""
    if min_gap < 0 or min_gap >= window:
        raise ValueError(
            f"need 0 <= min_gap < window, got min_gap={min_gap}, "
            f"window={window}"
        )
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        n1 = rng.randint(1, window - min_gap)
        n2 = rng.randint(n1 + min_gap, window)
        pairs.append((n1, n2))
    return pairs
