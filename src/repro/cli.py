"""Command-line interface: ``python -m repro <command>``.

Four sub-commands cover the workflows a user reaches for before writing
code against the API:

``generate``
    Emit one of the benchmark distribution families as CSV.

``skyline``
    Compute the skyline of a CSV point file with a chosen static
    algorithm (KLP / BNL / SFS / BBS / naive).

``window``
    Replay a CSV file as a stream through the n-of-N engine and answer
    queries: either a one-shot ``--n`` query at the end, or
    ``--every K`` continuous reporting.

``info``
    Print the library version and the available algorithms/families.

All commands read/write plain CSV (one point per row) so they compose
with standard shell tooling.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Iterable, List, Optional, Sequence, TextIO, Tuple, Union

from repro import __version__
from repro.baselines import (
    bbs_skyline,
    bnl_skyline,
    klp_skyline,
    naive_skyline,
    sfs_skyline,
)
from repro.accel.rtree_kernels import KERNEL_POLICIES
from repro.structures.rtree_soa import RTREE_LAYOUTS
from repro.bench.reporting import format_percent, format_rate
from repro.core.continuous import ContinuousQueryManager
from repro.core.nofn import NofNSkyline
from repro.core.query_index import INDEX_MODES, mixed_query_plan
from repro.core.skyband import KSkybandEngine
from repro.parallel.sharded import (
    BACKENDS,
    REPLICA_MODES,
    ShardedKSkyband,
    ShardedNofNSkyline,
)
from repro.sanitize.sanitizer import MODES
from repro.streams.generators import distributions, make_stream

ALGORITHMS = {
    "klp": klp_skyline,
    "bnl": bnl_skyline,
    "sfs": sfs_skyline,
    "bbs": bbs_skyline,
    "naive": naive_skyline,
}

WindowEngine = Union[
    KSkybandEngine, NofNSkyline, ShardedKSkyband, ShardedNofNSkyline
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sliding-window skyline computation (ICDE 2005 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a synthetic stream as CSV")
    gen.add_argument("--distribution", "-D", default="independent",
                     help=f"one of {distributions()} (aliases accepted)")
    gen.add_argument("--dim", "-d", type=int, default=2)
    gen.add_argument("--count", "-c", type=int, default=1000)
    gen.add_argument("--seed", "-s", type=int, default=0)

    sky = sub.add_parser("skyline", help="skyline of a CSV point file")
    sky.add_argument("input", nargs="?", default="-",
                     help="CSV file of points ('-' for stdin)")
    sky.add_argument("--algorithm", "-a", default="klp",
                     choices=sorted(ALGORITHMS))
    sky.add_argument("--indices", action="store_true",
                     help="print 0-based row indices instead of points")

    win = sub.add_parser("window", help="replay a CSV stream through n-of-N")
    win.add_argument("input", nargs="?", default="-",
                     help="CSV file of points ('-' for stdin)")
    win.add_argument("--capacity", "-N", type=int, required=True,
                     help="window size N")
    win.add_argument("--n", type=int, default=None,
                     help="n-of-N query to answer at end of stream "
                          "(default: n = N)")
    win.add_argument("--every", type=int, default=None, metavar="K",
                     help="also report the query after every K arrivals")
    win.add_argument("--band", type=int, default=1, metavar="k",
                     help="report the k-skyband instead of the skyline "
                          "(default 1 = skyline)")
    win.add_argument("--batch", type=int, default=None, metavar="B",
                     help="ingest through the batched fast path, B points "
                          "per append_many call (aligned to --every "
                          "boundaries); prints batch stats at the end")
    win.add_argument("--batch-chunk", type=int, default=None, metavar="C",
                     help="internal chunk size of the batched pipeline: "
                          "each append_many call is processed in slices "
                          "of at most C elements (prefilter matrix, bulk "
                          "R-tree searches and flushes are per-slice); "
                          "default is the library chunk (1024)")
    win.add_argument("--sanitize", default="off", choices=list(MODES),
                     help="runtime invariant checking: verify the paper's "
                          "structural theorems after every arrival (full), "
                          "every 64th maintenance event (sampled), or not "
                          "at all (off, the default)")
    win.add_argument("--query-cache", default="on", choices=("on", "off"),
                     help="versioned stab cache for queries: memoize stab "
                          "results until the interval tree changes "
                          "(default on)")
    win.add_argument("--kernels", default="auto", choices=list(KERNEL_POLICIES),
                     help="NumPy leaf kernels for the R-tree's dominance "
                          "searches: auto uses them when NumPy is "
                          "importable, off forces the pure-Python paths "
                          "(default auto)")
    win.add_argument("--rtree-layout", default="auto",
                     choices=list(RTREE_LAYOUTS),
                     help="R-tree storage layout: soa keeps points in "
                          "pooled NumPy arrays (vectorized maintenance "
                          "searches), pointer is the classic node tree; "
                          "auto picks soa when NumPy is importable "
                          "(default auto)")
    win.add_argument("--continuous-queries", type=int, default=0, metavar="Q",
                     help="register Q continuous n-of-N queries (a "
                          "deterministic mixed distinct/duplicate window "
                          "plan) and maintain them incrementally while "
                          "feeding; prints a summary line at the end; "
                          "requires --shards 1 and --band 1 (default 0)")
    win.add_argument("--query-index", default="auto",
                     choices=list(INDEX_MODES),
                     help="continuous-query dispatch: auto/on dedupe "
                          "handles into per-window groups on a sorted "
                          "stab-point axis and route each change to the "
                          "affected contiguous range by binary search; "
                          "off keeps the per-handle loop (default auto; "
                          "meaningful only with --continuous-queries)")
    win.add_argument("--shards", type=int, default=1, metavar="S",
                     help="shard the stream round-robin across S engines "
                          "and answer queries by fan-out/merge (default 1 "
                          "= the plain single engine)")
    win.add_argument("--shard-backend", default="serial",
                     choices=list(BACKENDS),
                     help="where shard engines run when --shards > 1: "
                          "in-process (serial) or one worker process per "
                          "shard (process); default serial")
    win.add_argument("--shard-replicas", default="auto",
                     choices=list(REPLICA_MODES),
                     help="shared-memory stab-snapshot replicas for the "
                          "process backend (queries read shard state with "
                          "zero IPC): auto enables them whenever "
                          "--shard-backend process, on requires them, off "
                          "disables them (default auto)")
    win.add_argument("--shard-replica-lag", type=int, default=0, metavar="L",
                     help="serve a query from replicas only when every "
                          "shard trails the stream by at most L unabsorbed "
                          "elements; a negative value means unbounded "
                          "(always serve the latest published snapshot); "
                          "default 0 = replicas must be fully caught up")

    sub.add_parser("info", help="version and capability summary")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args, sys.stdout)
        if args.command == "skyline":
            return _cmd_skyline(args, sys.stdout)
        if args.command == "window":
            return _cmd_window(args, sys.stdout)
        return _cmd_info(sys.stdout)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_generate(args: argparse.Namespace, out: TextIO) -> int:
    writer = csv.writer(out)
    for point in make_stream(args.distribution, args.dim, args.count, args.seed):
        writer.writerow([f"{v:.6f}" for v in point])
    return 0


def _cmd_skyline(args: argparse.Namespace, out: TextIO) -> int:
    points = _read_points(args.input)
    result = ALGORITHMS[args.algorithm](points)
    writer = csv.writer(out)
    for idx in result:
        if args.indices:
            writer.writerow([idx])
        else:
            writer.writerow([f"{v:g}" for v in points[idx]])
    return 0


def _cmd_window(args: argparse.Namespace, out: TextIO) -> int:
    if args.capacity < 1:
        raise ValueError("--capacity must be >= 1")
    n = args.n if args.n is not None else args.capacity
    if not 1 <= n <= args.capacity:
        raise ValueError(f"--n must be in [1, {args.capacity}]")
    if args.every is not None and args.every < 1:
        raise ValueError("--every must be >= 1")
    if args.band < 1:
        raise ValueError("--band must be >= 1")
    if args.batch is not None and args.batch < 1:
        raise ValueError("--batch must be >= 1")
    if args.batch_chunk is not None and args.batch_chunk < 1:
        raise ValueError("--batch-chunk must be >= 1")

    if args.shards < 1:
        raise ValueError("--shards must be >= 1")
    if args.continuous_queries < 0:
        raise ValueError("--continuous-queries must be >= 0")
    if args.continuous_queries and (args.shards > 1 or args.band > 1):
        raise ValueError(
            "--continuous-queries requires --shards 1 and --band 1"
        )

    points = _read_points(args.input)
    if not points:
        return 0
    engine = _build_window_engine(args, dim=len(points[0]))
    manager: Optional[ContinuousQueryManager] = None
    if args.continuous_queries:
        if not isinstance(engine, NofNSkyline):
            raise ValueError(
                "--continuous-queries requires the plain nofn engine"
            )
        manager = ContinuousQueryManager(
            engine, sanitize=args.sanitize, query_index=args.query_index
        )
        for window in mixed_query_plan(args.continuous_queries, args.capacity):
            manager.register(window)
    feeder: Union[WindowEngine, ContinuousQueryManager] = (
        manager if manager is not None else engine
    )
    try:
        if args.batch:
            # Batches are clipped at --every boundaries so the reports
            # land after exactly the same arrivals as per-element replay.
            fed = 0
            while fed < len(points):
                upper = min(fed + args.batch, len(points))
                if args.every:
                    next_report = (fed // args.every + 1) * args.every
                    upper = min(upper, next_report)
                feeder.append_many(points[fed:upper])
                fed = upper
                if args.every and fed % args.every == 0:
                    _print_result(out, engine, n, label=f"after {fed}")
        else:
            for i, point in enumerate(points):
                feeder.append(point)
                if args.every and (i + 1) % args.every == 0:
                    _print_result(out, engine, n, label=f"after {i + 1}")
        _print_result(out, engine, n, label="final")
        if manager is not None:
            _print_continuous(out, manager)
        if args.batch:
            _print_batch_stats(out, engine)
    finally:
        if isinstance(engine, (ShardedKSkyband, ShardedNofNSkyline)):
            engine.close()
    return 0


def _build_window_engine(args: argparse.Namespace, dim: int) -> WindowEngine:
    query_cache = args.query_cache == "on"
    if args.shards > 1:
        # Negative --shard-replica-lag means "unbounded" (None).
        lag = getattr(args, "shard_replica_lag", 0)
        replica_lag = None if lag < 0 else lag
        replicas = getattr(args, "shard_replicas", "auto")
        if args.band > 1:
            return ShardedKSkyband(
                dim=dim,
                capacity=args.capacity,
                k=args.band,
                shards=args.shards,
                backend=args.shard_backend,
                sanitize=args.sanitize,
                query_cache=query_cache,
                kernels=args.kernels,
                rtree_layout=args.rtree_layout,
                batch_chunk=args.batch_chunk,
                replicas=replicas,
                replica_lag=replica_lag,
            )
        return ShardedNofNSkyline(
            dim=dim,
            capacity=args.capacity,
            shards=args.shards,
            backend=args.shard_backend,
            sanitize=args.sanitize,
            query_cache=query_cache,
            kernels=args.kernels,
            rtree_layout=args.rtree_layout,
            batch_chunk=args.batch_chunk,
            replicas=replicas,
            replica_lag=replica_lag,
        )
    if args.band > 1:
        return KSkybandEngine(
            dim=dim,
            capacity=args.capacity,
            k=args.band,
            sanitize=args.sanitize,
            query_cache=query_cache,
            kernels=args.kernels,
            rtree_layout=args.rtree_layout,
            batch_chunk=args.batch_chunk,
        )
    return NofNSkyline(
        dim=dim,
        capacity=args.capacity,
        sanitize=args.sanitize,
        query_cache=query_cache,
        kernels=args.kernels,
        rtree_layout=args.rtree_layout,
        batch_chunk=args.batch_chunk,
    )


def _print_result(
    out: TextIO, engine: WindowEngine, n: int, label: str
) -> None:
    result = engine.query(n)
    kappas = ",".join(str(e.kappa) for e in result)
    print(f"{label}\tn={n}\tsize={len(result)}\tkappas={kappas}", file=out)


def _print_continuous(out: TextIO, manager: ContinuousQueryManager) -> None:
    """One summary line for the maintained continuous-query set, with a
    live cross-check of the lowest-id handle against a fresh stab."""
    stats = manager.query_index_stats()
    groups = (
        stats["groups"] if stats is not None else len({h.n for h in manager})
    )
    probe = min(manager, key=lambda h: h.query_id)
    live = [e.kappa for e in manager.engine.query(probe.n)]
    match = "yes" if probe.result_kappas() == live else "NO"
    print(
        f"continuous\tqueries={len(manager)}\tgroups={groups}"
        f"\tindex={manager.query_index}\tprobe_n={probe.n}"
        f"\tprobe_match={match}",
        file=out,
    )


def _print_batch_stats(out: TextIO, engine: WindowEngine) -> None:
    stats = engine.stats
    print(
        f"batch\tbatches={stats.batches}"
        f"\tmean_size={stats.batch_size_mean:.3g}"
        f"\tkill_rate={format_percent(stats.prefilter_kill_rate)}"
        f"\tthroughput={format_rate(stats.batch_throughput)}",
        file=out,
    )


def _cmd_info(out: TextIO) -> int:
    print(f"repro {__version__} — sliding-window skyline (ICDE 2005)", file=out)
    print(f"distributions: {', '.join(distributions())}", file=out)
    print(f"static algorithms: {', '.join(sorted(ALGORITHMS))}", file=out)
    print("engines: NofNSkyline, N1N2Skyline, TimeWindowSkyline", file=out)
    print(f"sharded backends: {', '.join(BACKENDS)}", file=out)
    print(f"shard replicas: {', '.join(REPLICA_MODES)}", file=out)
    print(f"rtree layouts: {', '.join(RTREE_LAYOUTS)}", file=out)
    return 0


def _read_points(path: str) -> List[Tuple[float, ...]]:
    if path == "-":
        return _parse_rows(csv.reader(sys.stdin))
    with open(path, newline="") as handle:
        return _parse_rows(csv.reader(handle))


def _parse_rows(reader: Iterable[List[str]]) -> List[Tuple[float, ...]]:
    points: List[Tuple[float, ...]] = []
    dim = None
    for row_number, row in enumerate(reader, start=1):
        if not row:
            continue
        try:
            point = tuple(float(cell) for cell in row)
        except ValueError as exc:
            raise ValueError(f"row {row_number}: {exc}") from None
        if dim is None:
            dim = len(point)
        elif len(point) != dim:
            raise ValueError(
                f"row {row_number}: expected {dim} columns, got {len(point)}"
            )
        points.append(point)
    return points


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
