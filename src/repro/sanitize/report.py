"""Structured corruption reports.

:class:`~repro.exceptions.SanitizerReport` and the
:func:`~repro.exceptions.corruption` factory physically live in
:mod:`repro.exceptions` so that the low-level structures (heap, label
set, interval tree, R-tree) can raise structured corruption errors
without importing this package — the sanitizer reaches *down* into the
engines and structures, so nothing below it may import *up*.  This
module re-exports them under the name users expect
(``repro.sanitize.report``).
"""

from __future__ import annotations

from repro.exceptions import (
    SanitizerReport,
    StructureCorruptionError,
    corruption,
)

__all__ = ["SanitizerReport", "StructureCorruptionError", "corruption"]
