"""The attachable invariant sanitizer.

:class:`InvariantSanitizer` wraps the verifiers of
:mod:`repro.sanitize.checks` behind a mode dial:

``off``
    No checking at all.  Engines represent this as ``sanitizer is
    None`` so the per-arrival cost is a single identity test.
``sampled``
    Full verification every ``sample_every``-th maintenance event
    (arrival, batch chunk, or processed outcome).  Cheap enough to
    leave on during long soak runs while still bounding how far a
    corruption can propagate before detection.
``full``
    Full verification after every maintenance event.  The brute-force
    cross-checks are ``O(r^2)`` in the retained-set size, so this is a
    debugging tool, not a production setting.

Engines accept the mode (or a ready-made sanitizer, so several engines
can share one sampling clock) via their ``sanitize=`` constructor
parameter; :func:`InvariantSanitizer.coerce` normalises either form.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.sanitize.checks import (
    verify_continuous,
    verify_n1n2,
    verify_nofn,
    verify_sharded,
    verify_skyband,
    verify_timewindow,
)

#: Recognised sanitizer modes, in increasing order of cost.
MODES: Tuple[str, ...] = ("off", "sampled", "full")

#: What engine constructors accept for their ``sanitize=`` parameter.
SanitizeArg = Union[str, "InvariantSanitizer", None]


class InvariantSanitizer:
    """Verifies paper invariants of an attached engine after updates.

    Parameters
    ----------
    mode:
        ``"sampled"`` or ``"full"`` (``"off"`` is representable but
        engines normalise it to *no sanitizer* via :meth:`coerce`).
    sample_every:
        In ``sampled`` mode, verify every this-many maintenance events.
    """

    __slots__ = ("mode", "sample_every", "_events")

    def __init__(self, mode: str = "full", sample_every: int = 64) -> None:
        if mode not in MODES:
            raise ValueError(
                f"sanitize mode must be one of {MODES}, got {mode!r}"
            )
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.mode = mode
        self.sample_every = sample_every
        self._events = 0

    @classmethod
    def coerce(cls, value: SanitizeArg) -> Optional["InvariantSanitizer"]:
        """Normalise a constructor argument to a sanitizer or ``None``.

        ``None`` / ``"off"`` (and a sanitizer whose mode is ``"off"``)
        become ``None`` — the engines' fast path; a mode string becomes
        a fresh sanitizer; an :class:`InvariantSanitizer` instance
        passes through, letting engines share one sampling clock.
        """
        if value is None:
            return None
        if isinstance(value, InvariantSanitizer):
            return None if value.mode == "off" else value
        if isinstance(value, str):
            if value not in MODES:
                raise ValueError(
                    f"sanitize mode must be one of {MODES}, got {value!r}"
                )
            return None if value == "off" else cls(mode=value)
        raise TypeError(
            f"sanitize must be a mode string, an InvariantSanitizer or "
            f"None, got {type(value).__name__}"
        )

    @property
    def events_seen(self) -> int:
        """Maintenance events observed (verified or sampled past)."""
        return self._events

    def maybe_verify(self, target: object) -> None:
        """Count one maintenance event; verify if the mode says so."""
        if self.mode == "off":  # pragma: no cover - engines skip "off"
            return
        self._events += 1
        if self.mode == "sampled" and self._events % self.sample_every:
            return
        self.verify(target)

    def verify(self, target: object) -> None:
        """Verify ``target`` now, regardless of mode and sampling.

        Raises
        ------
        StructureCorruptionError
            Carrying a :class:`~repro.exceptions.SanitizerReport`, on
            the first violated invariant.
        TypeError
            If ``target`` is not a known engine and has no
            ``check_invariants`` method.
        """
        # Engine imports stay lazy: the engines import this module for
        # their ``sanitize=`` parameter, so importing them here at
        # module level would be circular.
        from repro.core.continuous import ContinuousQueryManager
        from repro.core.n1n2 import N1N2Skyline
        from repro.core.nofn import NofNSkyline
        from repro.core.skyband import KSkybandEngine
        from repro.core.timewindow import TimeWindowSkyline
        from repro.parallel.sharded import _ShardedRouter

        if isinstance(target, _ShardedRouter):
            # Shard engines re-verify themselves on their own arrivals;
            # the router-level event checks the fan-out/merge.
            verify_sharded(target)
        elif isinstance(target, TimeWindowSkyline):
            verify_timewindow(target)
        elif isinstance(target, NofNSkyline):
            verify_nofn(target)
        elif isinstance(target, N1N2Skyline):
            verify_n1n2(target)
        elif isinstance(target, KSkybandEngine):
            verify_skyband(target)
        elif isinstance(target, ContinuousQueryManager):
            verify_continuous(target)
        else:
            check = getattr(target, "check_invariants", None)
            if check is None:
                raise TypeError(
                    f"cannot sanitize {type(target).__name__}: not an "
                    f"engine and no check_invariants method"
                )
            check()

    def __repr__(self) -> str:
        return (
            f"InvariantSanitizer(mode={self.mode!r}, "
            f"sample_every={self.sample_every})"
        )
