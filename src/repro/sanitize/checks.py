"""Invariant verifiers for every engine in the library.

Each ``verify_*`` function re-derives, from first principles, the
properties the paper proves about its engine's state and raises
:class:`~repro.exceptions.StructureCorruptionError` (carrying a
:class:`~repro.exceptions.SanitizerReport`) on the first violation.
Nothing here uses ``assert``, so every check survives ``python -O``.

The invariant catalogue (the ``invariant`` field of the report):

================== ====================================================
``counts``          cross-structure sizes, label/window membership
``non-redundancy``  Theorem 1: no ``R_N`` element has a younger
                    in-window weak dominator inside ``R_N``
``forest``          the critical-dominance graph is an acyclic forest
                    with consistent parent/child links (acyclicity
                    follows from every parent being strictly older)
``critical-parent`` the recorded parent is a dominator and is the
                    *youngest* older dominator within ``R_N``
``interval-encoding`` each element's interval is exactly
                    ``(label(parent), label(e)]`` (Theorem 3) /
                    ``(kappa(a_e), kappa(e)]`` (section 4) /
                    ``(threshold, kappa(e)]`` (k-skyband)
``stabbing-bruteforce`` stabbing-query answers equal a brute-force
                    skyline/skyband of the window suffix
``cbc-ancestor``    Theorem 4's ``a_e``/``b_e`` ancestors match a
                    brute-force recomputation over ``P_N``
``band-count``      k-skyband younger-dominator counters are in range
                    and consistent with the retained set
``trigger-heap``    a continuous query's min-heap mirrors its result
``graph-mirror``    the manager's dominance-forest mirror matches the
                    engine's graph (checked only when in sync)
``result-sync``     a continuous result equals the stabbing answer
``continuous-index`` the query-index axis is sorted and aligned, group
                    refcounts match the handle registry, no trigger
                    entry is scheduled later than its group's real due
                    time, and every group's member set equals a
                    brute-force per-window replay over the manager's
                    dominance-forest mirror (valid mid-batch)
``stab-cache``      the versioned query cache's answer at each tested
                    stab point equals a fresh stab of the live interval
                    tree (checked whenever a cache is attached)
``shard-merge``     a sharded router's fan-out/merge answer equals a
                    brute-force oracle over the union of the shards'
                    retained in-window elements (which provably equals
                    the single-engine answer; see
                    :mod:`repro.parallel.merge`)
``shard-replica``   a shard's shared-memory replica
                    (:mod:`repro.parallel.replicas`) answers stabs and
                    retained suffixes identically to its authoritative
                    worker engine at the same published version
================== ====================================================

plus the structure-level invariants raised by the structures themselves
(``rbtree-*``, ``max-high-augmentation``, ``labelset-*``, ``heap-*``,
``rtree-*`` — including ``rtree-kernel-cache``, a cached leaf kernel
that no longer mirrors its leaf's children).

Import discipline
-----------------
The engines call these verifiers (their ``check_invariants`` delegate
here), so at module level this file may only import *leaf* modules:
:mod:`repro.core.dominance`, :mod:`repro.core.element` and
:mod:`repro.exceptions`.  Engine types appear only under
``TYPE_CHECKING`` and in docstrings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.core.dominance import dominates, weakly_dominates
from repro.core.element import StreamElement
from repro.exceptions import corruption

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.continuous import ContinuousQueryManager
    from repro.core.n1n2 import N1N2Skyline
    from repro.core.nofn import NofNSkyline
    from repro.core.skyband import KSkybandEngine
    from repro.core.timewindow import TimeWindowSkyline
    from repro.parallel.sharded import _ShardedRouter

__all__ = [
    "verify_continuous",
    "verify_n1n2",
    "verify_nofn",
    "verify_shard_replicas",
    "verify_sharded",
    "verify_skyband",
    "verify_timewindow",
]


def _beats(f: StreamElement, e: StreamElement) -> bool:
    """Whether ``f`` excludes ``e`` from a skyline/skyband under the
    library's tie convention (DESIGN.md §7): strict dominance, or a
    *younger* exact duplicate."""
    return weakly_dominates(f.values, e.values) and (
        f.kappa > e.kappa or dominates(f.values, e.values)
    )


def _brute_skyline(elements: Sequence[StreamElement]) -> List[int]:
    """Kappas of the skyline of ``elements``, ascending (O(n^2) scan)."""
    return sorted(
        e.kappa
        for e in elements
        if not any(_beats(f, e) for f in elements if f is not e)
    )


def _check_stab_cache_at(
    cache: object, stab: float, expected: List[int], name: str
) -> None:
    """Compare a :class:`~repro.accel.stab_cache.StabCache` answer at
    ``stab`` against ``expected`` kappas from the live interval tree
    (``cache`` may be ``None`` when caching is disabled)."""
    if cache is None:
        return
    cached = sorted(r.element.kappa for r in cache.stab(stab))  # type: ignore[attr-defined]
    if cached != expected:
        raise corruption(
            "engine",
            "stab-cache",
            f"query cache stab at {stab} reported kappas {cached}, the "
            f"live interval tree gives {expected}",
            engine=name,
        )


# ----------------------------------------------------------------------
# n-of-N family (NofNSkyline / TimeWindowSkyline)
# ----------------------------------------------------------------------


def verify_nofn(engine: "NofNSkyline") -> None:
    """Verify every documented invariant of an n-of-N engine.

    Raises
    ------
    StructureCorruptionError
        On the first violated invariant.
    """
    name = type(engine).__name__
    _check_nofn_state(engine, name)
    _check_nofn_stabbing(engine, name)


def verify_timewindow(engine: "TimeWindowSkyline") -> None:
    """Verify a time-window engine: the n-of-N structural invariants
    plus time-based stabbing answers.

    Raises
    ------
    StructureCorruptionError
        On the first violated invariant.
    """
    name = type(engine).__name__
    _check_nofn_state(engine, name)
    _check_timewindow_stabbing(engine, name)


def _check_nofn_state(engine: "NofNSkyline", name: str) -> None:
    """Counts, structure health, dominance forest, interval encoding
    and Theorem-1 non-redundancy — shared by both label schemes."""
    records = engine._records
    sizes = (
        len(records),
        len(engine._labels),
        len(engine._rtree),
        len(engine._intervals),
    )
    if len(set(sizes)) != 1:
        raise corruption(
            "engine",
            "counts",
            f"structure sizes diverged: records={sizes[0]}, "
            f"labels={sizes[1]}, rtree={sizes[2]}, intervals={sizes[3]}",
            engine=name,
        )
    engine._rtree.check_invariants()
    engine._intervals.check_invariants()
    engine._labels.check_invariants()

    if engine._labels:
        oldest_label, _ = engine._labels.oldest()
        youngest_label, _ = engine._labels.youngest()
        threshold = engine._window_start(youngest_label)
        if oldest_label < threshold:
            raise corruption(
                "engine",
                "counts",
                f"retained label {oldest_label} precedes the window "
                f"start {threshold}",
                engine=name,
            )

    ordered = sorted(records)
    for kappa in ordered:
        record = records[kappa]
        if record.element.kappa != kappa:
            raise corruption(
                "engine",
                "counts",
                f"record keyed {kappa} holds element "
                f"kappa={record.element.kappa}",
                kappas=(kappa,),
                engine=name,
            )
        if record.handle is None:
            raise corruption(
                "engine",
                "interval-encoding",
                f"element {kappa} of R_N has no interval",
                kappas=(kappa,),
                engine=name,
            )
        interval = record.handle.interval
        if interval.high != record.label:
            raise corruption(
                "engine",
                "interval-encoding",
                f"element {kappa}: interval high {interval.high} != "
                f"label {record.label}",
                kappas=(kappa,),
                engine=name,
            )
        if record.parent_kappa == 0:
            if interval.low != 0.0:
                raise corruption(
                    "engine",
                    "interval-encoding",
                    f"root {kappa}: interval low {interval.low} != 0",
                    kappas=(kappa,),
                    engine=name,
                )
        else:
            parent = records.get(record.parent_kappa)
            if parent is None:
                raise corruption(
                    "engine",
                    "forest",
                    f"element {kappa}: critical parent "
                    f"{record.parent_kappa} is missing from R_N",
                    kappas=(kappa, record.parent_kappa),
                    engine=name,
                )
            if parent.element.kappa >= kappa:
                raise corruption(
                    "engine",
                    "forest",
                    f"element {kappa}: critical parent "
                    f"{record.parent_kappa} is not older",
                    kappas=(kappa, record.parent_kappa),
                    engine=name,
                )
            if kappa not in parent.children:
                raise corruption(
                    "engine",
                    "forest",
                    f"element {kappa} is missing from the child set of "
                    f"its parent {record.parent_kappa}",
                    kappas=(kappa, record.parent_kappa),
                    engine=name,
                )
            if interval.low != parent.label:
                raise corruption(
                    "engine",
                    "interval-encoding",
                    f"element {kappa}: interval low {interval.low} != "
                    f"parent label {parent.label}",
                    kappas=(kappa, record.parent_kappa),
                    engine=name,
                )
            if not weakly_dominates(
                parent.element.values, record.element.values
            ):
                raise corruption(
                    "engine",
                    "critical-parent",
                    f"recorded parent {record.parent_kappa} does not "
                    f"dominate element {kappa}",
                    kappas=(kappa, record.parent_kappa),
                    engine=name,
                )
        for child_kappa in record.children:
            child = records.get(child_kappa)
            if child is None or child.parent_kappa != kappa:
                raise corruption(
                    "engine",
                    "forest",
                    f"stale child link {kappa} -> {child_kappa}",
                    kappas=(kappa, child_kappa),
                    engine=name,
                )

    # Theorem 1 (non-redundancy) and the *youngest*-dominator property
    # of the critical parent, both O(|R_N|^2).
    for i, kappa in enumerate(ordered):
        record = records[kappa]
        for other_kappa in ordered[i + 1 :]:
            other = records[other_kappa]
            if weakly_dominates(other.element.values, record.element.values):
                raise corruption(
                    "engine",
                    "non-redundancy",
                    f"element {kappa} is weakly dominated by the younger "
                    f"retained element {other_kappa} (Theorem 1)",
                    kappas=(kappa, other_kappa),
                    engine=name,
                )
        for older_kappa in ordered[:i]:
            if older_kappa <= record.parent_kappa:
                continue
            older = records[older_kappa]
            if weakly_dominates(older.element.values, record.element.values):
                raise corruption(
                    "engine",
                    "critical-parent",
                    f"element {kappa}: dominator {older_kappa} is younger "
                    f"than the recorded critical parent "
                    f"{record.parent_kappa}",
                    kappas=(kappa, older_kappa, record.parent_kappa),
                    engine=name,
                )


def _check_nofn_stabbing(engine: "NofNSkyline", name: str) -> None:
    """Theorem 3 end-to-end: for several ``n``, the stabbing answer must
    equal a brute-force skyline of the retained window suffix."""
    m = engine._m
    if m == 0:
        return
    for n in sorted({1, max(1, engine.capacity // 2), engine.capacity}):
        stab = max(1, m - n + 1)
        got = sorted(r.element.kappa for r in engine._intervals.stab(stab))
        suffix = [
            record.element
            for record in engine._records.values()
            if record.element.kappa >= stab
        ]
        expected = _brute_skyline(suffix)
        if got != expected:
            raise corruption(
                "engine",
                "stabbing-bruteforce",
                f"stab at {stab} (n={n}) reported kappas {got}, brute "
                f"force over R_N gives {expected}",
                engine=name,
            )
        _check_stab_cache_at(engine._stab_cache, stab, got, name)


def _check_timewindow_stabbing(
    engine: "TimeWindowSkyline", name: str
) -> None:
    """Time-based Theorem 3: stabbing at ``now - tau`` must equal a
    brute-force skyline of the retained elements stamped within the
    closed window ``[now - tau, now]``."""
    if not engine._labels:
        return
    oldest_label, _ = engine._labels.oldest()
    for duration in (engine.horizon / 2, engine.horizon):
        stab = engine._now - duration
        if stab <= 0:
            stab = oldest_label
        got = sorted(r.element.kappa for r in engine._intervals.stab(stab))
        suffix = [
            record.element
            for record in engine._records.values()
            if record.label >= stab
        ]
        expected = _brute_skyline(suffix)
        if got != expected:
            raise corruption(
                "engine",
                "stabbing-bruteforce",
                f"stab at {stab} (last {duration} time units) reported "
                f"kappas {got}, brute force over R_N gives {expected}",
                engine=name,
            )
        _check_stab_cache_at(engine._stab_cache, stab, got, name)


# ----------------------------------------------------------------------
# (n1,n2)-of-N
# ----------------------------------------------------------------------


def verify_n1n2(engine: "N1N2Skyline") -> None:
    """Verify every documented invariant of an (n1,n2)-of-N engine.

    Raises
    ------
    StructureCorruptionError
        On the first violated invariant.
    """
    name = type(engine).__name__
    records = engine._records
    expected_window = min(engine._m, engine.capacity)
    if len(records) != expected_window:
        raise corruption(
            "engine",
            "counts",
            f"|P_N| is {len(records)}, expected {expected_window}",
            engine=name,
        )
    if len(engine._live) + len(engine._superseded) != expected_window:
        raise corruption(
            "engine",
            "counts",
            f"interval trees hold {len(engine._live)} + "
            f"{len(engine._superseded)} intervals for a window of "
            f"{expected_window}",
            engine=name,
        )
    if len(engine._rtree) != len(engine._live):
        raise corruption(
            "engine",
            "counts",
            f"R-tree holds {len(engine._rtree)} entries but I_RN holds "
            f"{len(engine._live)}",
            engine=name,
        )
    engine._rtree.check_invariants()
    engine._live.check_invariants()
    engine._superseded.check_invariants()

    for kappa, record in records.items():
        if record.element.kappa != kappa:
            raise corruption(
                "engine",
                "counts",
                f"record keyed {kappa} holds element "
                f"kappa={record.element.kappa}",
                kappas=(kappa,),
                engine=name,
            )
        if record.handle is None:
            raise corruption(
                "engine",
                "interval-encoding",
                f"element {kappa} of P_N has no interval",
                kappas=(kappa,),
                engine=name,
            )
        interval = record.handle.interval
        if interval.high != float(kappa) or interval.low != float(
            record.a_kappa
        ):
            raise corruption(
                "engine",
                "interval-encoding",
                f"element {kappa}: interval ({interval.low}, "
                f"{interval.high}] != ({float(record.a_kappa)}, "
                f"{float(kappa)}]",
                kappas=(kappa,),
                engine=name,
            )
        if record.a_kappa:
            parent = records.get(record.a_kappa)
            if parent is None or parent.element.kappa >= kappa:
                raise corruption(
                    "engine",
                    "forest",
                    f"element {kappa}: critical ancestor "
                    f"{record.a_kappa} is missing or not older",
                    kappas=(kappa, record.a_kappa),
                    engine=name,
                )
            if kappa not in parent.dependents:
                raise corruption(
                    "engine",
                    "forest",
                    f"element {kappa} is missing from the dependents of "
                    f"its ancestor {record.a_kappa}",
                    kappas=(kappa, record.a_kappa),
                    engine=name,
                )
        if record.in_rn:
            if record.b_kappa is not None:
                raise corruption(
                    "engine",
                    "cbc-ancestor",
                    f"element {kappa} is in R_N but has a finite "
                    f"backward ancestor {record.b_kappa}",
                    kappas=(kappa,),
                    engine=name,
                )
            if kappa not in engine._rtree:
                raise corruption(
                    "engine",
                    "counts",
                    f"live element {kappa} is missing from the R-tree",
                    kappas=(kappa,),
                    engine=name,
                )
        for dep_kappa in record.dependents:
            dep = records.get(dep_kappa)
            if dep is None or dep.a_kappa != kappa:
                raise corruption(
                    "engine",
                    "forest",
                    f"stale dependent link {kappa} -> {dep_kappa}",
                    kappas=(kappa, dep_kappa),
                    engine=name,
                )

    # Theorem 4's ancestors, recomputed by brute force over P_N (which
    # this engine retains in full).  ``a_e`` uses *strict* dominance: an
    # older exact duplicate is demoted by the newcomer before the
    # ancestor search runs, so it can never be recorded (DESIGN.md §7).
    # ``b_e`` uses *weak* dominance: a younger duplicate does demote.
    elements = [record.element for record in records.values()]
    for kappa, record in records.items():
        point = record.element.values
        brute_a = 0
        brute_b = None
        for other in elements:
            if other.kappa < kappa:
                if dominates(other.values, point):
                    brute_a = max(brute_a, other.kappa)
            elif other.kappa > kappa and weakly_dominates(
                other.values, point
            ):
                if brute_b is None or other.kappa < brute_b:
                    brute_b = other.kappa
        if brute_a != record.a_kappa:
            raise corruption(
                "engine",
                "cbc-ancestor",
                f"element {kappa}: recorded a_e={record.a_kappa}, brute "
                f"force gives {brute_a} (Equation 1)",
                kappas=(kappa, record.a_kappa, brute_a),
                engine=name,
            )
        if brute_b != record.b_kappa:
            raise corruption(
                "engine",
                "cbc-ancestor",
                f"element {kappa}: recorded b_e={record.b_kappa}, brute "
                f"force gives {brute_b} (Equation 2)",
                kappas=(kappa,),
                engine=name,
            )

    _check_n1n2_stabbing(engine, name)


def _check_n1n2_stabbing(engine: "N1N2Skyline", name: str) -> None:
    """Algorithm 3 end-to-end against a brute-force skyline of the
    queried slice (full window retained, so the slice is exact)."""
    m = engine._m
    if m == 0:
        return
    capacity = engine.capacity
    pairs = {(1, 1), (1, capacity), (max(1, capacity // 2), capacity)}
    for n1, n2 in sorted(pairs):
        upper = m - n1 + 1
        if upper < 1:
            continue
        stab = max(1, m - n2 + 1)
        got = sorted(
            record.element.kappa
            for record in engine._live.stab(stab)
            if record.element.kappa <= upper
        )
        if n1 > 1:
            got = sorted(
                got
                + [
                    record.element.kappa
                    for record in engine._superseded.stab(stab)
                    if record.b_kappa is not None
                    and record.element.kappa <= upper < record.b_kappa
                ]
            )
        window_slice = [
            record.element
            for record in engine._records.values()
            if stab <= record.element.kappa <= upper
        ]
        expected = _brute_skyline(window_slice)
        if got != expected:
            raise corruption(
                "engine",
                "stabbing-bruteforce",
                f"({n1},{n2})-of-N stab reported kappas {got}, brute "
                f"force over the slice gives {expected}",
                engine=name,
            )
        _check_stab_cache_at(
            engine._live_cache,
            stab,
            sorted(r.element.kappa for r in engine._live.stab(stab)),
            name,
        )
        _check_stab_cache_at(
            engine._superseded_cache,
            stab,
            sorted(r.element.kappa for r in engine._superseded.stab(stab)),
            name,
        )


# ----------------------------------------------------------------------
# k-skyband
# ----------------------------------------------------------------------


def verify_skyband(engine: "KSkybandEngine") -> None:
    """Verify every documented invariant of a k-skyband engine.

    Raises
    ------
    StructureCorruptionError
        On the first violated invariant.
    """
    name = type(engine).__name__
    records = engine._records
    sizes = (
        len(records),
        len(engine._labels),
        len(engine._rtree),
        len(engine._intervals),
    )
    if len(set(sizes)) != 1:
        raise corruption(
            "engine",
            "counts",
            f"structure sizes diverged: records={sizes[0]}, "
            f"labels={sizes[1]}, rtree={sizes[2]}, intervals={sizes[3]}",
            engine=name,
        )
    engine._rtree.check_invariants()
    engine._intervals.check_invariants()
    engine._labels.check_invariants()

    k = engine.k
    for kappa, record in records.items():
        if record.element.kappa != kappa:
            raise corruption(
                "engine",
                "counts",
                f"record keyed {kappa} holds element "
                f"kappa={record.element.kappa}",
                kappas=(kappa,),
                engine=name,
            )
        if not 0 <= record.younger < k:
            raise corruption(
                "engine",
                "band-count",
                f"element {kappa}: younger-dominator count "
                f"{record.younger} outside [0, {k})",
                kappas=(kappa,),
                engine=name,
            )
        doms = record.older_doms
        if len(doms) > k or doms != sorted(doms, reverse=True) or any(
            d >= kappa or d < 1 for d in doms
        ):
            raise corruption(
                "engine",
                "band-count",
                f"element {kappa}: malformed older-dominator list {doms}",
                kappas=(kappa,),
                engine=name,
            )
        if record.handle is None:
            raise corruption(
                "engine",
                "interval-encoding",
                f"element {kappa} has no interval",
                kappas=(kappa,),
                engine=name,
            )
        interval = record.handle.interval
        expected_low = float(engine._threshold_kappa(record))
        if interval.high != float(kappa) or interval.low != expected_low:
            raise corruption(
                "engine",
                "interval-encoding",
                f"element {kappa}: interval ({interval.low}, "
                f"{interval.high}] != ({expected_low}, {float(kappa)}]",
                kappas=(kappa,),
                engine=name,
            )

    _check_skyband_stabbing(engine, name)


def _check_skyband_stabbing(engine: "KSkybandEngine", name: str) -> None:
    """Generalised Theorem 3: stabbing answers must equal brute-force
    k-skyband membership counted over the retained suffix (exact: an
    element's k youngest in-window dominators are never pruned)."""
    m = engine._m
    if m == 0:
        return
    k = engine.k
    for n in sorted({1, max(1, engine.capacity // 2), engine.capacity}):
        stab = max(1, m - n + 1)
        got = sorted(r.element.kappa for r in engine._intervals.stab(stab))
        suffix = [
            record.element
            for record in engine._records.values()
            if record.element.kappa >= stab
        ]
        expected = sorted(
            e.kappa
            for e in suffix
            if sum(1 for f in suffix if f is not e and _beats(f, e)) < k
        )
        if got != expected:
            raise corruption(
                "engine",
                "stabbing-bruteforce",
                f"k-skyband stab at {stab} (n={n}, k={k}) reported "
                f"kappas {got}, brute force gives {expected}",
                engine=name,
            )
        _check_stab_cache_at(engine._stab_cache, stab, got, name)


# ----------------------------------------------------------------------
# Continuous-query manager
# ----------------------------------------------------------------------


def verify_continuous(manager: "ContinuousQueryManager") -> None:
    """Verify every registered continuous query and the manager's
    dominance-forest mirror.

    The mirror and result sets are compared against the live engine only
    when the manager has processed every arrival the engine has ingested
    (during batch replay the engine runs ahead; the heap invariants are
    always checked).

    Raises
    ------
    StructureCorruptionError
        On the first violated invariant.
    """
    name = type(manager).__name__
    engine = manager.engine
    for handle in manager:
        handle._heap.check_invariants()
        if sorted(handle._heap.keys()) != sorted(handle._members):
            raise corruption(
                "engine",
                "trigger-heap",
                f"query {handle.query_id} (n={handle.n}): trigger heap "
                f"keys disagree with the result set",
                engine=name,
            )

    if manager._index is not None:
        _verify_query_index(manager, name)

    m = engine.seen_so_far
    mirror = manager._graph_elements
    in_sync = m == 0 or (bool(mirror) and max(mirror) == m)
    if not in_sync:
        return

    if sorted(mirror) != sorted(engine._records):
        raise corruption(
            "engine",
            "graph-mirror",
            f"mirror holds kappas {sorted(mirror)}, engine holds "
            f"{sorted(engine._records)}",
            engine=name,
        )
    for kappa, record in engine._records.items():
        if manager._graph_parent.get(kappa) != record.parent_kappa:
            raise corruption(
                "engine",
                "graph-mirror",
                f"mirror parent of {kappa} is "
                f"{manager._graph_parent.get(kappa)}, engine records "
                f"{record.parent_kappa}",
                kappas=(kappa,),
                engine=name,
            )
        if manager._graph_children.get(kappa, set()) != record.children:
            raise corruption(
                "engine",
                "graph-mirror",
                f"mirror children of {kappa} disagree with the engine",
                kappas=(kappa,),
                engine=name,
            )

    for handle in manager:
        if m == 0:
            expected: List[int] = []
        else:
            stab = max(1, m - handle.n + 1)
            expected = sorted(
                r.element.kappa for r in engine._intervals.stab(stab)
            )
        if sorted(handle._members) != expected:
            raise corruption(
                "engine",
                "result-sync",
                f"query {handle.query_id} (n={handle.n}) holds kappas "
                f"{sorted(handle._members)}, the stabbing query gives "
                f"{expected}",
                engine=name,
            )


def _verify_query_index(manager: "ContinuousQueryManager", name: str) -> None:
    """The ``continuous-index`` invariant (``query_index="on"`` only).

    Structural checks first (sorted axis, aligned group registry,
    refcounts, expiry entries never scheduled late), then a brute-force
    replay: each group's member set must equal Proposition 1 evaluated
    directly over the manager's dominance-forest mirror.  The mirror —
    not the live engine — is the oracle, so the check is valid
    mid-batch, when the engine has already run ahead of the arrival
    being replayed.
    """
    index = manager._index
    if index is None:  # caller gates on this; kept for ``python -O``
        return
    axis = index._axis
    order = index._order
    groups = index._groups

    if any(axis[i] >= axis[i + 1] for i in range(len(axis) - 1)):
        raise corruption(
            "engine",
            "continuous-index",
            f"query-index axis is not strictly ascending: {axis}",
            engine=name,
        )
    if len(axis) != len(order) or [g.n for g in order] != axis:
        raise corruption(
            "engine",
            "continuous-index",
            "query-index axis and group order are misaligned",
            engine=name,
        )
    if sorted(groups) != axis:
        raise corruption(
            "engine",
            "continuous-index",
            "query-index group registry disagrees with the axis",
            engine=name,
        )

    counts: Dict[int, int] = {}
    for handle in manager:
        counts[handle.n] = counts.get(handle.n, 0) + 1
        if groups.get(handle.n) is not handle._group:
            raise corruption(
                "engine",
                "continuous-index",
                f"query {handle.query_id} (n={handle.n}) is not viewing "
                f"its registered group",
                engine=name,
            )
    if counts != {g.n: g.refs for g in order}:
        raise corruption(
            "engine",
            "continuous-index",
            f"group refcounts {dict((g.n, g.refs) for g in order)} "
            f"disagree with the handle registry {counts}",
            engine=name,
        )

    for n in index._expiry.keys():
        if n not in groups:
            raise corruption(
                "engine",
                "continuous-index",
                f"expiry entry for unregistered window n={n}",
                engine=name,
            )
    for group in order:
        if not group._heap:
            continue
        top_kappa, _ = group._heap.peek()
        real_due = top_kappa + group.n
        if group.n not in index._expiry:
            raise corruption(
                "engine",
                "continuous-index",
                f"group n={group.n} has a trigger top ({top_kappa}) but "
                f"no expiry entry — its window expiries would never fire",
                engine=name,
            )
        scheduled = index._expiry.priority_of(group.n)
        if not isinstance(scheduled, int) or scheduled > real_due:
            raise corruption(
                "engine",
                "continuous-index",
                f"group n={group.n} is scheduled at {scheduled!r}, later "
                f"than its real due time {real_due} — a stale-late entry "
                f"would miss expiries",
                engine=name,
            )

    # Brute-force replay of Proposition 1 over the mirror: element e
    # (parent p) is in window n at stream length M iff it is among the
    # last n arrivals and its critical dominator is not.
    mirror = manager._graph_elements
    parents = manager._graph_parent
    m = max(mirror) if mirror else 0
    for group in order:
        window_start = m - group.n + 1
        expected = sorted(
            kappa
            for kappa in mirror
            if kappa >= window_start
            and (not parents.get(kappa, 0) or parents[kappa] < window_start)
        )
        if group.result_kappas() != expected:
            raise corruption(
                "engine",
                "continuous-index",
                f"group n={group.n} holds kappas {group.result_kappas()}, "
                f"the mirror replay gives {expected}",
                engine=name,
            )


# ----------------------------------------------------------------------
# Sharded routers
# ----------------------------------------------------------------------


def verify_sharded(router: "_ShardedRouter") -> None:
    """Verify a sharded router's fan-out/merge against a brute oracle.

    The oracle population is the union of the shards' retained
    in-window elements: it contains every global answer element
    (Theorem 1 containment per sub-stream) and, for every non-answer it
    contains, at least ``min(k, true count)`` of its in-window beaters
    (a shard never prunes the ``k`` youngest in-window dominators of
    any point) — so the brute-force tie-rule scan over the union equals
    the single-engine answer.  The merge path under test is entirely
    different code (vectorised dedupe + Pareto mask, or the capped
    witness count), which is what makes this a real cross-check.

    Raises
    ------
    StructureCorruptionError
        On the first violated invariant.
    """
    name = type(router).__name__
    m = router.seen_so_far
    if m == 0:
        return
    # Replicas first: a corrupt replica would otherwise surface as a
    # mysterious shard-merge mismatch when the merge serves from it.
    verify_shard_replicas(router)
    k = int(getattr(router, "k", 1))
    for n in sorted({1, max(1, router.capacity // 2), router.capacity}):
        stab = max(1, m - n + 1)
        got = [e.kappa for e in router._merged([stab])[0]]
        union = router.retained_union(stab)
        expected = sorted(
            e.kappa
            for e in union
            if sum(1 for f in union if f is not e and _beats(f, e)) < k
        )
        if got != expected:
            raise corruption(
                "engine",
                "shard-merge",
                f"merged answer at stab {stab} (n={n}, k={k}) reported "
                f"kappas {got}, the retained-union oracle gives "
                f"{expected}",
                engine=name,
            )


def verify_shard_replicas(router: "_ShardedRouter") -> None:
    """Verify a router's shared-memory replicas against its workers.

    Each worker republishes its replica immediately before answering a
    ``replica_check`` command, and the router is single-threaded, so the
    replica read here is guaranteed to be at the *same* version as the
    worker's authoritative reply — the comparison is exact, not
    best-effort.  Checks the stab answers at the same query sizes
    :func:`verify_sharded` exercises, the retained witness suffix, and
    the version/seen labelling itself.  A no-op when replicas are
    disabled (serial backend or ``replicas="off"``).

    Raises
    ------
    StructureCorruptionError
        With invariant ``shard-replica`` on the first divergence.
    """
    from repro.parallel.executors import ProcessExecutor

    if not getattr(router, "_replicas_enabled", False):
        return
    executor = router._executor
    if not isinstance(executor, ProcessExecutor):  # pragma: no cover
        return
    readers = executor.replica_readers
    if readers is None:  # pragma: no cover - enabled implies readers
        return
    name = type(router).__name__
    m = router.seen_so_far
    if m == 0:
        return
    stabs = sorted(
        {
            max(1, m - n + 1)
            for n in (1, max(1, router.capacity // 2), router.capacity)
        }
    )
    witness = min(stabs)
    replies = executor.replica_check_all(stabs, witness)
    for shard, reply in enumerate(replies):
        snapshot = readers[shard].read()
        if snapshot is None:
            raise corruption(
                "engine",
                "shard-replica",
                f"shard {shard} has no readable replica immediately "
                f"after its worker republished (version "
                f"{reply['version']})",
                engine=name,
            )
        if snapshot.version != reply["version"] or (
            snapshot.seen != reply["seen"]
        ):
            raise corruption(
                "engine",
                "shard-replica",
                f"shard {shard} replica claims version "
                f"{snapshot.version} (seen {snapshot.seen}) but the "
                f"worker just published version {reply['version']} "
                f"(seen {reply['seen']})",
                engine=name,
            )
        for stab, authoritative in zip(stabs, reply["answers"]):
            got = [(e.kappa, tuple(e.values)) for e in snapshot.stab(stab)]
            want = [(e.kappa, tuple(e.values)) for e in authoritative]
            if got != want:
                raise corruption(
                    "engine",
                    "shard-replica",
                    f"shard {shard} replica stab {stab} answered kappas "
                    f"{[kappa for kappa, _ in got]}, the authoritative "
                    f"worker answers {[kappa for kappa, _ in want]} at "
                    f"the same version {reply['version']}",
                    engine=name,
                )
        got_suffix = [
            (e.kappa, tuple(e.values))
            for e in snapshot.retained_suffix(witness)
        ]
        want_suffix = [
            (e.kappa, tuple(e.values)) for e in reply["retained"]
        ]
        if got_suffix != want_suffix:
            raise corruption(
                "engine",
                "shard-replica",
                f"shard {shard} replica retained suffix at stab "
                f"{witness} holds kappas "
                f"{[kappa for kappa, _ in got_suffix]}, the worker "
                f"reports {[kappa for kappa, _ in want_suffix]}",
                engine=name,
            )
