"""Paper-invariant sanitizer subsystem.

Attachable runtime verification for every engine in the library: the
:class:`InvariantSanitizer` re-derives the properties the paper proves
(Theorem 1 non-redundancy, the Theorem 3 interval encoding and its
stabbing answers, Theorem 4's CBC ancestors, R-tree max-kappa
augmentation, trigger-heap consistency, ...) directly from engine
state, and raises :class:`~repro.exceptions.StructureCorruptionError`
with a structured :class:`~repro.exceptions.SanitizerReport` instead of
erasable ``assert`` statements — every check survives ``python -O``.

Attach it at construction time::

    engine = NofNSkyline(dim=2, capacity=1000, sanitize="sampled")

or drive it directly::

    InvariantSanitizer(mode="full").verify(engine)

See ``docs/DEVELOPING.md`` for the mode/cost trade-offs and the full
invariant catalogue.
"""

from __future__ import annotations

from repro.exceptions import (
    SanitizerReport,
    StructureCorruptionError,
    corruption,
)
from repro.sanitize.checks import (
    verify_continuous,
    verify_n1n2,
    verify_nofn,
    verify_skyband,
    verify_timewindow,
)
from repro.sanitize.sanitizer import MODES, InvariantSanitizer, SanitizeArg

__all__ = [
    "MODES",
    "InvariantSanitizer",
    "SanitizeArg",
    "SanitizerReport",
    "StructureCorruptionError",
    "corruption",
    "verify_continuous",
    "verify_n1n2",
    "verify_nofn",
    "verify_skyband",
    "verify_timewindow",
]
