"""Stabbing the Sky — sliding-window skyline computation.

A production-grade reproduction of Lin, Yuan, Wang & Lu,
*"Stabbing the Sky: Efficient Skyline Computation over Sliding
Windows"* (ICDE 2005).

Quick start::

    from repro import NofNSkyline

    engine = NofNSkyline(dim=2, capacity=1_000)   # N = 1000
    for price, volume_rank in deals:
        engine.append((price, volume_rank))
    top_recent = engine.query(100)   # skyline of the last 100 deals
    top_window = engine.skyline()    # skyline of the whole window

See :mod:`repro.core` for the engines, :mod:`repro.baselines` for the
classic skyline algorithms (KLP, BNL, SFS), :mod:`repro.streams` for
the benchmark data generators and :mod:`repro.structures` for the
data-structure substrates (interval tree, R-tree, heaps).
"""

from repro.core import (
    ApproxNofNSkyline,
    ArrivalOutcome,
    BatchOutcome,
    ContinuousN1N2Query,
    ContinuousQueryHandle,
    ContinuousQueryManager,
    EngineStats,
    ExpiredRecord,
    KSkybandEngine,
    LinearScanNofNSkyline,
    N1N2Skyline,
    NofNSkyline,
    StreamElement,
    TimeWindowSkyline,
    dominates,
    incomparable,
    weakly_dominates,
)
from repro.exceptions import (
    DimensionMismatchError,
    DuplicateKeyError,
    EmptyStructureError,
    InvalidIntervalError,
    InvalidWindowError,
    KeyNotFoundError,
    QueryNotRegisteredError,
    ReproError,
    SanitizerReport,
    ShardFailureError,
    StreamExhaustedError,
    StructureCorruptionError,
)
from repro.parallel import ShardedKSkyband, ShardedNofNSkyline
from repro.sanitize import InvariantSanitizer

__version__ = "1.0.0"

__all__ = [
    "ApproxNofNSkyline",
    "ArrivalOutcome",
    "BatchOutcome",
    "ContinuousN1N2Query",
    "ContinuousQueryHandle",
    "ContinuousQueryManager",
    "DimensionMismatchError",
    "DuplicateKeyError",
    "EmptyStructureError",
    "EngineStats",
    "ExpiredRecord",
    "InvalidIntervalError",
    "InvalidWindowError",
    "InvariantSanitizer",
    "KSkybandEngine",
    "KeyNotFoundError",
    "LinearScanNofNSkyline",
    "N1N2Skyline",
    "NofNSkyline",
    "QueryNotRegisteredError",
    "ReproError",
    "SanitizerReport",
    "ShardFailureError",
    "ShardedKSkyband",
    "ShardedNofNSkyline",
    "StreamElement",
    "StreamExhaustedError",
    "StructureCorruptionError",
    "TimeWindowSkyline",
    "__version__",
    "dominates",
    "incomparable",
    "weakly_dominates",
]
