"""Sharded parallel engines: multi-core ingestion, exact fan-out/merge.

Public surface:

* :class:`~repro.parallel.sharded.ShardedNofNSkyline` /
  :class:`~repro.parallel.sharded.ShardedKSkyband` — round-robin
  routers with ``serial`` and ``process`` executor backends;
* :func:`~repro.parallel.merge.merge_skyline` /
  :func:`~repro.parallel.merge.merge_skyband` — the exact merge steps;
* the shared-memory stab-snapshot replicas of
  :mod:`repro.parallel.replicas` — the process backend's zero-IPC
  query read path;
* the per-shard engines and executors, for tests and tooling.
"""

from repro.parallel.executors import ProcessExecutor, SerialExecutor
from repro.parallel.merge import merge_skyband, merge_skyline
from repro.parallel.replicas import (
    ReplicaPublisher,
    ReplicaReader,
    ReplicaSnapshot,
    cleanup_replica_segments,
)
from repro.parallel.shard_engines import (
    ShardKSkybandEngine,
    ShardNofNEngine,
    build_shard_engine,
)
from repro.parallel.sharded import (
    BACKENDS,
    REPLICA_MODES,
    ShardedKSkyband,
    ShardedNofNSkyline,
)

__all__ = [
    "BACKENDS",
    "REPLICA_MODES",
    "ProcessExecutor",
    "ReplicaPublisher",
    "ReplicaReader",
    "ReplicaSnapshot",
    "SerialExecutor",
    "ShardKSkybandEngine",
    "ShardNofNEngine",
    "ShardedKSkyband",
    "ShardedNofNSkyline",
    "build_shard_engine",
    "cleanup_replica_segments",
    "merge_skyband",
    "merge_skyline",
]
