"""Sharded parallel engines: multi-core ingestion, exact fan-out/merge.

Public surface:

* :class:`~repro.parallel.sharded.ShardedNofNSkyline` /
  :class:`~repro.parallel.sharded.ShardedKSkyband` — round-robin
  routers with ``serial`` and ``process`` executor backends;
* :func:`~repro.parallel.merge.merge_skyline` /
  :func:`~repro.parallel.merge.merge_skyband` — the exact merge steps;
* the per-shard engines and executors, for tests and tooling.
"""

from repro.parallel.executors import ProcessExecutor, SerialExecutor
from repro.parallel.merge import merge_skyband, merge_skyline
from repro.parallel.shard_engines import (
    ShardKSkybandEngine,
    ShardNofNEngine,
    build_shard_engine,
)
from repro.parallel.sharded import BACKENDS, ShardedKSkyband, ShardedNofNSkyline

__all__ = [
    "BACKENDS",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardKSkybandEngine",
    "ShardNofNEngine",
    "ShardedKSkyband",
    "ShardedNofNSkyline",
    "build_shard_engine",
    "merge_skyband",
    "merge_skyline",
]
