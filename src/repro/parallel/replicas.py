"""Shared-memory stab-snapshot replicas: the zero-IPC shard read path.

The process backend's original query path paid one command/result IPC
round trip per shard *per stab* — and each reply queued behind the
shard's fire-and-forget ingest backlog, so a query under load cost
hundreds of milliseconds while a single engine answered in microseconds
(BENCH_shard.json).  The paper's whole point is that a stab is a cheap
interval-stabbing lookup; this module moves that lookup into the
router's own address space.

Each shard worker **publishes** its stab state into
:mod:`multiprocessing.shared_memory` after maintenance; the router
**reads** it directly and answers n-of-N / k-skyband stabs with plain
``searchsorted`` arithmetic — zero IPC on the read path.  The published
state is exactly what :class:`~repro.accel.stab_cache.StabCache`
already materializes for the worker's local fast path (the flat sorted
``low``/``high`` arrays of the interval encoding), plus the element
payload table and the shard's retained in-window suffix (the k-skyband
merge witnesses).

**Seqlock double buffering.**  A tiny fixed-size *control block* per
shard carries a sequence word, the active buffer index, the shard's
``structure_version`` and high-water ``seen`` kappa, and per-slot
generation/size metadata.  The writer fills the *inactive* data buffer,
then flips the control block: bump ``seq`` to odd, rewrite the fields
(active index + version in one go), bump ``seq`` back to even.  A
reader snapshots the header, copies the active buffer out, and re-reads
the header; any ``seq`` change (or an odd ``seq``) means the copy may
be torn and the read is rejected — the router then falls back to the
ordinary command-queue path, so a torn snapshot is never *served*.
Data buffers grow by replacement (a new segment under a new generation
name) because POSIX shared memory cannot be resized in place; the
control block names the current generation, and stale attachments are
detected by the generation check.

**Versioning.**  The interval tree's ``version`` counter (bumped on
every structural write, see :mod:`repro.accel.stab_cache`) rides in the
control block: a replica answer is exact *at the version it claims* —
the state after some prefix of the shard's ingest stream.  The router
decides how much staleness to tolerate (its ``replica_lag`` knob); this
module only guarantees never-torn, version-labelled snapshots.

**Memoized spans.**  Stab answers are constant on the elementary spans
between consecutive interval endpoints, so the decoded
:class:`ReplicaSnapshot` memoizes per span exactly like the worker-side
``StabCache`` does.  The memo is rebuilt reader-side per version rather
than shipped: the worker's own memo only fills from worker-local stabs,
which the zero-IPC design precisely avoids.

**Cleanup.**  Python's ``resource_tracker`` would both spam warnings
and unlink segments behind our back (attachments register too on
3.9-3.12), so every open is *untracked* and ownership is explicit: the
router unlinks all segments on ``close()`` and via an ``atexit``
backstop, using only the deterministic name scheme plus the control
block's generation counters — which works even after ``kill -9`` of a
worker, because the names never depend on worker-side state the router
cannot reconstruct (a grow races at most one generation ahead of the
control block, and cleanup sweeps that too).
"""

from __future__ import annotations

import pickle
import struct
from bisect import bisect_left
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.element import StreamElement

__all__ = [
    "ReplicaPublisher",
    "ReplicaReader",
    "ReplicaSnapshot",
    "cleanup_replica_segments",
    "replica_prefixes",
]

#: Control block layout: magic, seq, active slot, structure version,
#: seen kappa, per-slot generation, per-slot used bytes, per-slot
#: capacity, publish count.
_CTRL = struct.Struct("<8sQQqqqqqqqqq")
_CTRL_MAGIC = b"RSREPL01"
_CTRL_SIZE = 128
#: Byte offset of the ``seq`` word inside the control block.
_SEQ = struct.Struct("<Q")
_SEQ_OFFSET = 8

#: Data buffer layout: interval count, retained count, dimensionality —
#: followed by lows/highs/kappas, interval values, retained kappas,
#: retained values, and a pickled payload blob (see ``encode_state``).
_DATA_HEADER = struct.Struct("<qqq")

#: Smallest data segment allocated; buffers grow geometrically.
_MIN_CAPACITY = 4096

#: Distinct elementary spans memoized per decoded snapshot before the
#: memo is cleared wholesale (mirrors ``StabCache``'s policy).
_MAX_MEMO = 1024

#: How many read retries a reader attempts before reporting a torn
#: snapshot (each retry re-reads the control block from scratch).
_READ_RETRIES = 3


# ----------------------------------------------------------------------
# Untracked shared memory (ownership is explicit, see module docstring)
# ----------------------------------------------------------------------


#: Whether this interpreter's ``SharedMemory`` registers opens with the
#: resource tracker (no ``track=False`` support; Python <= 3.12).
#: ``None`` until the first open feature-detects it.
_TRACKED_OPENS: Optional[bool] = None


def _open_segment(name: str, create: bool, size: int = 0) -> SharedMemory:
    """Open a shared-memory segment without resource-tracker tracking.

    Python 3.13+ supports ``track=False`` natively; earlier versions
    register every create *and attach* with the tracker, which would
    unlink segments behind the owner's back and print "leaked
    shared_memory objects" warnings at shutdown — so the registration
    is reverted immediately (:func:`_unlink_segment` compensates for the
    matching ``unregister`` the stdlib's ``unlink`` then performs).
    """
    global _TRACKED_OPENS
    kwargs: Dict[str, Any] = {"name": name, "create": create}
    if create:
        kwargs["size"] = size
    try:
        shm = SharedMemory(**dict(kwargs, track=False))
        _TRACKED_OPENS = False
    except TypeError:  # Python < 3.13: no ``track`` parameter
        shm = SharedMemory(**kwargs)
        _TRACKED_OPENS = True
        try:
            resource_tracker.unregister(
                getattr(shm, "_name", shm.name), "shared_memory"
            )
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    return shm


def _unlink_segment(segment: SharedMemory) -> None:
    """Unlink an open segment without confusing the resource tracker.

    On tracked-open interpreters ``SharedMemory.unlink`` unconditionally
    *unregisters* the name — but :func:`_open_segment` already did, so
    the name is re-registered first to keep the tracker's books balanced
    (an unbalanced unregister makes the tracker process print a
    ``KeyError`` traceback at shutdown).
    """
    if _TRACKED_OPENS:
        try:
            resource_tracker.register(
                getattr(segment, "_name", segment.name), "shared_memory"
            )
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    segment.unlink()


def _unlink_quietly(name: str) -> None:
    """Unlink a segment if it exists; swallow every failure (cleanup
    must never raise — it runs from ``close``/``atexit`` paths)."""
    try:
        segment = _open_segment(name, create=False)
    except FileNotFoundError:
        return
    except OSError:  # pragma: no cover - platform-specific open failure
        return
    try:
        _unlink_segment(segment)
    except FileNotFoundError:  # pragma: no cover - lost a cleanup race
        pass
    finally:
        segment.close()


def _control_name(prefix: str) -> str:
    return prefix + "c"


def _slot_name(prefix: str, slot: int, gen: int) -> str:
    return f"{prefix}{slot}g{gen}"


def replica_prefixes(token: str, shards: int) -> List[str]:
    """Deterministic per-shard segment-name prefixes for one executor.

    ``token`` must be unique per executor instance (the executor embeds
    its pid plus random bits); the shard index keeps workers apart.
    """
    return [f"rs{token}s{index}_" for index in range(shards)]


def cleanup_replica_segments(prefixes: Sequence[str]) -> None:
    """Unlink every segment any of ``prefixes`` may have created.

    Safe against crashed or ``kill -9``-ed workers: the slot names are
    derived from the control block's generation counters, sweeping one
    generation past the recorded one to cover a grow that died between
    segment creation and the control flip.  Never raises.
    """
    for prefix in prefixes:
        gens = [0, 0]
        try:
            control = _open_segment(_control_name(prefix), create=False)
        except (FileNotFoundError, OSError):
            control = None
        if control is not None:
            try:
                fields = _CTRL.unpack_from(control.buf, 0)
                if fields[0] == _CTRL_MAGIC:
                    gens = [int(fields[5]), int(fields[6])]
            except (struct.error, ValueError):  # pragma: no cover
                pass
            finally:
                control.close()
        for slot in (0, 1):
            for gen in range(1, gens[slot] + 2):
                _unlink_quietly(_slot_name(prefix, slot, gen))
        _unlink_quietly(_control_name(prefix))


# ----------------------------------------------------------------------
# Encoding: shard engine state -> bytes
# ----------------------------------------------------------------------


class _ShardState:
    """One shard's exported stab state, ready to encode."""

    __slots__ = (
        "version",
        "seen",
        "lows",
        "highs",
        "kappas",
        "values",
        "payloads",
        "ret_kappas",
        "ret_values",
        "ret_payloads",
    )

    def __init__(
        self,
        version: int,
        seen: int,
        lows: Any,
        highs: Any,
        kappas: Any,
        values: Any,
        payloads: List[Any],
        ret_kappas: Any,
        ret_values: Any,
        ret_payloads: List[Any],
    ) -> None:
        self.version = version
        self.seen = seen
        self.lows = lows
        self.highs = highs
        self.kappas = kappas
        self.values = values
        self.payloads = payloads
        self.ret_kappas = ret_kappas
        self.ret_values = ret_values
        self.ret_payloads = ret_payloads


def export_shard_state(engine: Any) -> _ShardState:
    """Snapshot a shard engine's stab state for publication.

    Reuses the engine's :class:`~repro.accel.stab_cache.StabCache` flat
    snapshot when a cache is attached (the rebuild is shared with the
    worker's own query path), falling back to one interval-tree walk
    when ``query_cache=False``.  The retained table (kappa-ascending)
    carries the merge witnesses for the k-skyband path.
    """
    dim = int(engine.dim)
    cache = engine._stab_cache
    if cache is not None:
        lows_raw, highs_raw, records = cache.snapshot_arrays()
    else:
        lows_list: List[float] = []
        highs_list: List[float] = []
        records = []
        for interval in engine._intervals.intervals():
            lows_list.append(interval.low)
            highs_list.append(interval.high)
            records.append(interval.data)
        lows_raw, highs_raw = lows_list, highs_list
    elements = [record.element for record in records]
    retained = sorted(
        (record.element for _, record in engine._labels.items()),
        key=lambda element: element.kappa,
    )
    return _ShardState(
        version=int(engine.structure_version),
        seen=int(engine.seen_so_far),
        lows=np.asarray(lows_raw, dtype=np.float64),
        highs=np.asarray(highs_raw, dtype=np.float64),
        kappas=np.asarray([e.kappa for e in elements], dtype=np.int64),
        values=np.asarray(
            [e.values for e in elements], dtype=np.float64
        ).reshape(len(elements), dim),
        payloads=[e.payload for e in elements],
        ret_kappas=np.asarray([e.kappa for e in retained], dtype=np.int64),
        ret_values=np.asarray(
            [e.values for e in retained], dtype=np.float64
        ).reshape(len(retained), dim),
        ret_payloads=[e.payload for e in retained],
    )


def _payload_blob(payloads: List[Any], ret_payloads: List[Any]) -> bytes:
    """Pickle the payload tables; the all-``None`` common case collapses
    to a tiny sentinel so payload-free streams publish almost no pickle."""
    interval_part = None if all(p is None for p in payloads) else payloads
    retained_part = (
        None if all(p is None for p in ret_payloads) else ret_payloads
    )
    return pickle.dumps(
        (interval_part, retained_part), protocol=pickle.HIGHEST_PROTOCOL
    )


def encode_state(state: _ShardState) -> bytes:
    """Serialise a :class:`_ShardState` into one data-buffer payload."""
    n = len(state.payloads)
    r = len(state.ret_payloads)
    dim = state.values.shape[1] if n else state.ret_values.shape[1] if r else 1
    parts = [
        _DATA_HEADER.pack(n, r, dim),
        state.lows.tobytes(),
        state.highs.tobytes(),
        state.kappas.tobytes(),
        state.values.tobytes(),
        state.ret_kappas.tobytes(),
        state.ret_values.tobytes(),
        _payload_blob(state.payloads, state.ret_payloads),
    ]
    return b"".join(parts)


def decode_state(
    buf: bytes, version: int, seen: int
) -> "ReplicaSnapshot":
    """Parse one data-buffer payload back into a queryable snapshot.

    Raises on any malformed input (truncated buffer, bad pickle); the
    reader treats that exactly like a torn read.
    """
    n, r, dim = _DATA_HEADER.unpack_from(buf, 0)
    if n < 0 or r < 0 or dim < 1:
        raise ValueError(f"corrupt replica header: n={n} r={r} dim={dim}")
    offset = _DATA_HEADER.size
    need = offset + 8 * (3 * n + n * dim + r + r * dim)
    if len(buf) < need:
        raise ValueError(
            f"truncated replica payload: {len(buf)} bytes < {need}"
        )

    def take(count: int, dtype: Any) -> Any:
        nonlocal offset
        array = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        offset += count * 8
        return array

    lows = take(n, np.float64)
    highs = take(n, np.float64)
    kappas = take(n, np.int64)
    values = take(n * dim, np.float64).reshape(n, dim)
    ret_kappas = take(r, np.int64)
    ret_values = take(r * dim, np.float64).reshape(r, dim)
    payloads, ret_payloads = pickle.loads(buf[offset:])
    return ReplicaSnapshot(
        version=version,
        seen=seen,
        lows=lows,
        highs=highs,
        kappas=kappas,
        values=values,
        payloads=payloads,
        ret_kappas=ret_kappas,
        ret_values=ret_values,
        ret_payloads=ret_payloads,
    )


# ----------------------------------------------------------------------
# The decoded, queryable snapshot (router side)
# ----------------------------------------------------------------------


class ReplicaSnapshot:
    """A decoded shard replica: immutable, queryable, version-labelled.

    Answers exactly what the shard engine would have answered at stream
    position ``seen`` / interval-encoding version ``version``:
    :meth:`stab` is the per-shard n-of-N (or k-skyband) stabbing answer,
    :meth:`retained_suffix` the retained in-window witness suffix.  Both
    return fresh kappa-ascending lists of
    :class:`~repro.core.element.StreamElement`.
    """

    __slots__ = (
        "version",
        "seen",
        "_lows",
        "_highs",
        "_kappas",
        "_values",
        "_payloads",
        "_ret_kappas",
        "_ret_values",
        "_ret_payloads",
        "_bounds",
        "_memo",
        "_ret_elements",
    )

    def __init__(
        self,
        version: int,
        seen: int,
        lows: Any,
        highs: Any,
        kappas: Any,
        values: Any,
        payloads: Optional[List[Any]],
        ret_kappas: Any,
        ret_values: Any,
        ret_payloads: Optional[List[Any]],
    ) -> None:
        self.version = version
        self.seen = seen
        self._lows = lows
        self._highs = highs
        self._kappas = kappas
        self._values = values
        self._payloads = payloads
        self._ret_kappas = ret_kappas
        self._ret_values = ret_values
        self._ret_payloads = ret_payloads
        # Elementary-span boundaries for the stab memo, as in StabCache.
        self._bounds: List[float] = np.unique(
            np.concatenate((lows, highs))
        ).tolist()
        self._memo: Dict[int, Tuple[StreamElement, ...]] = {}
        self._ret_elements: Optional[List[StreamElement]] = None

    def __len__(self) -> int:
        return int(self._kappas.shape[0])

    def _element(self, index: int) -> StreamElement:
        payload = (
            None if self._payloads is None else self._payloads[index]
        )
        return StreamElement(
            self._values[index].tolist(), int(self._kappas[index]), payload
        )

    def stab(self, t: float) -> List[StreamElement]:
        """Elements whose interval satisfies ``low < t <= high``,
        kappa-ascending — this shard's answer to a global stab point,
        as of :attr:`seen`."""
        span = bisect_left(self._bounds, t)
        cached = self._memo.get(span)
        if cached is not None:
            return list(cached)
        idx = int(np.searchsorted(self._lows, t, side="left"))
        if idx == 0:
            hit: List[int] = []
        else:
            hit = np.flatnonzero(self._highs[:idx] >= t).tolist()
        hit.sort(key=lambda i: int(self._kappas[i]))
        out = [self._element(i) for i in hit]
        if len(self._memo) >= _MAX_MEMO:
            self._memo.clear()
        self._memo[span] = tuple(out)
        return list(out)

    def retained_suffix(self, stab: float) -> List[StreamElement]:
        """Retained elements with ``kappa >= stab``, kappa-ascending —
        the k-skyband merge witnesses, as of :attr:`seen`."""
        if self._ret_elements is None:
            self._ret_elements = [
                StreamElement(
                    self._ret_values[i].tolist(),
                    int(self._ret_kappas[i]),
                    None
                    if self._ret_payloads is None
                    else self._ret_payloads[i],
                )
                for i in range(int(self._ret_kappas.shape[0]))
            ]
        start = int(np.searchsorted(self._ret_kappas, stab, side="left"))
        return list(self._ret_elements[start:])

    def stats(self) -> Dict[str, int]:
        """Size counters, for ``replica_stats()`` introspection."""
        return {
            "version": self.version,
            "seen": self.seen,
            "intervals": len(self),
            "retained": int(self._ret_kappas.shape[0]),
            "memo_size": len(self._memo),
        }


# ----------------------------------------------------------------------
# Publisher (worker side)
# ----------------------------------------------------------------------


class ReplicaPublisher:
    """Owns a shard's control block and data buffers; workers call
    :meth:`publish` after maintenance.

    Single-writer by construction (each shard worker owns exactly one
    publisher); the seqlock exists for the *readers*.
    """

    __slots__ = (
        "prefix",
        "_control",
        "_slots",
        "_gens",
        "_caps",
        "_active",
        "_seq",
        "_published_version",
        "_published_seen",
        "publishes",
        "closed",
    )

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._control = _open_segment(
            _control_name(prefix), create=True, size=_CTRL_SIZE
        )
        self._slots: List[Optional[SharedMemory]] = [None, None]
        self._gens = [0, 0]
        self._caps = [0, 0]
        self._active = 1  # first publish fills slot 0
        self._seq = 0
        self._published_version = -1
        self._published_seen = -1
        self.publishes = 0
        self.closed = False
        self._write_header(used=[0, 0], version=-1, seen=0)

    def _write_header(
        self, used: List[int], version: int, seen: int
    ) -> None:
        """Seqlock flip: odd seq, rewrite fields, even seq."""
        buf = self._control.buf
        odd = self._seq + 1
        _SEQ.pack_into(buf, _SEQ_OFFSET, odd)
        _CTRL.pack_into(
            buf,
            0,
            _CTRL_MAGIC,
            odd,
            self._active,
            version,
            seen,
            self._gens[0],
            self._gens[1],
            used[0],
            used[1],
            self._caps[0],
            self._caps[1],
            self.publishes,
        )
        self._seq = odd + 1
        _SEQ.pack_into(buf, _SEQ_OFFSET, self._seq)

    def _ensure_slot(self, slot: int, need: int) -> SharedMemory:
        """Grow-by-replacement: a new segment under the next generation
        name (POSIX shared memory cannot resize in place)."""
        current = self._slots[slot]
        if current is not None and self._caps[slot] >= need:
            return current
        capacity = _MIN_CAPACITY
        while capacity < need:
            capacity *= 2
        gen = self._gens[slot] + 1
        previous_gen = self._gens[slot]
        replacement = _open_segment(
            _slot_name(self.prefix, slot, gen), create=True, size=capacity
        )
        # Take ownership of the new segment before anything that can
        # raise: if close/unlink of the old one fails, close() still
        # releases the replacement instead of leaking it.
        self._slots[slot] = replacement
        self._gens[slot] = gen
        self._caps[slot] = capacity
        if current is not None:
            current.close()
            _unlink_quietly(_slot_name(self.prefix, slot, previous_gen))
        return replacement

    def publish(self, engine: Any) -> bool:
        """Export ``engine``'s stab state and flip it live.

        No-ops (returning ``False``) when the engine's version *and*
        seen kappa match the last publication — republish-after-
        maintenance calls are free on quiescent shards.
        """
        if self.closed:
            raise ValueError("publisher is closed")
        version = int(engine.structure_version)
        seen = int(engine.seen_so_far)
        if (
            version == self._published_version
            and seen == self._published_seen
        ):
            return False
        payload = encode_state(export_shard_state(engine))
        slot = 1 - self._active
        segment = self._ensure_slot(slot, len(payload))
        segment.buf[: len(payload)] = payload
        self._active = slot
        used = [0, 0]
        used[slot] = len(payload)
        self.publishes += 1
        self._write_header(used=used, version=version, seen=seen)
        self._published_version = version
        self._published_seen = seen
        return True

    def close(self, unlink: bool = False) -> None:
        """Detach (and optionally unlink) every owned segment."""
        if self.closed:
            return
        self.closed = True
        names = [_slot_name(self.prefix, s, self._gens[s]) for s in (0, 1)]
        for segment in self._slots:
            if segment is not None:
                segment.close()
        self._slots = [None, None]
        self._control.close()
        if unlink:
            for name in names:
                _unlink_quietly(name)
            _unlink_quietly(_control_name(self.prefix))


# ----------------------------------------------------------------------
# Reader (router side)
# ----------------------------------------------------------------------


class _Header:
    """One decoded control block."""

    __slots__ = ("seq", "active", "version", "seen", "gens", "used", "caps",
                 "publishes")

    def __init__(self, fields: Tuple[Any, ...]) -> None:
        self.seq = int(fields[1])
        self.active = int(fields[2])
        self.version = int(fields[3])
        self.seen = int(fields[4])
        self.gens = (int(fields[5]), int(fields[6]))
        self.used = (int(fields[7]), int(fields[8]))
        self.caps = (int(fields[9]), int(fields[10]))
        self.publishes = int(fields[11])


class ReplicaReader:
    """Attaches to one shard's replica and serves consistent snapshots.

    :meth:`read` returns the latest :class:`ReplicaSnapshot`, a cached
    decode when the version has not moved, or ``None`` whenever a
    consistent snapshot cannot be produced *right now* (control block
    missing, nothing published yet, or a flip in progress) — the caller
    falls back to the command-queue path, never blocks.
    """

    __slots__ = (
        "prefix",
        "_control",
        "_attachments",
        "_cached",
        "reads",
        "cached_hits",
        "decodes",
        "torn",
        "unavailable",
        "reattaches",
    )

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._control: Optional[SharedMemory] = None
        # slot -> (generation, attachment)
        self._attachments: Dict[int, Tuple[int, SharedMemory]] = {}
        self._cached: Optional[ReplicaSnapshot] = None
        self.reads = 0
        self.cached_hits = 0
        self.decodes = 0
        self.torn = 0
        self.unavailable = 0
        self.reattaches = 0

    def _read_header(self) -> Optional[_Header]:
        if self._control is None:
            try:
                self._control = _open_segment(
                    _control_name(self.prefix), create=False
                )
            except (FileNotFoundError, OSError):
                return None
        try:
            fields = _CTRL.unpack_from(self._control.buf, 0)
        except (struct.error, ValueError):  # pragma: no cover
            return None
        if fields[0] != _CTRL_MAGIC:
            return None
        return _Header(fields)

    def header(self) -> Optional[_Header]:
        """The current control block, or ``None`` when unattachable
        (introspection only — no torn-read protection)."""
        return self._read_header()

    def _slot_segment(self, slot: int, gen: int) -> Optional[SharedMemory]:
        held = self._attachments.get(slot)
        if held is not None and held[0] == gen:
            return held[1]
        try:
            segment = _open_segment(
                _slot_name(self.prefix, slot, gen), create=False
            )
        except (FileNotFoundError, OSError):
            return None
        if held is not None:
            held[1].close()
            self.reattaches += 1
        self._attachments[slot] = (gen, segment)
        return segment

    def read(self) -> Optional[ReplicaSnapshot]:
        """The latest consistent snapshot, or ``None`` (see class doc)."""
        self.reads += 1
        for _ in range(_READ_RETRIES):
            header = self._read_header()
            if header is None:
                self.unavailable += 1
                return None
            if header.seq % 2:
                self.torn += 1
                continue
            if header.gens[header.active] == 0:
                self.unavailable += 1  # nothing published yet
                return None
            cached = self._cached
            if (
                cached is not None
                and cached.version == header.version
                and cached.seen == header.seen
            ):
                self.cached_hits += 1
                return cached
            segment = self._slot_segment(
                header.active, header.gens[header.active]
            )
            used = header.used[header.active]
            if segment is None or used > segment.size:
                # The writer replaced this generation under us.
                self.torn += 1
                continue
            data = bytes(segment.buf[:used])
            confirm = self._read_header()
            if confirm is None or confirm.seq != header.seq:
                self.torn += 1
                continue
            try:
                snapshot = decode_state(data, header.version, header.seen)
            except Exception:
                # A torn copy that slipped the seq check can only be
                # malformed bytes; reject it the same way.
                self.torn += 1
                continue
            self.decodes += 1
            self._cached = snapshot
            return snapshot
        return None

    def stats(self) -> Dict[str, Any]:
        """Lifetime counters plus the current header fields."""
        info: Dict[str, Any] = {
            "reads": self.reads,
            "cached_hits": self.cached_hits,
            "decodes": self.decodes,
            "torn": self.torn,
            "unavailable": self.unavailable,
            "reattaches": self.reattaches,
        }
        header = self._read_header()
        if header is not None:
            info.update(
                version=header.version,
                seen=header.seen,
                publishes=header.publishes,
                bytes=header.used[header.active],
            )
        return info

    def close(self) -> None:
        """Detach from every segment (never unlinks — the executor's
        cleanup owns that, so readers can come and go freely)."""
        for _, segment in self._attachments.values():
            segment.close()
        self._attachments.clear()
        if self._control is not None:
            self._control.close()
            self._control = None
        self._cached = None


def pending_elements(
    seen: int, m: int, shard: int, shards: int
) -> int:
    """How many elements routed to ``shard`` a replica at ``seen`` has
    not absorbed, given ``m`` global arrivals.

    Round-robin routing sends kappa ``k`` to shard ``(k - 1) % shards``,
    so this counts the kappas in ``(seen, m]`` congruent to
    ``shard + 1`` — exact staleness without any per-shard bookkeeping.
    """
    if m <= seen:
        return 0

    def routed_up_to(upto: int) -> int:
        if upto < shard + 1:
            return 0
        return (upto - shard - 1) // shards + 1

    return routed_up_to(m) - routed_up_to(seen)
