"""Per-shard engines over round-robin sub-streams (Theorem 1 applied).

A sharded router splits the stream round-robin: element ``kappa`` goes
to shard ``(kappa - 1) % S``.  Theorem 1 says non-redundancy transfers
to sub-streams — an element that is non-redundant in the full stream is
non-redundant in every sub-stream containing it — so each shard can run
the ordinary single-stream machinery over its sub-stream and the union
of the shards' answers is guaranteed to contain the global answer
(:mod:`repro.parallel.merge` prunes the rest exactly).

The trick that makes the stock engines reusable verbatim is the same
one :class:`~repro.core.timewindow.TimeWindowSkyline` plays with
timestamps: a shard engine labels its intervals with **global** kappas
instead of local positions.  Setting ``self._m`` to the arriving
element's global kappa before running the inherited maintenance makes
the inherited window-start arithmetic (``self._m - capacity + 1``)
compute the *global* window start, so expiry is exact at every shard
arrival; only the batched path's once-per-chunk threshold needs an
override, because the base class assumes the next ``count`` labels are
consecutive while a shard's labels advance in strides of ``S``.

Between two arrivals a shard lags the global clock, so it may retain
elements that have already left the global window ("stale" elements).
That is harmless by construction: every admissible global stab point
``t`` satisfies ``t >= M - N + 1 >`` stale kappa, and an interval's
high endpoint is its element's kappa — stale elements are never stabbed
and expire exactly on the shard's next arrival.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, BatchOutcome
from repro.core.nofn import NofNSkyline, _record_kappa
from repro.core.skyband import KSkybandEngine, _band_record_kappa
from repro.exceptions import DimensionMismatchError, ReproError
from repro.sanitize.sanitizer import SanitizeArg

_ROUTER_ONLY = (
    "shard engines consume router-labelled elements; "
    "use ingest()/ingest_many() instead of append()/append_many()"
)


class ShardNofNEngine(NofNSkyline):
    """One shard's n-of-N engine, labelled with global kappas.

    ``capacity`` is the *global* window size ``N`` and ``stride`` the
    shard count ``S``; elements arrive via :meth:`ingest` /
    :meth:`ingest_many` with their global kappas pre-assigned by the
    router.
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        stride: int,
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        super().__init__(
            dim,
            capacity,
            rtree_max_entries=rtree_max_entries,
            rtree_min_entries=rtree_min_entries,
            rtree_split=rtree_split,
            sanitize=sanitize,
            query_cache=query_cache,
            kernels=kernels,
            rtree_layout=rtree_layout,
            batch_chunk=batch_chunk,
        )
        self._stride = stride

    # -- router-fed ingestion ------------------------------------------

    def ingest(self, element: StreamElement) -> ArrivalOutcome:
        """Run one arrival for a router-labelled element (global kappa,
        strictly increasing per shard)."""
        if element.kappa <= self._m:
            raise ValueError(
                f"shard kappas must increase: {element.kappa} <= {self._m}"
            )
        if len(element.values) != self.dim:
            raise DimensionMismatchError(self.dim, len(element.values))
        self._m = element.kappa
        return self._arrive(element, self._assign_label(element))

    def ingest_many(self, elements: Sequence[StreamElement]) -> BatchOutcome:
        """Batched :meth:`ingest` through the inherited fast path."""
        elems = self._validate_sub_batch(elements)
        if not elems:
            return BatchOutcome(())
        return self._ingest_batch(elems, [self._assign_label(e) for e in elems])

    def _validate_sub_batch(
        self, elements: Sequence[StreamElement]
    ) -> List[StreamElement]:
        elems = list(elements)
        previous = self._m
        for element in elems:
            if element.kappa <= previous:
                raise ValueError(
                    f"shard kappas must increase: "
                    f"{element.kappa} <= {previous}"
                )
            if len(element.values) != self.dim:
                raise DimensionMismatchError(self.dim, len(element.values))
            previous = element.kappa
        return elems

    # -- label hooks ----------------------------------------------------

    def _final_threshold(self, last_label: float, count: int) -> float:
        """Window start at the chunk's last arrival.  The base class
        adds ``count`` to ``self._m`` (consecutive labels); a shard's
        labels stride by ``S``, but the last label is known exactly."""
        return last_label - self.capacity + 1

    # -- misuse guards --------------------------------------------------

    def append(
        self, values: Sequence[float], payload: Any = None
    ) -> ArrivalOutcome:
        raise ReproError(_ROUTER_ONLY)

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> BatchOutcome:
        raise ReproError(_ROUTER_ONLY)

    # -- fan-out query surface ------------------------------------------

    def stab_elements(self, stab: float) -> List[StreamElement]:
        """This shard's answer to a global stab point, kappa-ascending:
        the skyline of the shard's sub-stream suffix ``kappa >= stab``
        (Theorem 3 on the sub-stream)."""
        if self._m == 0:
            self.stats.record_query(0)
            return []
        if self._stab_cache is not None:
            records = self._stab_cache.stab(stab)  # pre-sorted by kappa
        else:
            records = self._intervals.stab(stab)
            records.sort(key=_record_kappa)
        self.stats.record_query(len(records))
        return [r.element for r in records]

    def retained_suffix(self, stab: float) -> List[StreamElement]:
        """Retained elements with ``kappa >= stab``, kappa-ascending
        (the shard's in-window witnesses for merge verification)."""
        return [
            record.element
            for _, record in self._labels.items()
            if record.element.kappa >= stab
        ]


class ShardKSkybandEngine(KSkybandEngine):
    """One shard's k-skyband engine, labelled with global kappas.

    Same construction as :class:`ShardNofNEngine`; the skyband interval
    encoding already uses raw kappas, so only the batch chunk size needs
    the stride: the skyband chunk loop has no pending-expiry path, and a
    chunk spanning fewer than ``capacity`` kappas guarantees no chunk
    member can expire before its in-chunk ``k``-th dominator arrives.
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        k: int,
        stride: int,
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        super().__init__(
            dim,
            capacity,
            k,
            rtree_max_entries=rtree_max_entries,
            rtree_min_entries=rtree_min_entries,
            rtree_split=rtree_split,
            sanitize=sanitize,
            query_cache=query_cache,
            kernels=kernels,
            rtree_layout=rtree_layout,
            batch_chunk=batch_chunk,
        )
        self._stride = stride

    # -- router-fed ingestion ------------------------------------------

    def ingest(self, element: StreamElement) -> None:
        """Run one arrival for a router-labelled element."""
        if element.kappa <= self._m:
            raise ValueError(
                f"shard kappas must increase: {element.kappa} <= {self._m}"
            )
        if len(element.values) != self.dim:
            raise DimensionMismatchError(self.dim, len(element.values))
        self._m = element.kappa
        self._arrive(element)

    def ingest_many(self, elements: Sequence[StreamElement]) -> None:
        """Batched :meth:`ingest` through the inherited fast path.

        Consecutive kappas must not gap by more than ``stride`` (the
        router's round-robin guarantees exactly ``stride``); the chunk
        bound below relies on it.
        """
        elems = list(elements)
        previous = self._m
        for element in elems:
            if element.kappa <= previous:
                raise ValueError(
                    f"shard kappas must increase: "
                    f"{element.kappa} <= {previous}"
                )
            if previous and element.kappa - previous > self._stride:
                raise ValueError(
                    f"shard kappa gap {element.kappa - previous} exceeds "
                    f"stride {self._stride}"
                )
            if len(element.values) != self.dim:
                raise DimensionMismatchError(self.dim, len(element.values))
            previous = element.kappa
        if elems:
            self._ingest_elements(elems)

    def _batch_chunk_size(self) -> int:
        """Largest chunk spanning at most ``capacity - 1`` kappas under
        stride-``S`` labels: ``(c - 1) * S <= capacity - 1``."""
        return max(
            1, min(self._batch_chunk, (self.capacity - 1) // self._stride + 1)
        )

    # -- misuse guards --------------------------------------------------

    def append(
        self, values: Sequence[float], payload: Any = None
    ) -> StreamElement:
        raise ReproError(_ROUTER_ONLY)

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[StreamElement]:
        raise ReproError(_ROUTER_ONLY)

    # -- fan-out query surface ------------------------------------------

    def stab_elements(self, stab: float) -> List[StreamElement]:
        """This shard's k-skyband answer to a global stab point
        (generalised Theorem 3 on the sub-stream), kappa-ascending."""
        if self._m == 0:
            self.stats.record_query(0)
            return []
        if self._stab_cache is not None:
            records = self._stab_cache.stab(stab)  # pre-sorted by kappa
        else:
            records = self._intervals.stab(stab)
            records.sort(key=_band_record_kappa)
        self.stats.record_query(len(records))
        return [r.element for r in records]

    def retained_suffix(self, stab: float) -> List[StreamElement]:
        """Retained elements with ``kappa >= stab``, kappa-ascending.

        These are the merge's dominance witnesses: within a shard, the
        ``k`` youngest in-window dominators of any element are always
        retained (pruning one would require ``k`` even younger in-shard
        dominators, a contradiction), so counting a candidate's
        dominators over the union of all shards' suffixes decides band
        membership exactly.
        """
        return [
            record.element
            for _, record in self._labels.items()
            if record.element.kappa >= stab
        ]


ShardEngine = Union[ShardNofNEngine, ShardKSkybandEngine]


def build_shard_engine(spec: Mapping[str, Any]) -> ShardEngine:
    """Construct a shard engine from a picklable spec dict.

    The spec travels over a process boundary for the ``process``
    backend, so it holds only plain values — the same dict drives the
    serial backend for exact behavioural parity.
    """
    kind = spec["kind"]
    common: Dict[str, Any] = {
        "rtree_max_entries": spec["rtree_max_entries"],
        "rtree_min_entries": spec["rtree_min_entries"],
        "rtree_split": spec["rtree_split"],
        # Older specs (pre-SoA snapshots) lack the layout key; "auto"
        # preserves their behaviour under the new default resolution.
        "rtree_layout": spec.get("rtree_layout", "auto"),
        "sanitize": spec["sanitize"],
        "query_cache": spec["query_cache"],
        "kernels": spec["kernels"],
        # Older specs lack the key; ``None`` resolves to the default.
        "batch_chunk": spec.get("batch_chunk"),
    }
    if kind == "skyband":
        return ShardKSkybandEngine(
            spec["dim"], spec["capacity"], spec["k"], spec["stride"], **common
        )
    if kind == "nofn":
        return ShardNofNEngine(
            spec["dim"], spec["capacity"], spec["stride"], **common
        )
    raise ValueError(f"unknown shard engine kind: {kind!r}")


def shard_introspection(engine: ShardEngine) -> Dict[str, Any]:
    """One shard's introspection bundle (uniform across engine kinds)."""
    return {
        "retained": len(engine),
        "seen": engine.seen_so_far,
        "structure_version": engine.structure_version,
        "cache": engine.cache_stats(),
        "stats": engine.stats.snapshot(),
    }


def shard_records(engine: ShardEngine) -> List[Dict[str, Any]]:
    """One shard's retained elements as snapshot rows, kappa-ascending.

    Restore replays these through :meth:`ingest`, re-deriving all graph
    annotations — which is what makes snapshots portable across shard
    counts.
    """
    return [
        {
            "kappa": record.element.kappa,
            "values": list(record.element.values),
            "payload": record.element.payload,
        }
        for _, record in engine._labels.items()
    ]
