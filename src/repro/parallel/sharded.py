"""Sharded routers: round-robin ingestion, fan-out/merge queries.

:class:`ShardedNofNSkyline` and :class:`ShardedKSkyband` preserve one
global kappa sequence — element ``kappa`` is its 1-based position in
the *full* stream — and route it to shard ``(kappa - 1) % S``, where it
is ingested by a per-shard engine labelled with global kappas
(:mod:`repro.parallel.shard_engines`).  Queries fan the stab point
``M - n + 1`` out to every shard (each answers from its own versioned
stab cache) and merge exactly (:mod:`repro.parallel.merge`).

Two executor backends (``backend=``):

``"serial"``
    Every shard engine lives in-process.  Deterministic reference; also
    the fastest option for small batches, since it pays no IPC.
``"process"``
    One worker process per shard, fed by per-shard command queues.
    Ingestion commands are fire-and-forget and batched through the
    engines' ``append_many`` fast path to amortize pickling; queries
    are the synchronisation points.  Worker failures surface as
    :class:`~repro.exceptions.ShardFailureError` (never a hang).

The routers return plain :class:`~repro.core.element.StreamElement`
sequences from ingestion (not per-arrival outcome streams): with
fire-and-forget workers the maintenance effects are not observable
synchronously, and pretending otherwise would make the two backends
behaviourally different.  Continuous queries therefore attach to
single-process engines only.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.accel.batch_prefilter import resolve_batch_chunk
from repro.core.element import StreamElement
from repro.core.stats import EngineStats
from repro.exceptions import DimensionMismatchError, InvalidWindowError
from repro.parallel.executors import ProcessExecutor, SerialExecutor
from repro.parallel.merge import merge_skyband, merge_skyline
from repro.parallel.replicas import ReplicaSnapshot, pending_elements
from repro.sanitize.sanitizer import InvariantSanitizer, SanitizeArg

ShardBackend = Union[SerialExecutor, ProcessExecutor]

BACKENDS = ("serial", "process")

#: The ``replicas=`` knob: ``"auto"`` enables the shared-memory read
#: path whenever the backend has a process boundary to short-circuit
#: (i.e. ``"process"``), ``"on"`` requires it, ``"off"`` disables it.
REPLICA_MODES = ("auto", "on", "off")


class _ShardedRouter:
    """Shared routing/introspection plumbing of the two sharded engines."""

    _kind = ""

    def __init__(
        self,
        dim: int,
        capacity: int,
        shards: int = 4,
        backend: str = "serial",
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        timeout: float = 120.0,
        replicas: str = "auto",
        replica_lag: Optional[int] = 0,
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise InvalidWindowError(f"capacity must be >= 1, got {capacity}")
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if replicas not in REPLICA_MODES:
            raise ValueError(
                f"replicas must be one of {REPLICA_MODES}, got {replicas!r}"
            )
        if replicas == "on" and backend != "process":
            raise ValueError(
                "replicas='on' requires the process backend; the serial "
                "backend has no process boundary to replicate across"
            )
        if replica_lag is not None and replica_lag < 0:
            raise ValueError(
                f"replica_lag must be >= 0 or None, got {replica_lag}"
            )
        self.dim = dim
        self.capacity = capacity
        self.shards = shards
        self.backend = backend
        self._m = 0
        self._sanitizer = InvariantSanitizer.coerce(sanitize)
        self._rtree_config = {
            "rtree_max_entries": rtree_max_entries,
            "rtree_min_entries": rtree_min_entries,
            "rtree_split": rtree_split,
            "rtree_layout": rtree_layout,
        }
        self._query_cache = query_cache
        self._kernel_policy = kernels
        self._batch_chunk = resolve_batch_chunk(batch_chunk)
        self.replica_mode = replicas
        self.replica_lag = replica_lag
        self._replicas_enabled = (
            backend == "process" and replicas != "off"
        )
        self._suppress_replicas = False
        self._replica_serves = 0
        self._replica_fallbacks = 0
        self._replica_stale = 0
        self._replica_unavailable = 0
        self.stats = EngineStats()
        specs = [self._shard_spec(index) for index in range(shards)]
        self._executor: ShardBackend = (
            SerialExecutor(specs)
            if backend == "serial"
            else ProcessExecutor(
                specs, timeout=timeout, replicas=self._replicas_enabled
            )
        )

    def _shard_spec(self, index: int) -> Dict[str, Any]:
        """Picklable construction recipe for shard ``index``.  Shards
        re-run their own sanitizer at the router's mode; the router
        additionally cross-checks the merge (``shard-merge``)."""
        return {
            "kind": self._kind,
            "dim": self.dim,
            "capacity": self.capacity,
            "stride": self.shards,
            "rtree_max_entries": self._rtree_config["rtree_max_entries"],
            "rtree_min_entries": self._rtree_config["rtree_min_entries"],
            "rtree_split": self._rtree_config["rtree_split"],
            "rtree_layout": self._rtree_config["rtree_layout"],
            "sanitize": self.sanitize_mode,
            "query_cache": self._query_cache,
            "kernels": self._kernel_policy,
            "batch_chunk": self._batch_chunk,
        }

    # -- ingestion ------------------------------------------------------

    def _route(self, kappa: int) -> int:
        return (kappa - 1) % self.shards

    def append(
        self, values: Sequence[float], payload: Any = None
    ) -> StreamElement:
        """Ingest one stream element; return it (globally labelled)."""
        element = StreamElement(values, self._m + 1, payload)
        if len(element.values) != self.dim:
            raise DimensionMismatchError(self.dim, len(element.values))
        self._executor.ingest(self._route(element.kappa), element)
        self._m += 1
        self.stats.arrivals += 1
        if self._sanitizer is not None:
            self._sanitizer.maybe_verify(self)
        return element

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[StreamElement]:
        """Ingest a batch; one ``ingest_many`` per shard (amortized IPC).

        Validation is all-or-nothing, as everywhere else: a bad point
        anywhere in the batch raises before any shard sees anything.
        """
        pts = list(points)
        if payloads is None:
            payloads = [None] * len(pts)
        elif len(payloads) != len(pts):
            raise ValueError(
                f"got {len(pts)} points but {len(payloads)} payloads"
            )
        elements: List[StreamElement] = []
        for offset, (values, payload) in enumerate(zip(pts, payloads)):
            element = StreamElement(values, self._m + offset + 1, payload)
            if len(element.values) != self.dim:
                raise DimensionMismatchError(self.dim, len(element.values))
            elements.append(element)
        per_shard: List[List[StreamElement]] = [
            [] for _ in range(self.shards)
        ]
        for element in elements:
            per_shard[self._route(element.kappa)].append(element)
        started = perf_counter()
        for shard, sub_batch in enumerate(per_shard):
            if sub_batch:
                self._executor.ingest_many(shard, sub_batch)
        self._m += len(elements)
        self.stats.arrivals += len(elements)
        self.stats.record_batch(
            size=len(elements), dropped=0, seconds=perf_counter() - started
        )
        if self._sanitizer is not None:
            self._sanitizer.maybe_verify(self)
        return elements

    # -- query plumbing -------------------------------------------------

    def _stab_point(self, n: int) -> Optional[int]:
        if not 1 <= n <= self.capacity:
            raise InvalidWindowError(
                f"n must be in [1, {self.capacity}], got {n}"
            )
        if self._m == 0:
            return None
        return max(1, self._m - n + 1)

    def _replica_snapshots(self) -> Optional[List[ReplicaSnapshot]]:
        """Consistent per-shard replica snapshots, or ``None`` when the
        command-queue path must be used instead.

        All-or-nothing: a single shard that is unavailable (nothing
        published, control block gone, flip in progress) or stale beyond
        ``replica_lag`` pending elements falls the whole query back to
        IPC — mixing replica answers with authoritative ones would break
        the merge's Theorem 1 containment argument, which needs every
        shard's answer to cover its own sub-stream suffix.

        ``replica_lag=0`` (the default) serves from replicas only when
        every shard has absorbed its entire routed prefix — replica
        answers are then bit-identical to the IPC path.  ``None`` means
        unbounded staleness: always serve when available (a true read
        replica, each answer exact at the version it claims).
        """
        if not self._replicas_enabled or self._suppress_replicas:
            return None
        readers = self._executor.replica_readers
        if readers is None:  # pragma: no cover - enabled implies readers
            return None
        snapshots: List[ReplicaSnapshot] = []
        for shard, reader in enumerate(readers):
            snapshot = reader.read()
            if snapshot is None:
                self._replica_unavailable += 1
                self._replica_fallbacks += 1
                return None
            if self.replica_lag is not None:
                pending = pending_elements(
                    snapshot.seen, self._m, shard, self.shards
                )
                if pending > self.replica_lag:
                    self._replica_stale += 1
                    self._replica_fallbacks += 1
                    return None
            snapshots.append(snapshot)
        self._replica_serves += 1
        return snapshots

    def _merged(self, stabs: Sequence[int]) -> List[List[StreamElement]]:
        """Fan the stab points out and merge, one fan-out round trip per
        shard regardless of ``len(stabs)``.  Overridden per engine."""
        raise NotImplementedError

    def query(self, n: int) -> List[StreamElement]:
        """The answer over the most recent ``n`` elements, sorted by
        ``kappa`` — exactly what the single-engine counterpart returns.

        Raises
        ------
        InvalidWindowError
            If ``n`` is not in ``[1, capacity]``.
        ShardFailureError
            If a shard worker died or timed out (process backend).
        """
        stab = self._stab_point(n)
        if stab is None:
            self.stats.record_query(0)
            return []
        merged = self._merged([stab])[0]
        self.stats.record_query(len(merged))
        return merged

    def query_all(self, ns: Sequence[int]) -> List[List[StreamElement]]:
        """Answer several query sizes with a single fan-out round per
        shard (one IPC round trip on the process backend)."""
        stabs = [self._stab_point(n) for n in ns]  # validates every n
        if not ns or self._m == 0:
            for _ in ns:
                self.stats.record_query(0)
            return [[] for _ in ns]
        answers = self._merged([s for s in stabs if s is not None])
        for answer in answers:
            self.stats.record_query(len(answer))
        return answers

    # -- introspection --------------------------------------------------

    @property
    def seen_so_far(self) -> int:
        """``M`` — number of elements ingested across all shards."""
        return self._m

    @property
    def sanitizer(self) -> Optional[InvariantSanitizer]:
        """The attached sanitizer, or ``None`` when checking is off."""
        return self._sanitizer

    @property
    def sanitize_mode(self) -> str:
        """The active sanitize mode (``"off"`` when none is attached)."""
        return "off" if self._sanitizer is None else self._sanitizer.mode

    @property
    def kernel_policy(self) -> str:
        """The ``kernels`` knob the shard engines were built with."""
        return self._kernel_policy

    @property
    def rtree_layout(self) -> str:
        """The ``rtree_layout`` knob the shard engines were built with
        (the requested policy; each shard resolves ``"auto"`` itself)."""
        return str(self._rtree_config["rtree_layout"])

    @property
    def batch_chunk(self) -> int:
        """The effective batched-ingest chunk size forwarded to every
        shard engine (the ``batch_chunk`` knob, or the library default
        when unset)."""
        return self._batch_chunk

    @property
    def structure_version(self) -> int:
        """Sum of the shards' interval-encoding versions — monotonic,
        bumps whenever any shard's query answer can change.  Requires a
        fan-out round trip on the process backend."""
        return sum(
            int(shard["structure_version"])
            for shard in self._executor.introspect_all()
        )

    @property
    def retained_size(self) -> int:
        """Total retained elements across shards (>= the single-engine
        count: each shard prunes only against its own sub-stream)."""
        return sum(
            int(shard["retained"]) for shard in self._executor.introspect_all()
        )

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard introspection bundles (retained size, seen count,
        structure version, cache counters, engine stats)."""
        bundles = self._executor.introspect_all()
        for index, bundle in enumerate(bundles):
            bundle["shard"] = index
        return bundles

    def drain(self) -> None:
        """Block until every shard has applied all prior fire-and-forget
        ingests (and, with replicas on, republished its snapshot).  A
        no-op on the serial backend; one ``ping`` round trip per shard
        on the process backend.

        Raises
        ------
        ShardFailureError
            If a shard worker died or timed out (process backend).
        """
        self._executor.barrier()

    def replica_stats(self) -> Optional[Dict[str, Any]]:
        """Zero-IPC read-path counters, or ``None`` when replicas are
        disabled (serial backend or ``replicas="off"``).

        ``serves``/``fallbacks`` count fan-out rounds answered from the
        shared-memory replicas vs routed through the command queues;
        ``stale``/``unavailable`` break the fallbacks down by cause.
        ``shards`` holds each reader's lifetime counters plus the
        shard's currently published header fields.
        """
        if not self._replicas_enabled:
            return None
        readers = self._executor.replica_readers
        per_shard = (
            [] if readers is None else [reader.stats() for reader in readers]
        )
        return {
            "enabled": True,
            "lag": self.replica_lag,
            "serves": self._replica_serves,
            "fallbacks": self._replica_fallbacks,
            "stale": self._replica_stale,
            "unavailable": self._replica_unavailable,
            "shards": per_shard,
        }

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Aggregated stab-cache counters across shards (``None`` when
        caching is disabled)."""
        if not self._query_cache:
            return None
        totals: Dict[str, int] = {}
        for bundle in self._executor.introspect_all():
            cache = bundle["cache"]
            if cache is None:
                return None
            for key, value in cache.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def retained_union(self, stab: float) -> List[StreamElement]:
        """Union of the shards' retained elements with
        ``kappa >= stab``, kappa-ascending (merge witnesses; also the
        sanitizer's oracle population)."""
        union = [
            element
            for suffix in self._executor.retained_all(stab)
            for element in suffix
        ]
        union.sort(key=lambda element: element.kappa)
        return union

    def __len__(self) -> int:
        return self.retained_size

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the executor (stops worker processes; never hangs)."""
        self._executor.close()

    def __enter__(self) -> "_ShardedRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- validation -----------------------------------------------------

    def check_invariants(self) -> None:
        """Verify every shard engine, then the shard-merge itself.

        Raises
        ------
        StructureCorruptionError
            On the first violated invariant (survives ``python -O``).
        """
        self._executor.check_all()
        from repro.sanitize.checks import verify_sharded

        verify_sharded(self)


class ShardedNofNSkyline(_ShardedRouter):
    """Sharded n-of-N skyline engine: exact answers, ``S``-way parallel
    maintenance.

    Parameters match :class:`~repro.core.nofn.NofNSkyline` plus:

    shards:
        Number of round-robin sub-streams ``S``.
    backend:
        ``"serial"`` (in-process reference) or ``"process"``
        (one worker per shard; see the module docstring).
    timeout:
        Process-backend reply deadline in seconds.
    replicas:
        Zero-IPC read path: ``"auto"`` (on whenever the backend is
        ``"process"``), ``"on"`` (require it; rejects ``"serial"``) or
        ``"off"``.  See :meth:`_ShardedRouter._replica_snapshots`.
    replica_lag:
        Maximum pending (routed but possibly unabsorbed) elements a
        shard replica may trail by and still serve a query.  ``0``
        (default) serves only fully caught-up replicas — answers are
        bit-identical to the command-queue path; ``None`` means
        unbounded (always serve when available, exact at the version
        the replica claims).
    """

    _kind = "nofn"

    def _merged(self, stabs: Sequence[int]) -> List[List[StreamElement]]:
        snapshots = self._replica_snapshots()
        if snapshots is not None:
            per_shard: List[List[List[StreamElement]]] = [
                [snapshot.stab(stab) for stab in stabs]
                for snapshot in snapshots
            ]
        else:
            per_shard = self._executor.stabs_all(stabs)
        return [
            merge_skyline([answers[i] for answers in per_shard])
            for i in range(len(stabs))
        ]

    def skyline(self) -> List[StreamElement]:
        """Skyline of the whole window (``n = N``)."""
        return self.query(self.capacity)


class ShardedKSkyband(_ShardedRouter):
    """Sharded n-of-N k-skyband engine (``k = 1`` is the skyline).

    Parameters match :class:`~repro.core.skyband.KSkybandEngine` plus
    ``shards`` / ``backend`` / ``timeout`` as on
    :class:`ShardedNofNSkyline`.
    """

    _kind = "skyband"

    def __init__(
        self,
        dim: int,
        capacity: int,
        k: int,
        shards: int = 4,
        backend: str = "serial",
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        timeout: float = 120.0,
        replicas: str = "auto",
        replica_lag: Optional[int] = 0,
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        super().__init__(
            dim,
            capacity,
            shards=shards,
            backend=backend,
            rtree_max_entries=rtree_max_entries,
            rtree_min_entries=rtree_min_entries,
            rtree_split=rtree_split,
            sanitize=sanitize,
            query_cache=query_cache,
            kernels=kernels,
            timeout=timeout,
            replicas=replicas,
            replica_lag=replica_lag,
            rtree_layout=rtree_layout,
            batch_chunk=batch_chunk,
        )

    def _shard_spec(self, index: int) -> Dict[str, Any]:
        spec = super()._shard_spec(index)
        spec["k"] = self.k
        return spec

    def _merged(self, stabs: Sequence[int]) -> List[List[StreamElement]]:
        witness_stab = min(stabs)
        snapshots = self._replica_snapshots()
        if snapshots is not None:
            replies: List[Any] = [
                (
                    [snapshot.stab(stab) for stab in stabs],
                    snapshot.retained_suffix(witness_stab),
                )
                for snapshot in snapshots
            ]
        else:
            replies = self._executor.band_all(stabs, witness_stab)
        witnesses = [
            element for _, suffix in replies for element in suffix
        ]
        merged: List[List[StreamElement]] = []
        for i, stab in enumerate(stabs):
            candidates = [answers[i] for answers, _ in replies]
            scoped = (
                witnesses
                if stab == witness_stab
                else [w for w in witnesses if w.kappa >= stab]
            )
            merged.append(merge_skyband(candidates, scoped, self.k))
        return merged

    def skyband(self) -> List[StreamElement]:
        """The k-skyband of the whole window (``n = N``)."""
        return self.query(self.capacity)
