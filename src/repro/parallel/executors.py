"""Shard executor backends: in-process serial and multiprocessing.

Both backends expose the same fan-out surface to the routers in
:mod:`repro.parallel.sharded`; the serial one runs every shard engine
in-process (the deterministic reference, zero IPC), the process one
runs each engine in its own worker fed by a per-shard command queue.

The process protocol is deliberately boring: commands are plain tuples,
ingestion commands are fire-and-forget (per-shard FIFO ordering makes a
later query observe every earlier arrival), and only query/introspection
commands produce replies.  Crash safety: a worker wraps its loop in a
catch-all that ships the traceback back as an ``("error", ...)`` reply
and exits; the receiving side polls with a timeout and checks worker
liveness, so a dead or wedged shard surfaces as a structured
:class:`~repro.exceptions.ShardFailureError` instead of a hang on a
queue join.  An error emitted by a fire-and-forget ingest is the next
reply the router reads, so it is attributed on the following query.
"""

from __future__ import annotations

import traceback
from multiprocessing import get_context
from queue import Empty
from time import monotonic
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from repro.core.element import StreamElement
from repro.exceptions import ShardFailureError
from repro.parallel.shard_engines import (
    ShardEngine,
    build_shard_engine,
    shard_introspection,
    shard_records,
)

if TYPE_CHECKING:
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MPQueue

BandReply = Tuple[List[List[StreamElement]], List[StreamElement]]


class SerialExecutor:
    """All shard engines in-process; the deterministic reference."""

    backend = "serial"

    def __init__(self, specs: Sequence[Dict[str, Any]]) -> None:
        self.engines: List[ShardEngine] = [
            build_shard_engine(spec) for spec in specs
        ]

    def ingest(self, shard: int, element: StreamElement) -> None:
        self.engines[shard].ingest(element)

    def ingest_many(
        self, shard: int, elements: Sequence[StreamElement]
    ) -> None:
        self.engines[shard].ingest_many(elements)

    def stabs_all(
        self, stabs: Sequence[float]
    ) -> List[List[List[StreamElement]]]:
        return [
            [engine.stab_elements(stab) for stab in stabs]
            for engine in self.engines
        ]

    def band_all(
        self, stabs: Sequence[float], witness_stab: float
    ) -> List[BandReply]:
        return [
            (
                [engine.stab_elements(stab) for stab in stabs],
                engine.retained_suffix(witness_stab),
            )
            for engine in self.engines
        ]

    def retained_all(self, stab: float) -> List[List[StreamElement]]:
        return [engine.retained_suffix(stab) for engine in self.engines]

    def introspect_all(self) -> List[Dict[str, Any]]:
        return [shard_introspection(engine) for engine in self.engines]

    def records_all(self) -> List[List[Dict[str, Any]]]:
        return [shard_records(engine) for engine in self.engines]

    def check_all(self) -> None:
        for engine in self.engines:
            engine.check_invariants()

    def close(self) -> None:
        """Nothing to release; kept for backend symmetry."""


def _shard_worker(
    spec: Dict[str, Any],
    commands: "MPQueue[Tuple[Any, ...]]",
    results: "MPQueue[Tuple[str, Any]]",
) -> None:
    """Worker loop: build the shard engine, serve commands until
    ``stop`` or the first failure (whose traceback is shipped back)."""
    try:
        engine = build_shard_engine(spec)
    except Exception:
        results.put(("error", traceback.format_exc()))
        return
    while True:
        command = commands.get()
        op = command[0]
        try:
            if op == "stop":
                results.put(("ok", None))
                return
            if op == "ingest":
                engine.ingest(command[1])
            elif op == "ingest_many":
                engine.ingest_many(command[1])
            elif op == "stabs":
                results.put(
                    ("ok", [engine.stab_elements(s) for s in command[1]])
                )
            elif op == "band":
                answers = [engine.stab_elements(s) for s in command[1]]
                results.put(
                    ("ok", (answers, engine.retained_suffix(command[2])))
                )
            elif op == "retained":
                results.put(("ok", engine.retained_suffix(command[1])))
            elif op == "introspect":
                results.put(("ok", shard_introspection(engine)))
            elif op == "records":
                results.put(("ok", shard_records(engine)))
            elif op == "check":
                engine.check_invariants()
                results.put(("ok", None))
            else:
                raise ValueError(f"unknown shard command: {op!r}")
        except Exception:
            results.put(("error", traceback.format_exc()))
            return


class ProcessExecutor:
    """One worker process per shard, fed by a per-shard command queue.

    ``timeout`` bounds how long a reply may take once requested; it is
    generous because a reply is only awaited after the shard's pending
    ingest backlog (FIFO), which a large ``append_many`` can make long.
    """

    backend = "process"

    def __init__(
        self, specs: Sequence[Dict[str, Any]], timeout: float = 120.0
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        context = get_context()
        self._timeout = timeout
        self._commands: List["MPQueue[Tuple[Any, ...]]"] = []
        self._results: List["MPQueue[Tuple[str, Any]]"] = []
        self._processes: List["BaseProcess"] = []
        for spec in specs:
            command_queue: "MPQueue[Tuple[Any, ...]]" = context.Queue()
            result_queue: "MPQueue[Tuple[str, Any]]" = context.Queue()
            process = context.Process(
                target=_shard_worker,
                args=(dict(spec), command_queue, result_queue),
                daemon=True,
            )
            process.start()
            self._commands.append(command_queue)
            self._results.append(result_queue)
            self._processes.append(process)

    # -- plumbing -------------------------------------------------------

    def _send(self, shard: int, command: Tuple[Any, ...]) -> None:
        self._commands[shard].put(command)

    def _recv(self, shard: int) -> Any:
        deadline = monotonic() + self._timeout
        while True:
            try:
                status, payload = self._results[shard].get(timeout=0.25)
                break
            except Empty:
                if not self._processes[shard].is_alive():
                    raise ShardFailureError(
                        shard,
                        "worker process died without reporting an error",
                    ) from None
                if monotonic() >= deadline:
                    raise ShardFailureError(
                        shard, f"no reply within {self._timeout:.0f}s"
                    ) from None
        if status == "error":
            raise ShardFailureError(shard, f"worker raised:\n{payload}")
        return payload

    def _roundtrip_all(self, command: Tuple[Any, ...]) -> List[Any]:
        for shard in range(len(self._processes)):
            self._send(shard, command)
        return [self._recv(shard) for shard in range(len(self._processes))]

    # -- fan-out surface ------------------------------------------------

    def ingest(self, shard: int, element: StreamElement) -> None:
        self._send(shard, ("ingest", element))

    def ingest_many(
        self, shard: int, elements: Sequence[StreamElement]
    ) -> None:
        self._send(shard, ("ingest_many", list(elements)))

    def stabs_all(
        self, stabs: Sequence[float]
    ) -> List[List[List[StreamElement]]]:
        return self._roundtrip_all(("stabs", list(stabs)))

    def band_all(
        self, stabs: Sequence[float], witness_stab: float
    ) -> List[BandReply]:
        return self._roundtrip_all(("band", list(stabs), witness_stab))

    def retained_all(self, stab: float) -> List[List[StreamElement]]:
        return self._roundtrip_all(("retained", stab))

    def introspect_all(self) -> List[Dict[str, Any]]:
        return self._roundtrip_all(("introspect",))

    def records_all(self) -> List[List[Dict[str, Any]]]:
        return self._roundtrip_all(("records",))

    def check_all(self) -> None:
        self._roundtrip_all(("check",))

    def close(self) -> None:
        """Stop the workers without ever blocking indefinitely."""
        for shard, process in enumerate(self._processes):
            if process.is_alive():
                try:
                    self._commands[shard].put(("stop",))
                except ValueError:  # queue already closed
                    pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for command_queue in self._commands:
            command_queue.close()
        for result_queue in self._results:
            result_queue.cancel_join_thread()
            result_queue.close()
