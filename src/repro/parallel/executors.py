"""Shard executor backends: in-process serial and multiprocessing.

Both backends expose the same fan-out surface to the routers in
:mod:`repro.parallel.sharded`; the serial one runs every shard engine
in-process (the deterministic reference, zero IPC), the process one
runs each engine in its own worker fed by a per-shard command queue.

The process protocol is deliberately boring: commands are plain tuples,
ingestion commands are fire-and-forget (per-shard FIFO ordering makes a
later query observe every earlier arrival), and only query/introspection
commands produce replies.  Crash safety: a worker wraps its loop in a
catch-all that ships the traceback back as an ``("error", ...)`` reply
and exits; the receiving side polls with a timeout and checks worker
liveness, so a dead or wedged shard surfaces as a structured
:class:`~repro.exceptions.ShardFailureError` instead of a hang on a
queue join.  An error emitted by a fire-and-forget ingest is the next
reply the router reads, so it is attributed on the following query.
"""

from __future__ import annotations

import atexit
import os
import traceback
from functools import partial
from multiprocessing import get_context
from queue import Empty
from time import monotonic
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)
from uuid import uuid4

from repro.core.element import StreamElement
from repro.exceptions import ShardFailureError
from repro.parallel.replicas import (
    ReplicaPublisher,
    ReplicaReader,
    cleanup_replica_segments,
    replica_prefixes,
)
from repro.parallel.shard_engines import (
    ShardEngine,
    build_shard_engine,
    shard_introspection,
    shard_records,
)

if TYPE_CHECKING:
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MPQueue

BandReply = Tuple[List[List[StreamElement]], List[StreamElement]]

#: Commands whose replies reflect engine state — the worker republishes
#: its replica first, so a received reply *guarantees* the shard's
#: replica is current as of that reply (the routers rely on this to
#: serve the next query with zero IPC).
_PUBLISH_BEFORE = frozenset(
    {
        "stabs",
        "band",
        "retained",
        "introspect",
        "records",
        "check",
        "ping",
        "replica_check",
    }
)


class SerialExecutor:
    """All shard engines in-process; the deterministic reference."""

    backend = "serial"

    #: Serial shards have no replicas (there is no process boundary to
    #: cross); the attribute exists so routers can probe either backend.
    replica_readers: Optional[List[ReplicaReader]] = None

    def __init__(self, specs: Sequence[Dict[str, Any]]) -> None:
        self.engines: List[ShardEngine] = [
            build_shard_engine(spec) for spec in specs
        ]

    def barrier(self) -> None:
        """No-op: in-process ingestion is already synchronous."""

    def ingest(self, shard: int, element: StreamElement) -> None:
        self.engines[shard].ingest(element)

    def ingest_many(
        self, shard: int, elements: Sequence[StreamElement]
    ) -> None:
        self.engines[shard].ingest_many(elements)

    def stabs_all(
        self, stabs: Sequence[float]
    ) -> List[List[List[StreamElement]]]:
        return [
            [engine.stab_elements(stab) for stab in stabs]
            for engine in self.engines
        ]

    def band_all(
        self, stabs: Sequence[float], witness_stab: float
    ) -> List[BandReply]:
        return [
            (
                [engine.stab_elements(stab) for stab in stabs],
                engine.retained_suffix(witness_stab),
            )
            for engine in self.engines
        ]

    def retained_all(self, stab: float) -> List[List[StreamElement]]:
        return [engine.retained_suffix(stab) for engine in self.engines]

    def introspect_all(self) -> List[Dict[str, Any]]:
        return [shard_introspection(engine) for engine in self.engines]

    def records_all(self) -> List[List[Dict[str, Any]]]:
        return [shard_records(engine) for engine in self.engines]

    def check_all(self) -> None:
        for engine in self.engines:
            engine.check_invariants()

    def close(self) -> None:
        """Nothing to release; kept for backend symmetry."""


def _shard_worker(
    spec: Dict[str, Any],
    commands: "MPQueue[Tuple[Any, ...]]",
    results: "MPQueue[Tuple[str, Any]]",
    replica_prefix: Optional[str] = None,
) -> None:
    """Worker loop: build the shard engine, serve commands until
    ``stop`` or the first failure (whose traceback is shipped back).

    With a ``replica_prefix`` the worker owns a
    :class:`~repro.parallel.replicas.ReplicaPublisher` and republishes
    its stab snapshot (a) whenever the command queue runs dry — so an
    idle shard converges to a current replica without any request — and
    (b) before answering any state-reflecting command, so every reply
    certifies the replica as current (see ``_PUBLISH_BEFORE``).  The
    publish is a version-checked no-op on a quiescent engine, which
    keeps per-element backlog floods from paying O(n) republishes: a
    burst of queued ingests publishes once, when the queue drains.
    """
    try:
        engine = build_shard_engine(spec)
        publisher = (
            None if replica_prefix is None else ReplicaPublisher(replica_prefix)
        )
        if publisher is not None:
            publisher.publish(engine)
    except Exception:
        results.put(("error", traceback.format_exc()))
        return
    while True:
        try:
            command = commands.get_nowait()
        except Empty:
            if publisher is not None:
                try:
                    publisher.publish(engine)
                except Exception:
                    results.put(("error", traceback.format_exc()))
                    return
            command = commands.get()
        op = command[0]
        try:
            if publisher is not None and op in _PUBLISH_BEFORE:
                publisher.publish(engine)
            if op == "stop":
                if publisher is not None:
                    # Detach only: the executor owns unlinking, so the
                    # router can still read (and then clean up) the
                    # final snapshot after a clean shutdown.
                    publisher.close()
                results.put(("ok", None))
                return
            if op == "ingest":
                engine.ingest(command[1])
            elif op == "ingest_many":
                engine.ingest_many(command[1])
            elif op == "stabs":
                results.put(
                    ("ok", [engine.stab_elements(s) for s in command[1]])
                )
            elif op == "band":
                answers = [engine.stab_elements(s) for s in command[1]]
                results.put(
                    ("ok", (answers, engine.retained_suffix(command[2])))
                )
            elif op == "retained":
                results.put(("ok", engine.retained_suffix(command[1])))
            elif op == "introspect":
                results.put(("ok", shard_introspection(engine)))
            elif op == "records":
                results.put(("ok", shard_records(engine)))
            elif op == "check":
                engine.check_invariants()
                results.put(("ok", None))
            elif op == "ping":
                results.put(("ok", None))
            elif op == "replica_check":
                reply = {
                    "version": engine.structure_version,
                    "seen": engine.seen_so_far,
                    "answers": [engine.stab_elements(s) for s in command[1]],
                    "retained": engine.retained_suffix(command[2]),
                }
                results.put(("ok", reply))
            else:
                raise ValueError(f"unknown shard command: {op!r}")
        except Exception:
            results.put(("error", traceback.format_exc()))
            return


class ProcessExecutor:
    """One worker process per shard, fed by a per-shard command queue.

    ``timeout`` bounds how long a reply may take once requested; it is
    generous because a reply is only awaited after the shard's pending
    ingest backlog (FIFO), which a large ``append_many`` can make long.

    With ``replicas=True`` each worker additionally publishes its stab
    snapshot into shared memory (:mod:`repro.parallel.replicas`) and
    :attr:`replica_readers` holds one attached reader per shard — the
    routers' zero-IPC read path.  The executor owns segment lifetime:
    every segment is unlinked in :meth:`close` and, as a backstop,
    from an ``atexit`` hook — the cleanup derives segment names from
    the on-disk control blocks, so it works even after a worker was
    killed outright.
    """

    backend = "process"

    def __init__(
        self,
        specs: Sequence[Dict[str, Any]],
        timeout: float = 120.0,
        replicas: bool = False,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        context = get_context()
        self._timeout = timeout
        self._commands: List["MPQueue[Tuple[Any, ...]]"] = []
        self._results: List["MPQueue[Tuple[str, Any]]"] = []
        self._processes: List["BaseProcess"] = []
        self._cleanup: Optional[Callable[[], None]] = None
        self.replica_readers: Optional[List[ReplicaReader]] = None
        prefixes: List[Optional[str]] = [None] * len(specs)
        if replicas:
            token = f"{os.getpid():x}{uuid4().hex[:6]}"
            owned = replica_prefixes(token, len(specs))
            prefixes = list(owned)
            # Registered before any worker starts: from here on the
            # segments cannot outlive this process even on a hard exit.
            self._cleanup = partial(cleanup_replica_segments, owned)
            atexit.register(self._cleanup)
            self.replica_readers = [ReplicaReader(p) for p in owned]
        for spec, prefix in zip(specs, prefixes):
            command_queue: "MPQueue[Tuple[Any, ...]]" = context.Queue()
            result_queue: "MPQueue[Tuple[str, Any]]" = context.Queue()
            process = context.Process(
                target=_shard_worker,
                args=(dict(spec), command_queue, result_queue, prefix),
                daemon=True,
            )
            process.start()
            self._commands.append(command_queue)
            self._results.append(result_queue)
            self._processes.append(process)

    # -- plumbing -------------------------------------------------------

    def _send(self, shard: int, command: Tuple[Any, ...]) -> None:
        self._commands[shard].put(command)

    def _recv(self, shard: int) -> Any:
        deadline = monotonic() + self._timeout
        while True:
            try:
                status, payload = self._results[shard].get(timeout=0.25)
                break
            except Empty:
                if not self._processes[shard].is_alive():
                    raise ShardFailureError(
                        shard,
                        "worker process died without reporting an error",
                    ) from None
                if monotonic() >= deadline:
                    raise ShardFailureError(
                        shard, f"no reply within {self._timeout:.0f}s"
                    ) from None
        if status == "error":
            raise ShardFailureError(shard, f"worker raised:\n{payload}")
        return payload

    def _roundtrip_all(self, command: Tuple[Any, ...]) -> List[Any]:
        for shard in range(len(self._processes)):
            self._send(shard, command)
        return [self._recv(shard) for shard in range(len(self._processes))]

    # -- fan-out surface ------------------------------------------------

    def ingest(self, shard: int, element: StreamElement) -> None:
        self._send(shard, ("ingest", element))

    def ingest_many(
        self, shard: int, elements: Sequence[StreamElement]
    ) -> None:
        self._send(shard, ("ingest_many", list(elements)))

    def stabs_all(
        self, stabs: Sequence[float]
    ) -> List[List[List[StreamElement]]]:
        return self._roundtrip_all(("stabs", list(stabs)))

    def band_all(
        self, stabs: Sequence[float], witness_stab: float
    ) -> List[BandReply]:
        return self._roundtrip_all(("band", list(stabs), witness_stab))

    def retained_all(self, stab: float) -> List[List[StreamElement]]:
        return self._roundtrip_all(("retained", stab))

    def introspect_all(self) -> List[Dict[str, Any]]:
        return self._roundtrip_all(("introspect",))

    def records_all(self) -> List[List[Dict[str, Any]]]:
        return self._roundtrip_all(("records",))

    def check_all(self) -> None:
        self._roundtrip_all(("check",))

    def barrier(self) -> None:
        """Round-trip a no-op through every shard: on return, every
        earlier fire-and-forget ingest has been applied (and, with
        replicas on, republished)."""
        self._roundtrip_all(("ping",))

    def replica_check_all(
        self, stabs: Sequence[float], witness_stab: float
    ) -> List[Dict[str, Any]]:
        """Authoritative per-shard answers for the sanitizer's
        ``shard-replica`` cross-check; each worker republishes first,
        so its reply and its replica describe the same version."""
        return self._roundtrip_all(("replica_check", list(stabs), witness_stab))

    def close(self) -> None:
        """Stop the workers without ever blocking indefinitely."""
        for shard, process in enumerate(self._processes):
            if process.is_alive():
                try:
                    self._commands[shard].put(("stop",))
                except ValueError:  # queue already closed
                    pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for command_queue in self._commands:
            command_queue.close()
        for result_queue in self._results:
            result_queue.cancel_join_thread()
            result_queue.close()
        if self.replica_readers is not None:
            for reader in self.replica_readers:
                reader.close()
            self.replica_readers = None
        if self._cleanup is not None:
            self._cleanup()
            atexit.unregister(self._cleanup)
            self._cleanup = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # getattr: __init__ may have raised before _cleanup existed.
        cleanup = getattr(self, "_cleanup", None)
        if cleanup is not None:
            self._cleanup = None
            try:
                atexit.unregister(cleanup)
            except Exception:
                pass
            cleanup()
