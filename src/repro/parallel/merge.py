"""Exact merge of per-shard stabbing answers.

**Skyline (n-of-N) merge.**  Candidates are the union of the shards'
stab answers at the global stab point ``t = M - n + 1``.  By Theorem 1
every element of the global answer appears among the candidates: if
nothing in the window beats ``e``, then nothing in ``e``'s sub-stream
suffix beats it either, so its own shard reports it.  Conversely every
*beaten* candidate is beaten (transitively) by some global answer
element — which is itself a candidate — so filtering the candidate pool
down to its own skyline removes exactly the non-answers.  The filter is
the library-wide tie rule (DESIGN.md §7): of exactly equal value
vectors only the youngest copy survives, then strict Pareto dominance
(vectorised via :func:`repro.accel.numpy_skyline.pareto_mask`) prunes
the rest.

**k-skyband merge.**  Candidates alone are not enough: a candidate
with fewer than ``k`` dominators in *every* sub-stream may still have
``>= k`` dominators globally.  The witnesses are the union of the
shards' retained in-window suffixes: within one shard, the ``k``
youngest in-window dominators of any point are always retained
(pruning one would require ``k`` younger in-shard dominators of it —
all of which also dominate the point and are younger, a contradiction
with "youngest").  Hence if a candidate has ``>= k`` in-window
dominators globally, at least ``k`` survive into the witness union
(either one shard contributes ``k``, or every shard's full count does),
and if it has fewer than ``k``, the witness count can only be smaller
still — the ``< k`` test over the union decides membership exactly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.accel.numpy_skyline import pareto_mask
from repro.core.element import StreamElement


def _by_kappa(element: StreamElement) -> int:
    return element.kappa


def merge_skyline(
    per_shard: Sequence[Sequence[StreamElement]],
) -> List[StreamElement]:
    """The exact global skyline from per-shard stab answers,
    kappa-ascending."""
    youngest: Dict[Tuple[float, ...], StreamElement] = {}
    for answers in per_shard:
        for element in answers:
            current = youngest.get(element.values)
            if current is None or element.kappa > current.kappa:
                youngest[element.values] = element
    if not youngest:
        return []
    pool = list(youngest.values())
    mask = pareto_mask([element.values for element in pool])
    merged = [element for element, keep in zip(pool, mask) if keep]
    merged.sort(key=_by_kappa)
    return merged


def merge_skyband(
    per_shard: Sequence[Sequence[StreamElement]],
    witnesses: Sequence[StreamElement],
    k: int,
) -> List[StreamElement]:
    """The exact global k-skyband from per-shard stab answers and the
    union of the shards' retained in-window elements, kappa-ascending.

    A witness ``w`` counts against candidate ``c`` under the library
    tie rule: ``w`` weakly dominates ``c`` and is strictly dominating
    or younger (``c`` itself never counts — equal values, same kappa).
    """
    candidates = [element for answers in per_shard for element in answers]
    if not candidates:
        return []
    if not witnesses:
        # Candidates are retained and in-window, so they are their own
        # witnesses; an empty union can only mean no dominators at all.
        return sorted(candidates, key=_by_kappa)
    witness_values = np.asarray(
        [w.values for w in witnesses], dtype=np.float64
    )
    witness_kappas = np.asarray([w.kappa for w in witnesses], dtype=np.int64)
    merged: List[StreamElement] = []
    for candidate in candidates:
        row = np.asarray(candidate.values, dtype=np.float64)
        weak = np.all(witness_values <= row, axis=1)
        strict = np.any(witness_values < row, axis=1)
        beats = weak & (strict | (witness_kappas > candidate.kappa))
        if int(np.count_nonzero(beats)) < k:
            merged.append(candidate)
    merged.sort(key=_by_kappa)
    return merged
