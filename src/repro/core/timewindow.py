"""Time-based sliding-window skylines (paper section 6 remark).

    "Note that if we replace the element position labels by element
    arriving time then our techniques can be immediately applied to the
    most recent elements specified by a time period."

:class:`TimeWindowSkyline` does exactly that substitution: it reuses
the whole n-of-N machinery of :class:`~repro.core.nofn.NofNSkyline`
with **timestamps** as interval labels.  The window is the trailing
``horizon`` time units; :meth:`query_last` answers "skyline of the
last ``tau`` time units" for any ``tau <= horizon`` as a stabbing query
with stab point ``now - tau``.

Timestamps must be strictly increasing and positive (the encoding
reserves label ``0`` for dominance-graph roots).  Unlike the count
window, several elements can expire on a single arrival (a quiet spell
followed by a burst); the expiry loop handles that naturally.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, BatchOutcome
from repro.core.nofn import NofNSkyline
from repro.exceptions import InvalidWindowError
from repro.sanitize.sanitizer import SanitizeArg


class TimeWindowSkyline(NofNSkyline):
    """Skyline over the most recent ``horizon`` time units of a stream.

    Parameters
    ----------
    dim:
        Dimensionality of the stream's value vectors.
    horizon:
        Window length in time units; elements older than
        ``now - horizon`` are expired.  Queries may use any trailing
        period ``tau <= horizon``.
    rtree_max_entries / rtree_min_entries / rtree_split:
        Tuning of the internal R-tree, forwarded verbatim to
        :class:`~repro.core.nofn.NofNSkyline`.
    sanitize:
        Runtime invariant checking, forwarded verbatim (see
        :mod:`repro.sanitize`).
    query_cache / kernels / rtree_layout / batch_chunk:
        Query and batched-ingest knobs, forwarded verbatim (see
        :class:`~repro.core.nofn.NofNSkyline`); :meth:`query_last`
        answers through the versioned stab cache when enabled.
    """

    def __init__(
        self,
        dim: int,
        horizon: float,
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if horizon <= 0:
            raise InvalidWindowError(f"horizon must be positive, got {horizon}")
        # The count capacity is irrelevant here; expiry is time-driven.
        super().__init__(
            dim,
            capacity=1,
            rtree_max_entries=rtree_max_entries,
            rtree_min_entries=rtree_min_entries,
            rtree_split=rtree_split,
            sanitize=sanitize,
            query_cache=query_cache,
            kernels=kernels,
            rtree_layout=rtree_layout,
            batch_chunk=batch_chunk,
        )
        self.horizon = float(horizon)
        self._now = 0.0

    # ------------------------------------------------------------------
    # Label hooks: timestamps instead of positions
    # ------------------------------------------------------------------

    def append(  # type: ignore[override]
        self,
        values: Sequence[float],
        timestamp: float,
        payload: Any = None,
    ) -> ArrivalOutcome:
        """Ingest one element stamped ``timestamp``.

        Raises
        ------
        ValueError
            If ``timestamp`` is not positive and strictly greater than
            the previous arrival's timestamp.
        """
        timestamp = float(timestamp)
        if timestamp <= 0:
            raise ValueError(f"timestamps must be positive, got {timestamp}")
        if timestamp <= self._now:
            raise ValueError(
                f"timestamps must be strictly increasing: "
                f"{timestamp} <= {self._now}"
            )
        self._now = timestamp
        self._m += 1
        element = StreamElement(values, self._m, payload)
        return self._arrive(element, timestamp)

    def append_many(  # type: ignore[override]
        self,
        points: Sequence[Sequence[float]],
        timestamps: Sequence[float],
        payloads: Optional[Sequence[Any]] = None,
    ) -> BatchOutcome:
        """Ingest a batch of elements stamped ``timestamps``.

        Semantically identical to calling :meth:`append` per element
        (see :meth:`NofNSkyline.append_many` for the fast path's
        mechanics); validation is all-or-nothing, so a bad point or
        timestamp anywhere in the batch leaves the engine untouched.

        Raises
        ------
        ValueError
            If ``timestamps`` disagrees with ``points`` in length, or is
            not positive and strictly increasing (starting strictly
            after the previous arrival).
        """
        pts = list(points)
        stamps = [float(t) for t in timestamps]
        if len(stamps) != len(pts):
            raise ValueError(
                f"got {len(pts)} points but {len(stamps)} timestamps"
            )
        previous = self._now
        for timestamp in stamps:
            if timestamp <= 0:
                raise ValueError(
                    f"timestamps must be positive, got {timestamp}"
                )
            if timestamp <= previous:
                raise ValueError(
                    f"timestamps must be strictly increasing: "
                    f"{timestamp} <= {previous}"
                )
            previous = timestamp
        elements = self._batch_elements(pts, payloads)
        return self._ingest_batch(elements, stamps)

    def _note_arrival(self, label: float) -> None:
        """Advance the clock: the batched path's equivalent of
        :meth:`append` setting ``now`` before maintenance."""
        self._now = label

    def _window_start(self, new_label: float) -> float:
        """Elements stamped before ``now - horizon`` have expired."""
        return self._now - self.horizon

    def _final_threshold(self, last_label: float, count: int) -> float:
        """Window start as of the chunk's last (latest-stamped) arrival."""
        return last_label - self.horizon

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query_last(self, duration: float) -> List[StreamElement]:
        """Skyline of the elements from the last ``duration`` time units
        (the closed window ``[now - duration, now]``), oldest first.

        Raises
        ------
        InvalidWindowError
            Unless ``0 < duration <= horizon``.
        """
        if not 0 < duration <= self.horizon:
            raise InvalidWindowError(
                f"duration must be in (0, {self.horizon}], got {duration}"
            )
        if not self._labels:
            self.stats.record_query(0)
            return []
        stab = self._now - duration
        if stab <= 0:
            # The period covers the whole retained history: any stab
            # point at or below the oldest live label reports exactly
            # the dominance-graph roots.
            stab = self._labels.oldest()[0]
        if self._stab_cache is not None:
            records = self._stab_cache.stab(stab)  # pre-sorted by kappa
        else:
            records = self._intervals.stab(stab)
            records.sort(key=lambda r: r.element.kappa)
        self.stats.record_query(len(records))
        return [r.element for r in records]

    def skyline(self) -> List[StreamElement]:
        """Skyline of the whole horizon."""
        return self.query_last(self.horizon)

    def query(self, n: int) -> List[StreamElement]:  # type: ignore[override]
        """Count-based queries do not apply to a time window."""
        raise InvalidWindowError(
            "TimeWindowSkyline answers time-period queries; "
            "use query_last(duration) instead of query(n)"
        )

    def query_scan(self, n: int) -> List[StreamElement]:
        """Count-based queries do not apply to a time window.

        Overridden alongside :meth:`query`: the inherited scan would
        treat ``n`` as a count against *timestamp* labels and silently
        return wrong results.
        """
        raise InvalidWindowError(
            "TimeWindowSkyline answers time-period queries; "
            "use query_last(duration) instead of query_scan(n)"
        )

    @property
    def now(self) -> float:
        """Timestamp of the most recent arrival (0.0 before any)."""
        return self._now

    def check_invariants(self) -> None:
        """Verify the engine against time-based brute force.

        Raises
        ------
        StructureCorruptionError
            On the first violated invariant (survives ``python -O``).
        """
        from repro.sanitize.checks import verify_timewindow

        verify_timewindow(self)
