"""Dominance predicates (min-skyline convention).

For points ``x = (x_1..x_d)`` and ``y = (y_1..y_d)`` the paper defines
"``x`` dominates ``y``" as ``x_i <= y_i`` for every ``i`` (section 1),
with the working assumption that values on each dimension are distinct
(Theorem 2).  Without that assumption the ``<=``-everywhere relation is
a preorder — equal points dominate each other — so the library uses two
explicit predicates:

* :func:`weakly_dominates` — ``<=`` on every axis (includes equality).
  This drives redundancy pruning: a younger duplicate makes the older
  copy redundant, which keeps ``R_N`` minimal and the dominance graph a
  forest even with ties.
* :func:`dominates` — ``<=`` everywhere and ``<`` somewhere (the usual
  strict Pareto dominance).  This defines skyline *membership*.

Under distinct values the two coincide, matching the paper exactly.
The skyline reported by the engines therefore contains, of any set of
exactly-equal points, only the youngest copy — a deliberate,
documented tie-break (DESIGN.md §7).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def weakly_dominates(x: Sequence[float], y: Sequence[float]) -> bool:
    """``x_i <= y_i`` on every axis (equal points dominate each other)."""
    if len(x) != len(y):
        raise ValueError(
            f"dimension mismatch: {len(x)} vs {len(y)}"
        )
    return all(a <= b for a, b in zip(x, y))


def dominates(x: Sequence[float], y: Sequence[float]) -> bool:
    """Strict Pareto dominance: ``<=`` everywhere and ``<`` somewhere."""
    if len(x) != len(y):
        raise ValueError(
            f"dimension mismatch: {len(x)} vs {len(y)}"
        )
    strict = False
    for a, b in zip(x, y):
        if a > b:
            return False
        if a < b:
            strict = True
    return strict


def incomparable(x: Sequence[float], y: Sequence[float]) -> bool:
    """Neither point weakly dominates the other."""
    return not weakly_dominates(x, y) and not weakly_dominates(y, x)


def dominance_count(
    point: Sequence[float], others: Iterable[Sequence[float]]
) -> int:
    """How many of ``others`` strictly dominate ``point`` (O(n*d) scan)."""
    return sum(1 for other in others if dominates(other, point))
