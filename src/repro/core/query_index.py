"""A stabbing index over the *registered continuous queries* themselves.

The paper's central move encodes each retained element as an interval so
that an n-of-N query becomes a stab at ``M - n + 1``.  This module turns
the same trick inward, onto the query set: a registered query with
window ``n`` is exactly a stab point on the ``n`` axis, and every result
change produced by one arrival affects a *contiguous* run of windows —

* a newcomer with critical parent ``p`` joins every query with
  ``n <= M - p`` (all of them when it is a root);
* an element ``e`` (parent ``p_e``) ejected by a dominating newcomer
  leaves every query with ``M - kappa_e <= n <= M - p_e - 1``
  (unbounded above for roots);
* ``e`` expires from query ``n`` at exactly ``M = kappa_e + n``.

So instead of looping over every registered handle per arrival
(``O(Q)`` dispatch), the manager keeps the distinct window sizes in a
sorted axis and routes each change record to its group range by binary
search: ``O(log Q + affected)``.  Handles that share an ``n`` dedupe
into one :class:`QueryGroup` — their trigger heaps were always
identical, so they now share one heap, one member set and one memoised
sorted view.

Window expiries are driven by a second heap *over the groups*: each
group's next trigger time is ``top_kappa + n``, so the manager pops only
the groups whose trigger actually fires this arrival instead of peeking
``Q`` heap tops.  Entries are allowed to run *early* (a removal can push
a group's real trigger time later without rescheduling); firing early is
a no-op that reschedules exactly.  They must never run *late* — the
sanitizer's ``continuous-index`` invariant checks that direction.

The sorted axis is mirrored into a NumPy array (``_axis_kernel``,
rebuilt lazily after registration changes) so that
:meth:`ContinuousQueryManager.process_batch` can route a whole batch's
change records with one vectorised ``searchsorted`` pass.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.element import StreamElement
from repro.exceptions import KeyNotFoundError
from repro.structures.heap import MinIndexedHeap

try:  # pragma: no cover - exercised via both CI environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "INDEX_MODES",
    "QueryGroup",
    "QueryIndex",
    "mixed_query_plan",
    "resolve_index_mode",
]

#: Values of the manager's ``query_index`` knob.  ``auto`` resolves to
#: ``on`` — the scalar routing path is pure Python (``bisect``) and
#: needs no optional dependency; ``off`` keeps the seed per-handle loop
#: (the measured baseline and an escape hatch).
INDEX_MODES = ("auto", "on", "off")


def mixed_query_plan(count: int, capacity: int) -> List[int]:
    """A deterministic mixed distinct/duplicate window-size plan.

    Used by the CLI, benchmarks and smoke scripts so they all register
    the same query population for a given ``(count, capacity)``: a pool
    of ``ceil(count / 2)`` window sizes spread over ``[1, capacity]``
    by a multiplicative hash, cycled — so roughly half the
    registrations share a window with another handle and exercise the
    dedupe/refcount path.
    """
    if count <= 0:
        return []
    pool = max(1, (count + 1) // 2)
    return [((i % pool) * 7919) % capacity + 1 for i in range(count)]


def resolve_index_mode(mode: str) -> str:
    """Validate the ``query_index`` knob and resolve ``auto``."""
    if mode not in INDEX_MODES:
        raise ValueError(
            f"query_index must be one of {INDEX_MODES}, got {mode!r}"
        )
    return "on" if mode == "auto" else mode


class QueryGroup:
    """Shared state of every registered handle with the same ``n``.

    Owns the result members, the trigger min-heap on kappa
    (Algorithm 2's trigger list) and the cumulative ``changes`` counter.
    The sorted result view is memoised and invalidated through the
    ``changes`` counter, so repeated ``result()`` calls between
    maintenance events cost one shallow copy instead of a re-sort.
    """

    __slots__ = (
        "n", "refs", "changes", "_members", "_heap",
        "_sorted_kappas", "_sorted_elements", "_sorted_changes",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        #: Number of registered handles viewing this group.
        self.refs = 0
        #: Insertions + deletions applied since the group was built
        #: (the paper's cumulative ``delta``).
        self.changes = 0
        self._members: Dict[int, StreamElement] = {}
        self._heap: MinIndexedHeap[int] = MinIndexedHeap()
        # Memoised sorted views, built lazily (``None`` = not built);
        # invalidated through the ``changes`` counter.
        self._sorted_kappas: Optional[List[int]] = None
        self._sorted_elements: Optional[List[StreamElement]] = None
        self._sorted_changes = -1

    # -- mutations ------------------------------------------------------

    def add(self, element: StreamElement) -> None:
        self.changes += 1
        self._members[element.kappa] = element
        self._heap.push(element.kappa, element.kappa)

    def remove(self, kappa: int) -> None:
        self.changes += 1
        del self._members[kappa]
        self._heap.delete(kappa)

    # -- memoised sorted views ------------------------------------------

    def _refresh(self) -> "tuple[List[int], List[StreamElement]]":
        kappas = self._sorted_kappas
        elements = self._sorted_elements
        if (kappas is None or elements is None
                or self._sorted_changes != self.changes):
            kappas = sorted(self._members)
            elements = [self._members[k] for k in kappas]
            self._sorted_kappas = kappas
            self._sorted_elements = elements
            self._sorted_changes = self.changes
        return kappas, elements

    def result(self) -> List[StreamElement]:
        """The current result, sorted by arrival position (a copy)."""
        _, elements = self._refresh()
        return list(elements)

    def result_kappas(self) -> List[int]:
        """Arrival labels of the current result, ascending (a copy)."""
        kappas, _ = self._refresh()
        return list(kappas)

    def __contains__(self, kappa: int) -> bool:
        return kappa in self._members

    def __len__(self) -> int:
        return len(self._members)


class QueryIndex:
    """Sorted-axis registry of :class:`QueryGroup`, routed by stabbing.

    ``_axis`` holds the distinct registered window sizes ascending;
    ``_order`` holds the groups in the same order, so a routed range is
    a plain list slice.  ``_version`` counts registration changes —
    the lazily rebuilt ``_axis_kernel`` NumPy mirror is dropped on every
    bump so batch routing never searches a stale axis.
    """

    def __init__(self) -> None:
        self._groups: Dict[int, QueryGroup] = {}
        self._order: List[QueryGroup] = []
        self._axis: List[int] = []
        #: Lazily rebuilt NumPy mirror of ``_axis`` for vectorised
        #: batch routing (``None`` = stale or NumPy unavailable).
        self._axis_kernel: Optional[Any] = None
        #: group n -> earliest stream length at which its trigger can
        #: fire (``top_kappa + n``); entries may run early, never late.
        self._expiry: MinIndexedHeap[int] = MinIndexedHeap()
        self._version = 0
        # Routing telemetry for ``query_index_stats()``.
        self._routed_events = 0
        self._touched_groups = 0
        self._batch_passes = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def acquire(self, n: int) -> "tuple[QueryGroup, bool]":
        """Get (or build) the group for ``n``; returns ``(group, created)``."""
        group = self._groups.get(n)
        if group is not None:
            group.refs += 1
            return group, False
        self._version += 1
        group = QueryGroup(n)
        group.refs = 1
        self._groups[n] = group
        slot = bisect.bisect_left(self._axis, n)
        self._axis.insert(slot, n)
        self._order.insert(slot, group)
        self._axis_kernel = None
        return group, True

    def release(self, n: int) -> QueryGroup:
        """Drop one reference to group ``n``; returns the group."""
        group = self._groups.get(n)
        if group is None:
            raise KeyNotFoundError(f"no query group for n={n}")
        group.refs -= 1
        if group.refs > 0:
            return group
        self._version += 1
        del self._groups[n]
        slot = bisect.bisect_left(self._axis, n)
        del self._axis[slot]
        del self._order[slot]
        self._axis_kernel = None
        self._expiry.discard(n)
        return group

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def range_between(
        self, lo: int, hi: Optional[int]
    ) -> Sequence[QueryGroup]:
        """Groups with ``lo <= n <= hi`` (``hi=None`` = unbounded)."""
        left = bisect.bisect_left(self._axis, lo)
        right = (
            len(self._axis) if hi is None
            else bisect.bisect_right(self._axis, hi)
        )
        return self._order[left:right]

    def prefix_upto(self, hi: Optional[int]) -> Sequence[QueryGroup]:
        """Groups with ``n <= hi`` (``hi=None`` = all groups)."""
        if hi is None:
            return self._order
        return self._order[: bisect.bisect_right(self._axis, hi)]

    def axis_kernel(self) -> Optional[Any]:
        """The NumPy mirror of the sorted axis, rebuilt if stale
        (``None`` when NumPy is unavailable)."""
        if _np is None:
            return None
        kernel = self._axis_kernel
        if kernel is None:
            kernel = _np.asarray(self._axis, dtype=_np.int64)
            self._axis_kernel = kernel
        return kernel

    # ------------------------------------------------------------------
    # Expiry scheduling
    # ------------------------------------------------------------------

    def schedule(self, group: QueryGroup) -> None:
        """(Re)compute ``group``'s next-trigger entry from its heap top.

        Dropping the entry when the heap is empty and firing stale-early
        entries are both safe; this is the only place entries move
        *later*, so it must run after every cascade.
        """
        self._version += 1
        n = group.n
        heap = group._heap
        if not heap:
            self._expiry.discard(n)
            return
        top_kappa, _ = heap.peek()
        due = top_kappa + n
        if n in self._expiry:
            self._expiry.update_priority(n, due)
        else:
            self._expiry.push(n, due)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def group(self, n: int) -> Optional[QueryGroup]:
        return self._groups.get(n)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[QueryGroup]:
        return iter(list(self._order))

    def __contains__(self, n: int) -> bool:
        return n in self._groups

    def stats(self) -> Dict[str, int]:
        """Registration and routing counters (all monotonic except
        ``groups``/``handles``, which describe the current state)."""
        return {
            "groups": len(self._order),
            "handles": sum(group.refs for group in self._order),
            "version": self._version,
            "routed_events": self._routed_events,
            "touched_groups": self._touched_groups,
            "batch_passes": self._batch_passes,
        }
