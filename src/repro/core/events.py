"""Arrival outcome records.

Every call to :meth:`repro.core.nofn.NofNSkyline.append` performs the
maintenance of Algorithm 1 and reports *what changed* as an
:class:`ArrivalOutcome`.  The continuous-query manager (Algorithm 2)
consumes these outcomes instead of re-deriving the changes — that is
exactly the "linking an element to the continuous queries which are
using it" coupling the paper describes in section 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.element import StreamElement


@dataclass(frozen=True)
class ExpiredRecord:
    """An element that left the most recent N elements this arrival.

    ``children`` lists the elements it *critically dominated* at the
    moment of expiry (they are re-rooted by Algorithm 1 lines 5-7 and
    are candidate skyline insertions per Proposition 1).
    """

    element: StreamElement
    children: Tuple[StreamElement, ...]


@dataclass(frozen=True)
class ArrivalOutcome:
    """Everything Algorithm 1 did for one new element.

    Attributes
    ----------
    element:
        The newcomer ``e_new`` (its ``kappa`` equals the stream position
        ``M`` after this arrival).
    seen_so_far:
        ``M`` — total elements seen, including this one.
    dominated_removed:
        ``D_{e_new}``: elements ejected from ``R_N`` because the
        newcomer weakly dominates them (youngest first is *not*
        guaranteed; order follows the R-tree traversal).
    parent_kappa:
        Label of the newcomer's critical dominator, or ``0`` when the
        newcomer is a root of the dominance graph.
    expired:
        Elements that fell out of the window this arrival (at most one
        for the count-based n-of-N window; possibly several for
        time-based windows), each with its children at expiry time.
    """

    element: StreamElement
    seen_so_far: int
    dominated_removed: Tuple[StreamElement, ...] = ()
    parent_kappa: int = 0
    expired: Tuple[ExpiredRecord, ...] = ()

    @property
    def removed_kappas(self) -> frozenset:
        """Labels of every element that left ``R_N`` this arrival."""
        return frozenset(
            [e.kappa for e in self.dominated_removed]
            + [rec.element.kappa for rec in self.expired]
        )
