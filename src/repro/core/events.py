"""Arrival outcome records.

Every call to :meth:`repro.core.nofn.NofNSkyline.append` performs the
maintenance of Algorithm 1 and reports *what changed* as an
:class:`ArrivalOutcome`.  The continuous-query manager (Algorithm 2)
consumes these outcomes instead of re-deriving the changes — that is
exactly the "linking an element to the continuous queries which are
using it" coupling the paper describes in section 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.element import StreamElement


@dataclass(frozen=True)
class ExpiredRecord:
    """An element that left the most recent N elements this arrival.

    ``children`` lists the elements it *critically dominated* at the
    moment of expiry (they are re-rooted by Algorithm 1 lines 5-7 and
    are candidate skyline insertions per Proposition 1).
    """

    element: StreamElement
    children: Tuple[StreamElement, ...]


@dataclass(frozen=True)
class ArrivalOutcome:
    """Everything Algorithm 1 did for one new element.

    Attributes
    ----------
    element:
        The newcomer ``e_new`` (its ``kappa`` equals the stream position
        ``M`` after this arrival).
    seen_so_far:
        ``M`` — total elements seen, including this one.
    dominated_removed:
        ``D_{e_new}``: elements ejected from ``R_N`` because the
        newcomer weakly dominates them (youngest first is *not*
        guaranteed; order follows the R-tree traversal).
    parent_kappa:
        Label of the newcomer's critical dominator, or ``0`` when the
        newcomer is a root of the dominance graph.
    expired:
        Elements that fell out of the window this arrival (at most one
        for the count-based n-of-N window; possibly several for
        time-based windows), each with its children at expiry time.
    """

    element: StreamElement
    seen_so_far: int
    dominated_removed: Tuple[StreamElement, ...] = ()
    parent_kappa: int = 0
    expired: Tuple[ExpiredRecord, ...] = ()

    @property
    def removed_kappas(self) -> frozenset:
        """Labels of every element that left ``R_N`` this arrival."""
        return frozenset(
            [e.kappa for e in self.dominated_removed]
            + [rec.element.kappa for rec in self.expired]
        )


@dataclass(frozen=True)
class BatchOutcome:
    """Everything one ``append_many`` call did, element by element.

    The batched ingestion path performs identical maintenance to
    element-by-element :meth:`~repro.core.nofn.NofNSkyline.append`
    (property-tested), so ``outcomes`` holds exactly the
    :class:`ArrivalOutcome` sequence those individual calls would have
    returned — feed them, in order, to
    :meth:`~repro.core.continuous.ContinuousQueryManager.process` (or
    hand the whole object to ``process_batch``) and every continuous
    query fires the same triggers it would have fired per element.

    Attributes
    ----------
    outcomes:
        One :class:`ArrivalOutcome` per batch member, in arrival order.
    prefilter_dropped:
        Batch members the vectorised intra-batch prefilter proved
        dominated by a younger same-batch member; their outcomes are in
        ``outcomes`` like everyone else's, but they never touched the
        R-tree / interval tree / label set — the batch path's saving.
    """

    outcomes: Tuple[ArrivalOutcome, ...]
    prefilter_dropped: int = 0

    @property
    def batch_size(self) -> int:
        """Number of elements ingested by this batch."""
        return len(self.outcomes)

    @property
    def seen_so_far(self) -> int:
        """``M`` after the batch (0 for an empty batch on a fresh
        engine)."""
        if not self.outcomes:
            return 0
        return self.outcomes[-1].seen_so_far

    @property
    def expired_total(self) -> int:
        """Window expiries across the whole batch."""
        return sum(len(o.expired) for o in self.outcomes)

    @property
    def dominated_total(self) -> int:
        """Dominance ejections across the whole batch."""
        return sum(len(o.dominated_removed) for o in self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ArrivalOutcome]:
        return iter(self.outcomes)
