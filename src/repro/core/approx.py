"""Approximate n-of-N skylines (the paper's stated future work).

Section 6 closes with: "We will also investigate the problem of
approximate skyline computation over data streams."  This module
implements the natural, *provably safe* construction: quantise every
coordinate to a grid of cell size ``epsilon`` and run the exact n-of-N
machinery on the quantised points.

Guarantee (additive epsilon-coverage)
-------------------------------------
For every query ``n`` and every element ``p`` of the most recent ``n``
elements, the reported set contains an element ``q`` (also within the
most recent ``n``) with ::

    q_i  <=  p_i + epsilon        for every dimension i.

*Proof sketch.*  Let ``g(x) = floor(x / epsilon) * epsilon``.  The
engine reports the exact skyline of the quantised window, so some
reported ``q`` has ``g(q) <= g(p)`` coordinate-wise; then
``q_i < g(q_i) + epsilon <= g(p_i) + epsilon <= p_i + epsilon``.
Because quantisation is applied once per element, errors do **not**
accumulate along dominance chains — the pitfall of pruning with
epsilon-relaxed dominance directly.

What is gained: quantisation collapses near-duplicates and manufactures
extra dominance, so the retained set ``|R_N|`` (and hence maintenance
and query cost) shrinks as ``epsilon`` grows —
``benchmarks/bench_approx.py`` quantifies the trade-off.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome
from repro.core.nofn import NofNSkyline
from repro.core.stats import EngineStats

if TYPE_CHECKING:
    from repro.accel.stab_cache import StabCache


class ApproxNofNSkyline:
    """Epsilon-approximate n-of-N skylines over a sliding window.

    A thin wrapper around :class:`NofNSkyline`: elements are quantised
    on ingestion, queries run exactly on the quantised state, and
    results are mapped back to the *original* vectors.

    Parameters
    ----------
    dim, capacity:
        As for :class:`NofNSkyline`.
    epsilon:
        Grid cell size(s) (> 0): a single float applied to every axis,
        or one value per dimension for mixed-unit data (e.g. dollars on
        one axis, hours on another).  The coverage guarantee above is
        additive per axis in that axis's epsilon.
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        epsilon: "float | Sequence[float]",
    ) -> None:
        if isinstance(epsilon, (int, float)):
            cells = (float(epsilon),) * dim
        else:
            cells = tuple(float(v) for v in epsilon)
            if len(cells) != dim:
                raise ValueError(
                    f"epsilon needs one value per dimension: got "
                    f"{len(cells)} for dim={dim}"
                )
        if any(cell <= 0 for cell in cells):
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = cells
        self._inner = NofNSkyline(dim, capacity)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(self, values: Sequence[float], payload: Any = None) -> ArrivalOutcome:
        """Ingest one element (quantised internally)."""
        original = tuple(float(v) for v in values)
        quantised = tuple(
            math.floor(v / cell) * cell
            for v, cell in zip(original, self.epsilon)
        )
        return self._inner.append(quantised, payload=(original, payload))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, n: int) -> List[StreamElement]:
        """Approximate skyline of the most recent ``n`` elements.

        Every element of the window is epsilon-dominated by some
        element of the result; results carry the original (unquantised)
        vectors and payloads.
        """
        return [self._unwrap(e) for e in self._inner.query(n)]

    def skyline(self) -> List[StreamElement]:
        """Approximate skyline of the whole window."""
        return self.query(self._inner.capacity)

    @staticmethod
    def _unwrap(element: StreamElement) -> StreamElement:
        original, payload = element.payload
        return StreamElement(original, element.kappa, payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the stream."""
        return self._inner.dim

    @property
    def capacity(self) -> int:
        """The window size ``N``."""
        return self._inner.capacity

    @property
    def seen_so_far(self) -> int:
        """``M`` — number of elements ingested."""
        return self._inner.seen_so_far

    @property
    def rn_size(self) -> int:
        """Retained-set size — the quantity ``epsilon`` shrinks."""
        return self._inner.rn_size

    @property
    def stats(self) -> EngineStats:
        """The wrapped engine's counters."""
        return self._inner.stats

    @property
    def structure_version(self) -> int:
        """Monotonic version of the wrapped engine's interval encoding."""
        return self._inner.structure_version

    @property
    def stab_cache(self) -> "Optional[StabCache[Any]]":
        """The wrapped engine's query cache (``None`` when disabled)."""
        return self._inner.stab_cache

    @property
    def kernel_policy(self) -> str:
        """The ``kernels`` knob the wrapped engine was built with."""
        return self._inner.kernel_policy

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss/rebuild counters of the wrapped engine's query
        cache (``None`` when caching is disabled)."""
        return self._inner.cache_stats()

    def check_invariants(self) -> None:
        """Delegate structural validation to the exact engine."""
        self._inner.check_invariants()
