"""Engine snapshot / restore.

A production stream processor restarts; recomputing a window of a
million elements from a raw replay is exactly what the paper's
structures exist to avoid.  This module serialises an engine's *logical*
state — the elements it retains plus their graph annotations — to a
plain dict (JSON-ready if the payloads are) and rebuilds a live engine
from it, re-deriving the R-tree / interval-tree / label-set wiring.

Supported engines:

* :class:`~repro.core.nofn.NofNSkyline` (and its linear-scan ablation
  subclass) — ``R_N`` with parent pointers;
* :class:`~repro.core.timewindow.TimeWindowSkyline` — additionally the
  horizon, clock and per-element timestamps;
* :class:`~repro.core.n1n2.N1N2Skyline` — all of ``P_N`` with both CBC
  ancestors;
* :class:`~repro.parallel.sharded.ShardedNofNSkyline` /
  :class:`~repro.parallel.sharded.ShardedKSkyband` — the union of the
  shards' retained elements, stored *flat* (sorted by kappa) so one
  snapshot restores under any shard count or backend: restore replays
  the records through the router's round-robin ingestion, re-deriving
  every per-shard graph annotation.  Same-shard-count restores are
  state-identical; different counts answer every query identically
  (the re-shard-on-load path of the parallel subsystem);
* :class:`~repro.core.continuous.ContinuousQueryManager` — the wrapped
  :class:`~repro.core.nofn.NofNSkyline` snapshot plus the handle
  registry (query id, window size and ``changes`` counter per handle).
  Only the registry travels: restore re-registers every handle against
  the restored engine, so the per-``n`` query-index groups, trigger
  heaps and dominance-forest mirror are all re-derived — groups restore
  from the handle registry, not from serialised member sets.

Round-trip guarantee: ``restore(snapshot(engine))`` answers every query
identically to the original (tested property-based).  Payloads are
embedded verbatim — callers who want JSON must keep payloads
JSON-serialisable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.core.continuous import ContinuousQueryHandle, ContinuousQueryManager
from repro.core.n1n2 import N1N2Skyline, _WindowRecord
from repro.core.nofn import NofNSkyline, _Record
from repro.core.element import StreamElement
from repro.core.timewindow import TimeWindowSkyline
from repro.exceptions import ReproError
from repro.parallel.sharded import ShardedKSkyband, ShardedNofNSkyline
from repro.sanitize.sanitizer import SanitizeArg

FORMAT_VERSION = 1

#: Engine types :func:`snapshot` accepts and :func:`restore` can return.
PersistableEngine = Union[
    NofNSkyline, N1N2Skyline, ShardedNofNSkyline, ShardedKSkyband
]

#: Everything :func:`snapshot` accepts and :func:`restore` can return —
#: the engines plus the continuous-query service wrapper.
PersistableState = Union[PersistableEngine, ContinuousQueryManager]


class SnapshotError(ReproError):
    """A snapshot dict is malformed or from an unsupported version."""


# ----------------------------------------------------------------------
# Dump
# ----------------------------------------------------------------------


def snapshot(engine: PersistableState) -> Dict[str, Any]:
    """Serialise ``engine`` to a plain dict."""
    if isinstance(engine, ContinuousQueryManager):
        return _snapshot_continuous(engine)
    if isinstance(engine, (ShardedNofNSkyline, ShardedKSkyband)):
        return _snapshot_sharded(engine)
    if isinstance(engine, N1N2Skyline):
        return _snapshot_n1n2(engine)
    if isinstance(engine, NofNSkyline):  # covers TimeWindowSkyline too
        return _snapshot_nofn(engine)
    raise SnapshotError(f"unsupported engine type: {type(engine).__name__}")


def _snapshot_sharded(
    router: Union[ShardedNofNSkyline, ShardedKSkyband]
) -> Dict[str, Any]:
    """Flat, shard-count-agnostic dump of a sharded router.

    Only the retained elements travel (kappa/values/payload, sorted by
    kappa); restore re-derives all graph annotations by replay, so the
    snapshot is identical whatever ``shards``/``backend`` produced it.
    """
    rows: List[Dict[str, Any]] = [
        row
        for shard_rows in router._executor.records_all()
        for row in shard_rows
    ]
    rows.sort(key=lambda row: int(row["kappa"]))
    snap: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "kind": (
            "sharded-skyband"
            if isinstance(router, ShardedKSkyband)
            else "sharded-nofn"
        ),
        "dim": router.dim,
        "capacity": router.capacity,
        "shards": router.shards,
        "backend": router.backend,
        "seen_so_far": router.seen_so_far,
        "records": rows,
        "stats": router.stats.snapshot_raw(),
        "rtree": {
            "max_entries": router._rtree_config["rtree_max_entries"],
            "min_entries": router._rtree_config["rtree_min_entries"],
            "split": router._rtree_config["rtree_split"],
            "layout": router._rtree_config["rtree_layout"],
        },
        "query": {
            "cache": router._query_cache,
            "kernels": router.kernel_policy,
        },
        "batch_chunk": router.batch_chunk,
        "replicas": {
            "mode": router.replica_mode,
            "lag": router.replica_lag,
        },
        "sanitize": router.sanitize_mode,
    }
    if isinstance(router, ShardedKSkyband):
        snap["k"] = router.k
    return snap


def _snapshot_nofn(engine: NofNSkyline) -> Dict[str, Any]:
    records: List[Dict[str, Any]] = []
    for _, record in engine._labels.items():  # oldest first
        records.append(
            {
                "kappa": record.element.kappa,
                "values": list(record.element.values),
                "label": record.label,
                "parent": record.parent_kappa,
                "payload": record.element.payload,
            }
        )
    snap: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "kind": "timewindow" if isinstance(engine, TimeWindowSkyline) else "nofn",
        "dim": engine.dim,
        "capacity": engine.capacity,
        "seen_so_far": engine.seen_so_far,
        "records": records,
        "stats": engine.stats.snapshot_raw(),
        "rtree": _rtree_config(engine),
        "query": _query_config(engine),
        "batch_chunk": engine.batch_chunk,
        "sanitize": engine.sanitize_mode,
    }
    if isinstance(engine, TimeWindowSkyline):
        snap["horizon"] = engine.horizon
        snap["now"] = engine.now
    return snap


def _rtree_config(engine: Union[NofNSkyline, N1N2Skyline]) -> Dict[str, Any]:
    """The engine's R-tree tuning, so :func:`restore` rebuilds the index
    with the fan-out and split policy the operator chose rather than the
    defaults.  Engines whose index is not an R-tree (the linear-scan
    ablation) report the defaults — tuning does not apply to them."""
    index = engine._rtree
    return {
        "max_entries": int(getattr(index, "max_entries", 12)),
        "min_entries": int(getattr(index, "min_entries", 4)),
        "split": str(getattr(index, "split_policy", "quadratic")),
        "layout": str(getattr(index, "layout_policy", "auto")),
    }


def _query_config(engine: Union[NofNSkyline, N1N2Skyline]) -> Dict[str, Any]:
    """The engine's query fast-path knobs, so :func:`restore` rebuilds
    with the caching/kernel choices the operator made.  The kernel
    policy is read off the spatial index; engines whose index is not an
    R-tree (the linear-scan ablation) report the default."""
    if isinstance(engine, N1N2Skyline):
        cache = engine._live_cache is not None
    else:
        cache = engine._stab_cache is not None
    return {
        "cache": cache,
        "kernels": str(getattr(engine._rtree, "kernel_policy", "auto")),
    }


def _snapshot_n1n2(engine: N1N2Skyline) -> Dict[str, Any]:
    records: List[Dict[str, Any]] = []
    for kappa in sorted(engine._records):
        record = engine._records[kappa]
        records.append(
            {
                "kappa": kappa,
                "values": list(record.element.values),
                "a": record.a_kappa,
                "b": record.b_kappa,
                "in_rn": record.in_rn,
                "payload": record.element.payload,
            }
        )
    return {
        "format": FORMAT_VERSION,
        "kind": "n1n2",
        "dim": engine.dim,
        "capacity": engine.capacity,
        "seen_so_far": engine.seen_so_far,
        "records": records,
        "stats": engine.stats.snapshot_raw(),
        "rtree": _rtree_config(engine),
        "query": _query_config(engine),
        "batch_chunk": engine.batch_chunk,
        "sanitize": engine.sanitize_mode,
    }


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------


def _snapshot_continuous(manager: ContinuousQueryManager) -> Dict[str, Any]:
    """Dump a continuous-query manager: the wrapped engine plus the
    handle registry.

    Member sets, trigger heaps and the query index are deliberately not
    serialised — they are functions of the engine state and the
    registry, and restore re-derives them by re-registering each handle
    (one stabbing query per distinct ``n``).
    """
    engine = manager.engine
    if type(engine) is not NofNSkyline:
        raise SnapshotError(
            "continuous snapshots support plain NofNSkyline engines, "
            f"got {type(engine).__name__}"
        )
    return {
        "format": FORMAT_VERSION,
        "kind": "continuous",
        "engine": _snapshot_nofn(engine),
        "query_index": manager.query_index,
        "sanitize": manager.sanitize_mode,
        "next_id": manager._next_id,
        "queries": [
            {"id": h.query_id, "n": h.n, "changes": h.changes}
            for h in manager
        ],
    }


def restore(
    snap: Dict[str, Any],
    sanitize: SanitizeArg = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
) -> PersistableState:
    """Rebuild a live engine from a :func:`snapshot` dict.

    ``sanitize`` overrides the sanitize mode recorded in the snapshot
    (``None`` keeps the recorded mode; snapshots written before the
    mode was recorded restore with ``"off"``, as they always did).
    ``shards`` / ``backend`` apply to sharded snapshots only and
    override the recorded topology — restoring a 4-shard snapshot with
    ``shards=2`` re-shards the stream on load (and vice versa); every
    query answers identically either way.
    """
    _require(isinstance(snap, dict), "snapshot must be a dict")
    if snap.get("format") != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format: {snap.get('format')!r}"
        )
    if sanitize is None:
        sanitize = str(snap.get("sanitize", "off"))
    kind = snap.get("kind")
    if kind == "nofn":
        return _restore_nofn(
            snap,
            NofNSkyline(
                snap["dim"],
                snap["capacity"],
                sanitize=sanitize,
                **_rtree_kwargs(snap),
                **_query_kwargs(snap),
                **_batch_kwargs(snap),
            ),
        )
    if kind == "timewindow":
        engine = TimeWindowSkyline(
            snap["dim"],
            snap["horizon"],
            sanitize=sanitize,
            **_rtree_kwargs(snap),
            **_query_kwargs(snap),
            **_batch_kwargs(snap),
        )
        engine._now = float(snap["now"])
        return _restore_nofn(snap, engine)
    if kind == "n1n2":
        return _restore_n1n2(snap, sanitize)
    if kind in ("sharded-nofn", "sharded-skyband"):
        return _restore_sharded(snap, sanitize, shards, backend)
    if kind == "continuous":
        return _restore_continuous(snap, sanitize)
    raise SnapshotError(f"unknown snapshot kind: {kind!r}")


def _restore_continuous(
    snap: Dict[str, Any], sanitize: SanitizeArg
) -> ContinuousQueryManager:
    """Rebuild a manager by restoring its engine and re-registering the
    handle registry (groups restore from the registry, not from dumped
    member sets).  ``sanitize`` applies to the manager; the engine keeps
    its own recorded mode."""
    engine = restore(snap["engine"])
    if not isinstance(engine, NofNSkyline):
        raise SnapshotError("continuous snapshot must embed an nofn engine")
    manager = ContinuousQueryManager(
        engine,
        sanitize=sanitize,
        query_index=str(snap.get("query_index", "auto")),
    )
    handles: Dict[int, ContinuousQueryHandle] = {}
    for raw in snap["queries"]:
        handle = manager.register(int(raw["n"]))
        query_id = int(raw["id"])
        _require(query_id not in handles, "duplicate continuous query id")
        handle.query_id = query_id
        # Re-anchor the handle's changes counter: re-registration reset
        # it to zero, the original had accumulated `changes`.
        handle._changes_base -= int(raw.get("changes", 0))
        handles[query_id] = handle
    manager._queries = handles
    manager._next_id = int(
        snap.get("next_id", max(handles, default=0) + 1)
    )
    return manager


def _restore_sharded(
    snap: Dict[str, Any],
    sanitize: SanitizeArg,
    shards: Optional[int],
    backend: Optional[str],
) -> Union[ShardedNofNSkyline, ShardedKSkyband]:
    shard_count = int(snap.get("shards", 1)) if shards is None else shards
    chosen = str(snap.get("backend", "serial")) if backend is None else backend
    kwargs: Dict[str, Any] = dict(
        shards=shard_count,
        backend=chosen,
        sanitize=sanitize,
        **_rtree_kwargs(snap),
        **_query_kwargs(snap),
        **_batch_kwargs(snap),
        **_replica_kwargs(snap, chosen),
    )
    router: Union[ShardedNofNSkyline, ShardedKSkyband]
    if snap["kind"] == "sharded-skyband":
        router = ShardedKSkyband(
            snap["dim"], snap["capacity"], int(snap["k"]), **kwargs
        )
    else:
        router = ShardedNofNSkyline(snap["dim"], snap["capacity"], **kwargs)
    previous = 0
    for raw in snap["records"]:
        kappa = int(raw["kappa"])
        _require(
            kappa > previous,
            f"sharded records must be sorted by kappa, got {kappa} "
            f"after {previous}",
        )
        previous = kappa
        element = StreamElement(raw["values"], kappa, raw.get("payload"))
        router._executor.ingest(router._route(kappa), element)
    seen = int(snap["seen_so_far"])
    _require(
        seen >= previous,
        f"seen_so_far {seen} precedes the newest record {previous}",
    )
    router._m = seen
    _restore_stats(router, snap.get("stats"))
    return router


def _replica_kwargs(snap: Dict[str, Any], backend: str) -> Dict[str, Any]:
    """Replica knobs from a sharded snapshot.

    Pre-replica snapshots lack the "replicas" key and restore with the
    defaults.  A recorded ``mode="on"`` is downgraded to ``"auto"``
    when the caller re-targets the snapshot at the serial backend —
    the knob expresses a preference about a backend the restored
    router may not use, not a hard requirement of the data.
    """
    raw = snap.get("replicas", {})
    _require(isinstance(raw, dict), '"replicas" must be a dict when present')
    mode = str(raw.get("mode", "auto"))
    if mode == "on" and backend != "process":
        mode = "auto"
    lag = raw.get("lag", 0)
    return {
        "replicas": mode,
        "replica_lag": None if lag is None else int(lag),
    }


def _rtree_kwargs(snap: Dict[str, Any]) -> Dict[str, Any]:
    """R-tree tuning kwargs from a snapshot.

    Snapshots written before the tuning was recorded lack the "rtree"
    key; they restore with the defaults, as they always did.
    """
    raw = snap.get("rtree", {})
    _require(isinstance(raw, dict), '"rtree" must be a dict when present')
    return {
        "rtree_max_entries": int(raw.get("max_entries", 12)),
        "rtree_min_entries": int(raw.get("min_entries", 4)),
        "rtree_split": str(raw.get("split", "quadratic")),
        # Pre-SoA snapshots lack the key and restore with "auto", which
        # resolves the same way a fresh construction would.
        "rtree_layout": str(raw.get("layout", "auto")),
    }


def _batch_kwargs(snap: Dict[str, Any]) -> Dict[str, Any]:
    """Batched-ingest kwargs from a snapshot.

    Snapshots written before the ``batch_chunk`` knob was recorded lack
    the key; ``None`` restores the library default chunk size.
    """
    raw = snap.get("batch_chunk")
    return {"batch_chunk": None if raw is None else int(raw)}


def _query_kwargs(snap: Dict[str, Any]) -> Dict[str, Any]:
    """Query fast-path kwargs from a snapshot.

    Snapshots written before the knobs were recorded lack the "query"
    key; they restore with the defaults (cache on, kernels auto).
    """
    raw = snap.get("query", {})
    _require(isinstance(raw, dict), '"query" must be a dict when present')
    return {
        "query_cache": bool(raw.get("cache", True)),
        "kernels": str(raw.get("kernels", "auto")),
    }


def _restore_nofn(snap: Dict[str, Any], engine: NofNSkyline) -> NofNSkyline:
    engine._m = int(snap["seen_so_far"])
    by_kappa: Dict[int, _Record] = {}
    for raw in snap["records"]:
        element = StreamElement(
            raw["values"], int(raw["kappa"]), raw.get("payload")
        )
        record = _Record(element, float(raw["label"]))
        record.parent_kappa = int(raw["parent"])
        by_kappa[element.kappa] = record

    for raw in snap["records"]:  # oldest first, as dumped
        record = by_kappa[int(raw["kappa"])]
        if record.parent_kappa:
            parent = by_kappa.get(record.parent_kappa)
            _require(
                parent is not None,
                f"record {record.element.kappa} references missing "
                f"parent {record.parent_kappa}",
            )
            parent.children.add(record.element.kappa)
            low = parent.label
        else:
            low = 0.0
        record.handle = engine._intervals.insert(low, record.label, record)
        record.entry = engine._rtree.insert(
            record.element.values, record.element.kappa, record
        )
        engine._labels.append(record.label, record)
        engine._records[record.element.kappa] = record

    _restore_stats(engine, snap.get("stats"))
    return engine


def _restore_n1n2(
    snap: Dict[str, Any], sanitize: SanitizeArg = "off"
) -> N1N2Skyline:
    engine = N1N2Skyline(
        snap["dim"],
        snap["capacity"],
        sanitize=sanitize,
        **_rtree_kwargs(snap),
        **_query_kwargs(snap),
        **_batch_kwargs(snap),
    )
    engine._m = int(snap["seen_so_far"])
    by_kappa: Dict[int, _WindowRecord] = {}
    for raw in snap["records"]:
        element = StreamElement(
            raw["values"], int(raw["kappa"]), raw.get("payload")
        )
        record = _WindowRecord(element)
        record.a_kappa = int(raw["a"])
        record.b_kappa = None if raw["b"] is None else int(raw["b"])
        record.in_rn = bool(raw["in_rn"])
        by_kappa[element.kappa] = record

    for kappa in sorted(by_kappa):
        record = by_kappa[kappa]
        if record.a_kappa:
            parent = by_kappa.get(record.a_kappa)
            _require(
                parent is not None,
                f"record {kappa} references missing ancestor "
                f"{record.a_kappa}",
            )
            parent.dependents.add(kappa)
        tree = engine._live if record.in_rn else engine._superseded
        record.handle = tree.insert(
            float(record.a_kappa), float(kappa), record
        )
        if record.in_rn:
            _require(
                record.b_kappa is None,
                f"record {kappa} is in R_N but has a finite b",
            )
            engine._rtree.insert(record.element.values, kappa, record)
        engine._records[kappa] = record

    _restore_stats(engine, snap.get("stats"))
    return engine


def _restore_stats(engine: PersistableEngine, raw: Any) -> None:
    if not raw:
        return
    stats = engine.stats
    for field in (
        "arrivals", "expiries", "dominated_removed", "queries",
        "query_results", "rn_size_peak", "rn_size_sum",
        "batches", "batch_elements", "prefilter_dropped", "batch_size_peak",
    ):
        setattr(stats, field, int(raw.get(field, 0)))
    for field in ("batch_seconds_total", "batch_seconds_max"):
        setattr(stats, field, float(raw.get(field, 0.0)))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SnapshotError(message)


# ----------------------------------------------------------------------
# JSON convenience
# ----------------------------------------------------------------------


def dumps(engine: PersistableState) -> str:
    """Snapshot ``engine`` as a JSON string (payloads must be
    JSON-serialisable)."""
    return json.dumps(snapshot(engine))


def loads(
    text: str,
    sanitize: SanitizeArg = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
) -> PersistableState:
    """Rebuild an engine from :func:`dumps` output.

    Overrides are forwarded to :func:`restore`: ``shards`` / ``backend``
    re-shard a sharded snapshot onto a different layout on load.
    """
    return restore(
        json.loads(text), sanitize=sanitize, shards=shards, backend=backend
    )
