"""Ablation variant: n-of-N maintenance without the R-tree.

Section 3.3 motivates the in-memory R-tree with the difficulty of
balancing multidimensional point structures under updates.  But
Theorem 2 says ``R_N`` stays *small* (``O(log^d N)`` on independent
data), which raises a fair design question this module lets the
benchmarks answer empirically: **is the R-tree worth it, or would
linear scans over** ``R_N`` **do?**

:class:`LinearScanNofNSkyline` is bit-for-bit the same engine as
:class:`~repro.core.nofn.NofNSkyline` — same dominance graph, same
interval encoding, same query path — except that Algorithm 1's two
R-tree searches are replaced by plain scans over the label set:

* ``D_{e_new}`` — scan every record, keep the weakly dominated;
* critical dominator — scan every record, keep the max-kappa dominator.

Both are ``O(|R_N| * d)`` per arrival instead of the R-tree's pruned
search.  ``benchmarks/bench_ablation_rtree.py`` compares the two; on
correlated/independent data the scan is competitive exactly because
``|R_N|`` is tiny, while anti-correlated data (large ``R_N``) is where
the R-tree's pruning pays — the trade-off the paper's design implies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.dominance import weakly_dominates
from repro.core.nofn import NofNSkyline
from repro.exceptions import corruption
from repro.sanitize.sanitizer import SanitizeArg


class _ScanIndex:
    """A drop-in replacement for the engine's R-tree: a flat dict.

    Implements exactly the :class:`repro.structures.rtree.RTree`
    surface the engine uses (``insert``, ``delete``,
    ``remove_dominated``, ``max_kappa_dominator``, ``__len__``) with
    linear scans.
    """

    class _Entry:
        __slots__ = ("point", "kappa", "data")

        def __init__(
            self, point: Sequence[float], kappa: int, data: object
        ) -> None:
            self.point = tuple(point)
            self.kappa = kappa
            self.data = data

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._entries: Dict[int, _ScanIndex._Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, kappa: int) -> bool:
        return kappa in self._entries

    def insert(
        self, point: Sequence[float], kappa: int, data: object = None
    ) -> "_ScanIndex._Entry":
        entry = self._Entry(point, kappa, data)
        self._entries[kappa] = entry
        return entry

    def delete(self, kappa: int) -> "_ScanIndex._Entry":
        return self._entries.pop(kappa)

    def remove_dominated(self, q: Sequence[float]) -> List["_ScanIndex._Entry"]:
        removed = [
            entry
            for entry in self._entries.values()
            if weakly_dominates(q, entry.point)
        ]
        for entry in removed:
            del self._entries[entry.kappa]
        return removed

    def max_kappa_dominator(
        self, q: Sequence[float], kappa_below: Optional[int] = None
    ) -> Optional["_ScanIndex._Entry"]:
        best = None
        for entry in self._entries.values():
            if kappa_below is not None and entry.kappa >= kappa_below:
                continue
            if weakly_dominates(entry.point, q):
                if best is None or entry.kappa > best.kappa:
                    best = entry
        return best

    def check_invariants(self) -> None:
        for kappa, entry in self._entries.items():
            if entry.kappa != kappa:
                raise corruption(
                    "scan_index",
                    "rtree-links",
                    f"index key {kappa} holds entry labelled {entry.kappa}",
                    kappas=(kappa,),
                )


class LinearScanNofNSkyline(NofNSkyline):
    """The n-of-N engine with linear scans instead of the R-tree.

    Same query semantics and outcomes as :class:`NofNSkyline`; only the
    maintenance-search substrate differs.  Exists for the ablation
    benchmarks and as a correctness cross-check.
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        **_ignored: object,
    ) -> None:
        # The stab cache lives on the interval tree, so it applies to
        # this variant unchanged; R-tree tuning (including the leaf
        # kernels) does not, and is absorbed by ``_ignored``.
        super().__init__(dim, capacity, sanitize=sanitize, query_cache=query_cache)
        # Swap the spatial index for the flat scan structure.
        self._rtree = _ScanIndex(dim)  # type: ignore[assignment]
