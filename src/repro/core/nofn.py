"""The n-of-N skyline engine (paper sections 3.1-3.3).

:class:`NofNSkyline` maintains, over an append-only stream, exactly the
state the paper proves sufficient for answering *every* n-of-N skyline
query (``n <= N``):

* ``R_N`` — the non-redundant elements (Theorem 1), held in an
  in-memory R-tree, an ordered label set, and an interval tree, wired
  together as in Figure 6;
* the **critical dominance graph** ``G_{R_N}`` — each element points to
  its youngest older dominator within ``R_N`` (a forest) — encoded as
  half-open intervals ``(kappa(parent), kappa(e)]`` (roots:
  ``(0, kappa(e)]``).

Per arrival, :meth:`append` runs Algorithm 1:

1. expire the oldest ``R_N`` element once it leaves the window,
   re-rooting its children's intervals to ``(0, kappa(child)]``;
2. find and eject ``D_{e_new}`` — everything the newcomer weakly
   dominates — via depth-first R-tree dominance reporting;
3. find the newcomer's critical dominator via best-first R-tree search;
4. install the newcomer's interval, R-tree entry and label.

:meth:`query` then answers an n-of-N query as a **stabbing query**
(Theorem 3): stab the interval tree with ``M - n + 1`` and report the
elements owning the stabbed intervals — ``O(log N + s)`` behaviour.

The label/threshold machinery is factored into small overridable hooks
so :class:`repro.core.timewindow.TimeWindowSkyline` can reuse the whole
engine with timestamps instead of positions (the paper's closing remark
in section 6).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, cast

from repro.accel.batch_prefilter import (
    BatchPrefilter,
    iter_chunks,
    resolve_batch_chunk,
)
from repro.accel.stab_cache import StabCache
from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, BatchOutcome, ExpiredRecord
from repro.core.stats import EngineStats
from repro.exceptions import (
    DimensionMismatchError,
    InvalidWindowError,
    StructureCorruptionError,
)
from repro.sanitize.sanitizer import InvariantSanitizer, SanitizeArg
from repro.structures.interval_tree import IntervalHandle, IntervalTree
from repro.structures.labelset import LabelSet
from repro.structures.rtree_soa import SoARTree, make_rtree


class _Record:
    """Book-keeping for one element of ``R_N``.

    Realises the 1-1 links of Figure 6: element <-> R-tree entry <->
    interval <-> label.
    """

    __slots__ = ("element", "label", "parent_kappa", "children", "handle", "entry")

    def __init__(self, element: StreamElement, label: float) -> None:
        self.element = element
        self.label = label
        self.parent_kappa: int = 0
        self.children: Set[int] = set()
        self.handle: Optional[IntervalHandle] = None
        self.entry = None


def _record_kappa(record: _Record) -> int:
    """Query-order sort key (module-level so the cache can share it)."""
    return record.element.kappa


class NofNSkyline:
    """Sliding-window engine answering all n-of-N skyline queries.

    Parameters
    ----------
    dim:
        Dimensionality of the stream's value vectors.
    capacity:
        ``N`` — the window size.  Queries may use any ``n <= N``.
    rtree_max_entries / rtree_min_entries:
        Fan-out bounds of the internal R-tree.
    sanitize:
        Runtime invariant checking: ``"off"`` (default), ``"sampled"``,
        ``"full"``, or a ready-made
        :class:`~repro.sanitize.InvariantSanitizer` to share between
        engines.  See :mod:`repro.sanitize`.
    query_cache:
        When true (the default), :meth:`query` answers through a
        :class:`~repro.accel.stab_cache.StabCache` — a versioned flat
        snapshot of the interval set with per-stab-point memoization —
        instead of stabbing the red-black tree per call.  Invalidation
        is exact (every structural write bumps the tree version), so
        answers are always identical to the uncached path.
    kernels:
        Vectorised R-tree leaf-search policy (``"auto"``/``"on"``/
        ``"off"``), forwarded to :class:`~repro.structures.rtree.RTree`
        (only meaningful for the pointer layout; the SoA layout is
        always vectorised).
    rtree_layout:
        Dominance-index layout: ``"auto"`` (struct-of-arrays when NumPy
        is importable, honouring the ``REPRO_RTREE_LAYOUT`` environment
        override — the default), ``"soa"`` or ``"pointer"``.  See
        :mod:`repro.structures.rtree_soa`; both layouts answer every
        search identically (property-tested).
    batch_chunk:
        Slice size of the :meth:`append_many` pipeline (``None`` — the
        default — means :data:`repro.accel.batch_prefilter.CHUNK`).
        Larger chunks amortise more index work per NumPy call; chunks
        are also the granularity of sanitizer verification during a
        batch.  Must be ``>= 1``.

    Notes
    -----
    Dominance is *weak* (coordinate-wise ``<=``): of exactly duplicated
    points only the youngest copy is retained and reported (DESIGN.md
    §7); under the paper's distinct-values assumption behaviour is
    identical to strict dominance.
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise InvalidWindowError(f"capacity must be >= 1, got {capacity}")
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        self.dim = dim
        self.capacity = capacity
        self._batch_chunk = resolve_batch_chunk(batch_chunk)
        self._sanitizer = InvariantSanitizer.coerce(sanitize)
        self._m = 0
        self._records: Dict[int, _Record] = {}
        self._labels: LabelSet[_Record] = LabelSet()
        self._intervals: IntervalTree[_Record] = IntervalTree()
        self._rtree = make_rtree(
            dim,
            max_entries=rtree_max_entries,
            min_entries=rtree_min_entries,
            split=rtree_split,
            kernels=kernels,
            layout=rtree_layout,
        )
        self._kernel_policy = kernels
        self._rtree_layout = rtree_layout
        # Memoized answers come back pre-sorted in query order, so the
        # cached query path never re-sorts.
        self._stab_cache: Optional[StabCache[_Record]] = (
            StabCache(self._intervals, sort_key=_record_kappa)
            if query_cache
            else None
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Hooks overridden by the time-window variant
    # ------------------------------------------------------------------

    def _assign_label(self, element: StreamElement) -> float:
        """The label used as interval endpoints; positions by default."""
        return element.kappa

    def _window_start(self, new_label: float) -> float:
        """Labels strictly below this value have left the window."""
        return self._m - self.capacity + 1

    def _note_arrival(self, label: float) -> None:
        """Per-arrival clock bookkeeping for the batched path (no-op for
        count-based windows; the time-window variant advances ``now``)."""

    def _final_threshold(self, last_label: float, count: int) -> float:
        """The value :meth:`_window_start` will return at the last of the
        next ``count`` arrivals (ending at ``last_label``) — the batched
        path's once-per-chunk expiry gate."""
        return self._m + count - self.capacity + 1

    # ------------------------------------------------------------------
    # Maintenance (Algorithm 1)
    # ------------------------------------------------------------------

    def append(self, values: Sequence[float], payload: Any = None) -> ArrivalOutcome:
        """Ingest one stream element; return what changed.

        The returned :class:`ArrivalOutcome` feeds the continuous-query
        manager (Algorithm 2); ad-hoc users may ignore it.
        """
        self._m += 1
        element = StreamElement(values, self._m, payload)
        label = self._assign_label(element)
        return self._arrive(element, label)

    def _arrive(self, element: StreamElement, label: float) -> ArrivalOutcome:
        # -- Lines 2-8: expire elements that left the window. ----------
        threshold = self._window_start(label)
        expired: List[ExpiredRecord] = []
        while self._labels:
            oldest_label, oldest = self._labels.oldest()
            if oldest_label >= threshold:
                break
            expired.append(self._expire(oldest))

        # -- Lines 9-13: eject D_{e_new}. ------------------------------
        dominated: List[StreamElement] = []
        for entry in self._rtree.remove_dominated(element.values):
            record: _Record = entry.data
            self._detach(record)
            dominated.append(record.element)

        # -- Lines 14-15: critical dominator + installation. -----------
        parent_entry = self._rtree.max_kappa_dominator(element.values)
        record = _Record(element, label)
        if parent_entry is None:
            low = 0.0
        else:
            parent: _Record = parent_entry.data
            record.parent_kappa = parent.element.kappa
            parent.children.add(element.kappa)
            low = parent.label
        record.handle = self._intervals.insert(low, label, record)
        record.entry = self._rtree.insert(element.values, element.kappa, record)
        self._labels.append(label, record)
        self._records[element.kappa] = record

        self.stats.record_arrival(
            expired=len(expired),
            dominated=len(dominated),
            rn_size=len(self._records),
        )
        if self._sanitizer is not None:
            self._sanitizer.maybe_verify(self)
        return ArrivalOutcome(
            element=element,
            seen_so_far=self._m,
            dominated_removed=tuple(dominated),
            parent_kappa=record.parent_kappa,
            expired=tuple(expired),
        )

    # ------------------------------------------------------------------
    # Batched ingestion fast path
    # ------------------------------------------------------------------

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> BatchOutcome:
        """Ingest a batch of stream elements; return what changed.

        Semantically identical to calling :meth:`append` once per point
        (the returned :class:`~repro.core.events.BatchOutcome` carries
        the exact per-element :class:`ArrivalOutcome` sequence those
        calls would have produced), but much faster on bursty feeds: a
        vectorised intra-batch prefilter proves which batch members are
        dominated by a younger same-batch member before any query could
        observe them, and those members skip all R-tree / interval-tree
        / label-set maintenance.  The window-expiry scan is likewise
        gated once per chunk instead of once per arrival.

        Validation is all-or-nothing: dimension mismatches and invalid
        values raise before any engine state changes.
        """
        elements = self._batch_elements(points, payloads)
        return self._ingest_batch(
            elements, [self._assign_label(e) for e in elements]
        )

    def _batch_elements(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]],
    ) -> List[StreamElement]:
        """Construct and validate the batch's elements without mutating
        engine state (all-or-nothing ingestion)."""
        pts = list(points)
        if payloads is None:
            payloads = [None] * len(pts)
        elif len(payloads) != len(pts):
            raise ValueError(
                f"got {len(pts)} points but {len(payloads)} payloads"
            )
        elements = []
        for offset, (values, payload) in enumerate(zip(pts, payloads)):
            element = StreamElement(values, self._m + offset + 1, payload)
            if len(element.values) != self.dim:
                raise DimensionMismatchError(self.dim, len(element.values))
            elements.append(element)
        return elements

    def _ingest_batch(
        self, elements: List[StreamElement], labels: List[float]
    ) -> BatchOutcome:
        """Run the chunked batch-arrival loop over validated elements."""
        started = perf_counter()
        outcomes: List[ArrivalOutcome] = []
        dropped = 0
        for lo, hi in iter_chunks(len(elements), self._batch_chunk):
            dropped += self._arrive_chunk(elements, labels, lo, hi, outcomes)
            if self._sanitizer is not None:
                self._sanitizer.maybe_verify(self)
        batch = BatchOutcome(tuple(outcomes), prefilter_dropped=dropped)
        self.stats.record_batch(
            size=len(elements), dropped=dropped, seconds=perf_counter() - started
        )
        return batch

    def _arrive_chunk(
        self,
        elements: List[StreamElement],
        labels: List[float],
        lo: int,
        hi: int,
        outcomes: List[ArrivalOutcome],
    ) -> int:
        """Ingest ``elements[lo:hi]``, appending one outcome per element.

        Dispatches to the fully batched pipeline when the dominance
        index is the SoA layout (batch searches + deferred bulk
        mutation); the pointer layout keeps the per-element loop.
        """
        if isinstance(self._rtree, SoARTree):
            return self._arrive_chunk_soa(elements, labels, lo, hi, outcomes)
        return self._arrive_chunk_fallback(elements, labels, lo, hi, outcomes)

    def _chunk_expiry_gate(
        self, labels: List[float], lo: int, hi: int
    ) -> bool:
        """Once-per-chunk expiry gate: if neither the oldest live label
        nor the chunk's own first label can fall below the window start
        as of the chunk's *last* arrival, no arrival in the chunk can
        expire anything (thresholds are monotone)."""
        threshold_end = self._final_threshold(labels[hi - 1], hi - lo)
        return labels[lo] < threshold_end or (
            bool(self._labels) and self._labels.oldest()[0] < threshold_end
        )

    def _expire_step(
        self,
        threshold: float,
        pending: Dict[int, _Record],
        defer: Optional[Callable[[int], None]] = None,
    ) -> List[ExpiredRecord]:
        """Run one arrival's merged pending/indexed expiry sweep."""
        expired: List[ExpiredRecord] = []
        while True:
            tree_oldest = self._labels.oldest() if self._labels else None
            pend_oldest = pending[next(iter(pending))] if pending else None
            if tree_oldest is not None and (
                pend_oldest is None or tree_oldest[0] <= pend_oldest.label
            ):
                if tree_oldest[0] >= threshold:
                    break
                expired.append(self._expire(tree_oldest[1], pending, defer))
            elif pend_oldest is not None:
                if pend_oldest.label >= threshold:
                    break
                expired.append(self._expire_pending(pend_oldest, pending))
            else:
                break
        return expired

    def _arrive_chunk_fallback(
        self,
        elements: List[StreamElement],
        labels: List[float],
        lo: int,
        hi: int,
        outcomes: List[ArrivalOutcome],
    ) -> int:
        """Per-element chunk ingestion (pointer-layout dominance index).

        Doomed members (those the prefilter proved dominated by a
        younger same-chunk member) are parked in ``pending`` — logically
        part of ``R_N``, but never inserted into the index structures —
        until their killer arrives or they expire.  Correctness of the
        shortcut rests on weak dominance being transitive: a pending
        member can never be the critical parent of a surviving member
        (its killer would doom the survivor too), so survivors resolve
        parents from the R-tree alone, while pending members merge the
        R-tree candidate with the youngest *alive* pending dominator.
        """
        chunk = elements[lo:hi]
        pre = BatchPrefilter([e.values for e in chunk], k=1)
        may_expire = self._chunk_expiry_gate(labels, lo, hi)
        pending: Dict[int, _Record] = {}
        for i, element in enumerate(chunk):
            label = labels[lo + i]
            self._m = element.kappa
            self._note_arrival(label)

            expired: List[ExpiredRecord] = []
            if may_expire:
                expired = self._expire_step(
                    self._window_start(label), pending
                )

            dominated: List[StreamElement] = []
            for entry in self._rtree.remove_dominated(element.values):
                tree_record: _Record = entry.data
                self._detach(tree_record)
                dominated.append(tree_record.element)
            for h in pre.killed_at(i):
                doomed = pending.pop(chunk[h].kappa, None)
                if doomed is None:
                    continue  # already expired
                parent = self._records.get(doomed.parent_kappa)
                if parent is None:
                    parent = pending.get(doomed.parent_kappa)
                if parent is not None:
                    parent.children.discard(doomed.element.kappa)
                dominated.append(doomed.element)

            record = _Record(element, label)
            parent_entry = self._rtree.max_kappa_dominator(element.values)
            if pre.is_doomed(i):
                best = None if parent_entry is None else parent_entry.data
                for h in pre.older_weak_dominators(i):
                    candidate = pending.get(chunk[h].kappa)
                    if candidate is not None:
                        if (
                            best is None
                            or candidate.element.kappa > best.element.kappa
                        ):
                            best = candidate
                        break
                    if chunk[h].kappa in self._records:
                        break  # a survivor: the R-tree search covered it
                    # else: killed or expired already — keep walking
                if best is not None:
                    record.parent_kappa = best.element.kappa
                    best.children.add(element.kappa)
                pending[element.kappa] = record
            else:
                if parent_entry is None:
                    low = 0.0
                else:
                    parent = parent_entry.data
                    record.parent_kappa = parent.element.kappa
                    parent.children.add(element.kappa)
                    low = parent.label
                record.handle = self._intervals.insert(low, label, record)
                record.entry = self._rtree.insert(
                    element.values, element.kappa, record
                )
                self._labels.append(label, record)
                self._records[element.kappa] = record

            self.stats.record_arrival(
                expired=len(expired),
                dominated=len(dominated),
                rn_size=len(self._records) + len(pending),
            )
            outcomes.append(
                ArrivalOutcome(
                    element=element,
                    seen_so_far=element.kappa,
                    dominated_removed=tuple(dominated),
                    parent_kappa=record.parent_kappa,
                    expired=tuple(expired),
                )
            )
        if pending:
            raise StructureCorruptionError(
                f"{len(pending)} doomed batch members survived their chunk"
            )
        return pre.dropped

    def _arrive_chunk_soa(
        self,
        elements: List[StreamElement],
        labels: List[float],
        lo: int,
        hi: int,
        outcomes: List[ArrivalOutcome],
    ) -> int:
        """Fully batched chunk ingestion over the SoA dominance index.

        The index is *frozen* for the duration of the chunk: both
        chunk-wide searches (:meth:`SoARTree.report_dominated_batch`,
        :meth:`SoARTree.max_kappa_dominator_batch`) run once up front
        against the chunk-start state, every per-arrival mutation is
        deferred, and the chunk flushes with one
        :meth:`SoARTree.delete_many` + one :meth:`SoARTree.insert_many`.
        Per-element semantics are reconstructed exactly:

        * dominance victims carry first-arrival attribution, and an
          arrival skips victims another arrival (or an expiry) already
          removed — the aliveness check against ``self._records``;
        * a chunk survivor is never dominated by any chunk member (the
          prefilter would have doomed it), so survivors installed
          mid-chunk only ever *leave* via expiry — handled by dropping
          their deferred insert;
        * critical parents resolve intra-chunk candidates from the
          prefilter's dominance matrix (youngest alive wins — chunk
          kappas exceed every indexed kappa) and fall back to the
          frozen-tree answer, walked past entries that died mid-chunk
          via ``max_kappa_dominator(kappa_below=...)``.
        """
        chunk = elements[lo:hi]
        points = [e.values for e in chunk]
        pre = BatchPrefilter(points, k=1)
        may_expire = self._chunk_expiry_gate(labels, lo, hi)
        # The dispatcher only routes here for the SoA layout.
        rtree = cast(SoARTree, self._rtree)
        victims0 = rtree.report_dominated_batch(points)
        parents0 = rtree.max_kappa_dominator_batch(points)
        deferred_deletes: List[int] = []
        deferred_inserts: Dict[int, _Record] = {}

        def defer_delete(kappa: int) -> None:
            if deferred_inserts.pop(kappa, None) is None:
                deferred_deletes.append(kappa)

        pending: Dict[int, _Record] = {}
        for i, element in enumerate(chunk):
            label = labels[lo + i]
            self._m = element.kappa
            self._note_arrival(label)

            expired: List[ExpiredRecord] = []
            if may_expire:
                expired = self._expire_step(
                    self._window_start(label), pending, defer_delete
                )

            dominated: List[StreamElement] = []
            for entry in victims0[i]:
                tree_record = self._records.get(entry.kappa)
                if tree_record is None:
                    continue  # expired earlier in the chunk
                self._detach(tree_record)
                defer_delete(entry.kappa)
                dominated.append(tree_record.element)
            for h in pre.killed_at(i):
                doomed = pending.pop(chunk[h].kappa, None)
                if doomed is None:
                    continue  # already expired
                parent = self._records.get(doomed.parent_kappa)
                if parent is None:
                    parent = pending.get(doomed.parent_kappa)
                if parent is not None:
                    parent.children.discard(doomed.element.kappa)
                dominated.append(doomed.element)

            record = _Record(element, label)
            # Intra-chunk parent candidates, youngest first.  Any alive
            # candidate outranks the whole frozen tree (chunk kappas are
            # the largest in the window).  For survivors only installed
            # chunk survivors can qualify — an *alive* pending dominator
            # would imply the survivor is doomed (transitivity).
            best: Optional[_Record] = None
            for h in pre.older_weak_dominators(i):
                kappa_h = chunk[h].kappa
                best = pending.get(kappa_h) or self._records.get(kappa_h)
                if best is not None:
                    break
                # killed or expired already — keep walking
            if best is None:
                parent_entry = parents0[i]
                while (
                    parent_entry is not None
                    and parent_entry.kappa not in self._records
                ):
                    # The frozen-tree answer died mid-chunk: descend.
                    parent_entry = rtree.max_kappa_dominator(
                        element.values, kappa_below=parent_entry.kappa
                    )
                if parent_entry is not None:
                    best = parent_entry.data
            if best is not None:
                record.parent_kappa = best.element.kappa
                best.children.add(element.kappa)
            if pre.is_doomed(i):
                pending[element.kappa] = record
            else:
                low = 0.0 if best is None else best.label
                record.handle = self._intervals.insert(low, label, record)
                deferred_inserts[element.kappa] = record
                self._labels.append(label, record)
                self._records[element.kappa] = record

            self.stats.record_arrival(
                expired=len(expired),
                dominated=len(dominated),
                rn_size=len(self._records) + len(pending),
            )
            outcomes.append(
                ArrivalOutcome(
                    element=element,
                    seen_so_far=element.kappa,
                    dominated_removed=tuple(dominated),
                    parent_kappa=record.parent_kappa,
                    expired=tuple(expired),
                )
            )
        if pending:
            raise StructureCorruptionError(
                f"{len(pending)} doomed batch members survived their chunk"
            )
        if deferred_deletes:
            rtree.delete_many(deferred_deletes)
        if deferred_inserts:
            survivors = list(deferred_inserts.values())
            entries = rtree.insert_many(
                [r.element.values for r in survivors],
                [r.element.kappa for r in survivors],
                survivors,
            )
            for survivor, entry in zip(survivors, entries):
                survivor.entry = entry
        return pre.dropped

    def _expire(
        self,
        record: _Record,
        pending: Optional[Dict[int, _Record]] = None,
        defer: Optional[Callable[[int], None]] = None,
    ) -> ExpiredRecord:
        """Remove an expired root from ``R_N``, re-rooting its children.

        ``pending`` is supplied by the batched path: a child may be a
        doomed batch member awaiting its in-batch killer — it has no
        interval yet, only a parent link to clear.  ``defer`` (the
        frozen-tree pipeline) replaces the R-tree delete with a
        deferred-mutation callback.
        """
        if record.parent_kappa != 0:
            raise StructureCorruptionError(
                f"expiring element {record.element.kappa} is not a root of "
                f"the dominance graph (critical parent "
                f"{record.parent_kappa} outlived it)"
            )
        children_elements: List[StreamElement] = []
        for child_kappa in sorted(record.children):
            child = self._records.get(child_kappa)
            if child is not None:
                child.handle = self._intervals.replace(
                    child.handle, 0.0, child.label
                )
            elif pending is not None and child_kappa in pending:
                child = pending[child_kappa]
            else:
                raise StructureCorruptionError(
                    f"dominance-graph child {child_kappa} of expiring "
                    f"element {record.element.kappa} is missing from R_N"
                )
            child.parent_kappa = 0
            children_elements.append(child.element)
        self._intervals.remove(record.handle)
        if defer is None:
            self._rtree.delete(record.element.kappa)
        else:
            defer(record.element.kappa)
        self._labels.remove(record.label)
        del self._records[record.element.kappa]
        record.handle = None
        record.entry = None
        return ExpiredRecord(
            element=record.element,
            children=tuple(children_elements),
        )

    def _expire_pending(
        self, record: _Record, pending: Dict[int, _Record]
    ) -> ExpiredRecord:
        """Expire a doomed batch member that left the window before its
        in-batch killer arrived (bursty time windows; count windows
        smaller than the chunk).  It owns no index entries — only the
        dominance-graph links need maintenance."""
        if record.parent_kappa != 0:
            raise StructureCorruptionError(
                f"expiring element {record.element.kappa} is not a root of "
                f"the dominance graph (critical parent "
                f"{record.parent_kappa} outlived it)"
            )
        del pending[record.element.kappa]
        children_elements: List[StreamElement] = []
        for child_kappa in sorted(record.children):
            child = pending.get(child_kappa)
            if child is None:
                raise StructureCorruptionError(
                    f"dominance-graph child {child_kappa} of expiring "
                    f"element {record.element.kappa} is missing from R_N"
                )
            child.parent_kappa = 0
            children_elements.append(child.element)
        return ExpiredRecord(
            element=record.element,
            children=tuple(children_elements),
        )

    def _detach(self, record: _Record) -> None:
        """Remove a dominated element's interval, label and parent link.

        The R-tree entry has already been removed by
        :meth:`RTree.remove_dominated`.
        """
        self._intervals.remove(record.handle)
        record.handle = None
        record.entry = None
        parent = self._records.get(record.parent_kappa)
        if parent is not None:
            parent.children.discard(record.element.kappa)
        self._labels.remove(record.label)
        del self._records[record.element.kappa]

    # ------------------------------------------------------------------
    # Query processing (Theorem 3 / section 3.2)
    # ------------------------------------------------------------------

    def query(self, n: int) -> List[StreamElement]:
        """Skyline of the most recent ``n`` elements, sorted by ``kappa``.

        Raises
        ------
        InvalidWindowError
            If ``n`` is not in ``[1, capacity]``.
        """
        stab = self._stab_point(n)
        if stab is None:
            self.stats.record_query(0)
            return []
        if self._stab_cache is not None:
            records = self._stab_cache.stab(stab)  # pre-sorted by kappa
        else:
            records = self._intervals.stab(stab)
            records.sort(key=_record_kappa)
        self.stats.record_query(len(records))
        return [r.element for r in records]

    def _stab_point(self, n: int) -> Optional[float]:
        if not 1 <= n <= self.capacity:
            raise InvalidWindowError(
                f"n must be in [1, {self.capacity}], got {n}"
            )
        if self._m == 0:
            return None
        # A query for more elements than have arrived degenerates to the
        # skyline of everything seen so far (stab point clamps to 1).
        return max(1, self._m - n + 1)

    def skyline(self) -> List[StreamElement]:
        """Skyline of the whole window (the classic sliding-window case,
        ``n = N``)."""
        return self.query(self.capacity)

    def query_scan(self, n: int) -> List[StreamElement]:
        """Ablation/debug variant of :meth:`query`: answer by scanning
        ``R_N`` and applying Theorem 3 directly, without the interval
        tree — ``O(|R_N|)`` instead of ``O(log N + s)``.

        Returns exactly what :meth:`query` returns; exists so the
        benchmarks can price the interval-tree design choice and so
        tests have an independent second implementation.
        """
        stab = self._stab_point(n)
        if stab is None:
            self.stats.record_query(0)
            return []
        results = []
        for kappa, record in self._records.items():
            parent_label = (
                0.0
                if record.parent_kappa == 0
                else self._records[record.parent_kappa].label
            )
            if parent_label < stab <= record.label:
                results.append(record.element)
        results.sort(key=lambda e: e.kappa)
        self.stats.record_query(len(results))
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def seen_so_far(self) -> int:
        """``M`` — number of elements ingested."""
        return self._m

    @property
    def rn_size(self) -> int:
        """``|R_N|`` — the minimized element count of Theorem 1."""
        return len(self._records)

    @property
    def sanitizer(self) -> Optional[InvariantSanitizer]:
        """The attached sanitizer, or ``None`` when checking is off."""
        return self._sanitizer

    @property
    def sanitize_mode(self) -> str:
        """The active sanitize mode (``"off"`` when none is attached)."""
        return "off" if self._sanitizer is None else self._sanitizer.mode

    @property
    def structure_version(self) -> int:
        """Monotonic version of the interval encoding; bumps on every
        arrival, expiry, dominance ejection and re-rooting (anything
        that can change a query answer)."""
        return self._intervals.version

    @property
    def stab_cache(self) -> Optional[StabCache[_Record]]:
        """The query cache, or ``None`` when ``query_cache=False``."""
        return self._stab_cache

    @property
    def kernel_policy(self) -> str:
        """The ``kernels`` knob this engine was built with."""
        return self._kernel_policy

    @property
    def rtree_layout(self) -> str:
        """The ``rtree_layout`` knob this engine was built with (the
        requested policy; the effective layout is
        ``engine._rtree.layout``)."""
        return self._rtree_layout

    @property
    def batch_chunk(self) -> int:
        """Effective :meth:`append_many` chunk size (the ``batch_chunk``
        knob, with ``None`` resolved to the module default)."""
        return self._batch_chunk

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss/rebuild counters of the query cache (``None`` when
        caching is disabled)."""
        if self._stab_cache is None:
            return None
        return self._stab_cache.stats()

    def non_redundant(self) -> List[StreamElement]:
        """The elements of ``R_N``, oldest first."""
        return [record.element for _, record in self._labels.items()]

    def critical_parent(self, kappa: int) -> Optional[StreamElement]:
        """The critical dominator of the ``R_N`` element labelled
        ``kappa`` (``None`` for roots)."""
        record = self._records[kappa]
        if record.parent_kappa == 0:
            return None
        return self._records[record.parent_kappa].element

    def children_of(self, kappa: int) -> List[StreamElement]:
        """Elements critically dominated by the element labelled
        ``kappa``, sorted by arrival."""
        record = self._records[kappa]
        return [self._records[c].element for c in sorted(record.children)]

    def dominance_graph_edges(self) -> List[tuple]:
        """All critical-dominance edges as ``(parent_kappa, child_kappa)``
        pairs (``parent_kappa == 0`` for roots)."""
        return sorted(
            (record.parent_kappa, kappa) for kappa, record in self._records.items()
        )

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify cross-structure consistency, the forest property and
        the paper's theorems over the current state.

        Raises
        ------
        StructureCorruptionError
            On the first violated invariant (survives ``python -O``).
        """
        from repro.sanitize.checks import verify_nofn

        verify_nofn(self)
