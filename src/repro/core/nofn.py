"""The n-of-N skyline engine (paper sections 3.1-3.3).

:class:`NofNSkyline` maintains, over an append-only stream, exactly the
state the paper proves sufficient for answering *every* n-of-N skyline
query (``n <= N``):

* ``R_N`` — the non-redundant elements (Theorem 1), held in an
  in-memory R-tree, an ordered label set, and an interval tree, wired
  together as in Figure 6;
* the **critical dominance graph** ``G_{R_N}`` — each element points to
  its youngest older dominator within ``R_N`` (a forest) — encoded as
  half-open intervals ``(kappa(parent), kappa(e)]`` (roots:
  ``(0, kappa(e)]``).

Per arrival, :meth:`append` runs Algorithm 1:

1. expire the oldest ``R_N`` element once it leaves the window,
   re-rooting its children's intervals to ``(0, kappa(child)]``;
2. find and eject ``D_{e_new}`` — everything the newcomer weakly
   dominates — via depth-first R-tree dominance reporting;
3. find the newcomer's critical dominator via best-first R-tree search;
4. install the newcomer's interval, R-tree entry and label.

:meth:`query` then answers an n-of-N query as a **stabbing query**
(Theorem 3): stab the interval tree with ``M - n + 1`` and report the
elements owning the stabbed intervals — ``O(log N + s)`` behaviour.

The label/threshold machinery is factored into small overridable hooks
so :class:`repro.core.timewindow.TimeWindowSkyline` can reuse the whole
engine with timestamps instead of positions (the paper's closing remark
in section 6).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core.dominance import weakly_dominates
from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, ExpiredRecord
from repro.core.stats import EngineStats
from repro.exceptions import InvalidWindowError
from repro.structures.interval_tree import IntervalHandle, IntervalTree
from repro.structures.labelset import LabelSet
from repro.structures.rtree import RTree


class _Record:
    """Book-keeping for one element of ``R_N``.

    Realises the 1-1 links of Figure 6: element <-> R-tree entry <->
    interval <-> label.
    """

    __slots__ = ("element", "label", "parent_kappa", "children", "handle", "entry")

    def __init__(self, element: StreamElement, label: float) -> None:
        self.element = element
        self.label = label
        self.parent_kappa: int = 0
        self.children: Set[int] = set()
        self.handle: Optional[IntervalHandle] = None
        self.entry = None


class NofNSkyline:
    """Sliding-window engine answering all n-of-N skyline queries.

    Parameters
    ----------
    dim:
        Dimensionality of the stream's value vectors.
    capacity:
        ``N`` — the window size.  Queries may use any ``n <= N``.
    rtree_max_entries / rtree_min_entries:
        Fan-out bounds of the internal R-tree.

    Notes
    -----
    Dominance is *weak* (coordinate-wise ``<=``): of exactly duplicated
    points only the youngest copy is retained and reported (DESIGN.md
    §7); under the paper's distinct-values assumption behaviour is
    identical to strict dominance.
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
    ) -> None:
        if capacity < 1:
            raise InvalidWindowError(f"capacity must be >= 1, got {capacity}")
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        self.dim = dim
        self.capacity = capacity
        self._m = 0
        self._records: Dict[int, _Record] = {}
        self._labels: LabelSet[_Record] = LabelSet()
        self._intervals: IntervalTree[_Record] = IntervalTree()
        self._rtree = RTree(
            dim,
            max_entries=rtree_max_entries,
            min_entries=rtree_min_entries,
            split=rtree_split,
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Hooks overridden by the time-window variant
    # ------------------------------------------------------------------

    def _assign_label(self, element: StreamElement) -> float:
        """The label used as interval endpoints; positions by default."""
        return element.kappa

    def _window_start(self, new_label: float) -> float:
        """Labels strictly below this value have left the window."""
        return self._m - self.capacity + 1

    # ------------------------------------------------------------------
    # Maintenance (Algorithm 1)
    # ------------------------------------------------------------------

    def append(self, values: Sequence[float], payload: Any = None) -> ArrivalOutcome:
        """Ingest one stream element; return what changed.

        The returned :class:`ArrivalOutcome` feeds the continuous-query
        manager (Algorithm 2); ad-hoc users may ignore it.
        """
        self._m += 1
        element = StreamElement(values, self._m, payload)
        label = self._assign_label(element)
        return self._arrive(element, label)

    def _arrive(self, element: StreamElement, label: float) -> ArrivalOutcome:
        # -- Lines 2-8: expire elements that left the window. ----------
        threshold = self._window_start(label)
        expired: List[ExpiredRecord] = []
        while self._labels:
            oldest_label, oldest = self._labels.oldest()
            if oldest_label >= threshold:
                break
            expired.append(self._expire(oldest))

        # -- Lines 9-13: eject D_{e_new}. ------------------------------
        dominated: List[StreamElement] = []
        for entry in self._rtree.remove_dominated(element.values):
            record: _Record = entry.data
            self._detach(record)
            dominated.append(record.element)

        # -- Lines 14-15: critical dominator + installation. -----------
        parent_entry = self._rtree.max_kappa_dominator(element.values)
        record = _Record(element, label)
        if parent_entry is None:
            low = 0.0
        else:
            parent: _Record = parent_entry.data
            record.parent_kappa = parent.element.kappa
            parent.children.add(element.kappa)
            low = parent.label
        record.handle = self._intervals.insert(low, label, record)
        record.entry = self._rtree.insert(element.values, element.kappa, record)
        self._labels.append(label, record)
        self._records[element.kappa] = record

        self.stats.record_arrival(
            expired=len(expired),
            dominated=len(dominated),
            rn_size=len(self._records),
        )
        return ArrivalOutcome(
            element=element,
            seen_so_far=self._m,
            dominated_removed=tuple(dominated),
            parent_kappa=record.parent_kappa,
            expired=tuple(expired),
        )

    def _expire(self, record: _Record) -> ExpiredRecord:
        """Remove an expired root from ``R_N``, re-rooting its children."""
        assert record.parent_kappa == 0, (
            "the oldest element of R_N must be a root of the dominance graph"
        )
        children = sorted(record.children)
        for child_kappa in children:
            child = self._records[child_kappa]
            child.handle = self._intervals.replace(child.handle, 0.0, child.label)
            child.parent_kappa = 0
        self._intervals.remove(record.handle)
        self._rtree.delete(record.element.kappa)
        self._labels.remove(record.label)
        del self._records[record.element.kappa]
        record.handle = None
        record.entry = None
        return ExpiredRecord(
            element=record.element,
            children=tuple(self._records[k].element for k in children),
        )

    def _detach(self, record: _Record) -> None:
        """Remove a dominated element's interval, label and parent link.

        The R-tree entry has already been removed by
        :meth:`RTree.remove_dominated`.
        """
        self._intervals.remove(record.handle)
        record.handle = None
        record.entry = None
        parent = self._records.get(record.parent_kappa)
        if parent is not None:
            parent.children.discard(record.element.kappa)
        self._labels.remove(record.label)
        del self._records[record.element.kappa]

    # ------------------------------------------------------------------
    # Query processing (Theorem 3 / section 3.2)
    # ------------------------------------------------------------------

    def query(self, n: int) -> List[StreamElement]:
        """Skyline of the most recent ``n`` elements, sorted by ``kappa``.

        Raises
        ------
        InvalidWindowError
            If ``n`` is not in ``[1, capacity]``.
        """
        stab = self._stab_point(n)
        if stab is None:
            self.stats.record_query(0)
            return []
        records = self._intervals.stab(stab)
        records.sort(key=lambda r: r.element.kappa)
        self.stats.record_query(len(records))
        return [r.element for r in records]

    def _stab_point(self, n: int) -> Optional[float]:
        if not 1 <= n <= self.capacity:
            raise InvalidWindowError(
                f"n must be in [1, {self.capacity}], got {n}"
            )
        if self._m == 0:
            return None
        # A query for more elements than have arrived degenerates to the
        # skyline of everything seen so far (stab point clamps to 1).
        return max(1, self._m - n + 1)

    def skyline(self) -> List[StreamElement]:
        """Skyline of the whole window (the classic sliding-window case,
        ``n = N``)."""
        return self.query(self.capacity)

    def query_scan(self, n: int) -> List[StreamElement]:
        """Ablation/debug variant of :meth:`query`: answer by scanning
        ``R_N`` and applying Theorem 3 directly, without the interval
        tree — ``O(|R_N|)`` instead of ``O(log N + s)``.

        Returns exactly what :meth:`query` returns; exists so the
        benchmarks can price the interval-tree design choice and so
        tests have an independent second implementation.
        """
        stab = self._stab_point(n)
        if stab is None:
            self.stats.record_query(0)
            return []
        results = []
        for kappa, record in self._records.items():
            parent_label = (
                0.0
                if record.parent_kappa == 0
                else self._records[record.parent_kappa].label
            )
            if parent_label < stab <= record.label:
                results.append(record.element)
        results.sort(key=lambda e: e.kappa)
        self.stats.record_query(len(results))
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def seen_so_far(self) -> int:
        """``M`` — number of elements ingested."""
        return self._m

    @property
    def rn_size(self) -> int:
        """``|R_N|`` — the minimized element count of Theorem 1."""
        return len(self._records)

    def non_redundant(self) -> List[StreamElement]:
        """The elements of ``R_N``, oldest first."""
        return [record.element for _, record in self._labels.items()]

    def critical_parent(self, kappa: int) -> Optional[StreamElement]:
        """The critical dominator of the ``R_N`` element labelled
        ``kappa`` (``None`` for roots)."""
        record = self._records[kappa]
        if record.parent_kappa == 0:
            return None
        return self._records[record.parent_kappa].element

    def children_of(self, kappa: int) -> List[StreamElement]:
        """Elements critically dominated by the element labelled
        ``kappa``, sorted by arrival."""
        record = self._records[kappa]
        return [self._records[c].element for c in sorted(record.children)]

    def dominance_graph_edges(self) -> List[tuple]:
        """All critical-dominance edges as ``(parent_kappa, child_kappa)``
        pairs (``parent_kappa == 0`` for roots)."""
        return sorted(
            (record.parent_kappa, kappa) for kappa, record in self._records.items()
        )

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert cross-structure consistency and the forest property."""
        assert len(self._records) == len(self._labels) == len(self._rtree)
        assert len(self._intervals) == len(self._records)
        self._rtree.check_invariants()
        self._intervals.check_invariants()
        self._labels.check_invariants()
        for kappa, record in self._records.items():
            assert record.element.kappa == kappa
            assert record.handle is not None
            interval = record.handle.interval
            assert interval.high == record.label
            if record.parent_kappa == 0:
                assert interval.low == 0.0
            else:
                parent = self._records[record.parent_kappa]
                assert interval.low == parent.label
                assert kappa in parent.children
                assert parent.element.kappa < kappa, "parent must be older"
                assert weakly_dominates(
                    parent.element.values, record.element.values
                ), "parent must dominate child"
            for child_kappa in record.children:
                assert self._records[child_kappa].parent_kappa == kappa
