"""Lightweight engine telemetry.

The performance study (section 5) reports per-element maintenance cost,
``|R_N|`` sizes (Figure 4) and query workload mixes.  The engines keep
these counters so the benchmark harness — and downstream users sizing a
deployment — can read them without instrumenting the hot path
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Counters accumulated by a window-skyline engine."""

    arrivals: int = 0
    expiries: int = 0
    dominated_removed: int = 0
    queries: int = 0
    query_results: int = 0
    rn_size_peak: int = 0
    rn_size_sum: int = 0
    # -- batched-ingestion counters (``append_many``) ------------------
    batches: int = 0
    batch_elements: int = 0
    prefilter_dropped: int = 0
    batch_size_peak: int = 0
    batch_seconds_total: float = 0.0
    batch_seconds_max: float = 0.0

    def record_arrival(self, expired: int, dominated: int, rn_size: int) -> None:
        """Account one maintenance step."""
        self.arrivals += 1
        self.expiries += expired
        self.dominated_removed += dominated
        if rn_size > self.rn_size_peak:
            self.rn_size_peak = rn_size
        self.rn_size_sum += rn_size

    def record_batch(self, size: int, dropped: int, seconds: float) -> None:
        """Account one ``append_many`` call.

        The batch's arrivals are *also* accounted individually through
        :meth:`record_arrival` (outcome parity with per-element
        ingestion); these counters describe only the batching itself.
        """
        self.batches += 1
        self.batch_elements += size
        self.prefilter_dropped += dropped
        if size > self.batch_size_peak:
            self.batch_size_peak = size
        self.batch_seconds_total += seconds
        if seconds > self.batch_seconds_max:
            self.batch_seconds_max = seconds

    def record_query(self, result_size: int) -> None:
        """Account one ad-hoc query."""
        self.queries += 1
        self.query_results += result_size

    @property
    def rn_size_mean(self) -> float:
        """Mean ``|R_N|`` observed after each arrival (0 when idle)."""
        if self.arrivals == 0:
            return 0.0
        return self.rn_size_sum / self.arrivals

    @property
    def mean_result_size(self) -> float:
        """Mean skyline size per query (0 when no queries ran)."""
        if self.queries == 0:
            return 0.0
        return self.query_results / self.queries

    @property
    def batch_size_mean(self) -> float:
        """Mean ``append_many`` batch size (0 when none ran)."""
        if self.batches == 0:
            return 0.0
        return self.batch_elements / self.batches

    @property
    def prefilter_kill_rate(self) -> float:
        """Fraction of batched elements the intra-batch prefilter kept
        out of the index entirely (0 when no batches ran)."""
        if self.batch_elements == 0:
            return 0.0
        return self.prefilter_dropped / self.batch_elements

    @property
    def batch_seconds_mean(self) -> float:
        """Mean wall-clock latency per ``append_many`` call."""
        if self.batches == 0:
            return 0.0
        return self.batch_seconds_total / self.batches

    @property
    def batch_throughput(self) -> float:
        """Sustained elements/second across all batched ingestion."""
        if self.batch_seconds_total == 0.0:
            return 0.0
        return self.batch_elements / self.batch_seconds_total

    def snapshot_raw(self) -> dict:
        """The raw counters, for persistence round-trips."""
        return {
            "arrivals": self.arrivals,
            "expiries": self.expiries,
            "dominated_removed": self.dominated_removed,
            "queries": self.queries,
            "query_results": self.query_results,
            "rn_size_peak": self.rn_size_peak,
            "rn_size_sum": self.rn_size_sum,
            "batches": self.batches,
            "batch_elements": self.batch_elements,
            "prefilter_dropped": self.prefilter_dropped,
            "batch_size_peak": self.batch_size_peak,
            "batch_seconds_total": self.batch_seconds_total,
            "batch_seconds_max": self.batch_seconds_max,
        }

    def snapshot(self) -> dict:
        """A plain-dict copy for reporting."""
        return {
            "arrivals": self.arrivals,
            "expiries": self.expiries,
            "dominated_removed": self.dominated_removed,
            "queries": self.queries,
            "rn_size_peak": self.rn_size_peak,
            "rn_size_mean": self.rn_size_mean,
            "mean_result_size": self.mean_result_size,
            "batches": self.batches,
            "batch_size_mean": self.batch_size_mean,
            "prefilter_kill_rate": self.prefilter_kill_rate,
            "batch_seconds_mean": self.batch_seconds_mean,
            "batch_seconds_max": self.batch_seconds_max,
        }
