"""Lightweight engine telemetry.

The performance study (section 5) reports per-element maintenance cost,
``|R_N|`` sizes (Figure 4) and query workload mixes.  The engines keep
these counters so the benchmark harness — and downstream users sizing a
deployment — can read them without instrumenting the hot path
themselves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Counters accumulated by a window-skyline engine."""

    arrivals: int = 0
    expiries: int = 0
    dominated_removed: int = 0
    queries: int = 0
    query_results: int = 0
    rn_size_peak: int = 0
    rn_size_sum: int = 0

    def record_arrival(self, expired: int, dominated: int, rn_size: int) -> None:
        """Account one maintenance step."""
        self.arrivals += 1
        self.expiries += expired
        self.dominated_removed += dominated
        if rn_size > self.rn_size_peak:
            self.rn_size_peak = rn_size
        self.rn_size_sum += rn_size

    def record_query(self, result_size: int) -> None:
        """Account one ad-hoc query."""
        self.queries += 1
        self.query_results += result_size

    @property
    def rn_size_mean(self) -> float:
        """Mean ``|R_N|`` observed after each arrival (0 when idle)."""
        if self.arrivals == 0:
            return 0.0
        return self.rn_size_sum / self.arrivals

    @property
    def mean_result_size(self) -> float:
        """Mean skyline size per query (0 when no queries ran)."""
        if self.queries == 0:
            return 0.0
        return self.query_results / self.queries

    def snapshot_raw(self) -> dict:
        """The raw counters, for persistence round-trips."""
        return {
            "arrivals": self.arrivals,
            "expiries": self.expiries,
            "dominated_removed": self.dominated_removed,
            "queries": self.queries,
            "query_results": self.query_results,
            "rn_size_peak": self.rn_size_peak,
            "rn_size_sum": self.rn_size_sum,
        }

    def snapshot(self) -> dict:
        """A plain-dict copy for reporting."""
        return {
            "arrivals": self.arrivals,
            "expiries": self.expiries,
            "dominated_removed": self.dominated_removed,
            "queries": self.queries,
            "rn_size_peak": self.rn_size_peak,
            "rn_size_mean": self.rn_size_mean,
            "mean_result_size": self.mean_result_size,
        }
