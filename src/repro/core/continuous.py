"""Continuous n-of-N queries (paper section 3.4, Algorithm 2).

A continuous query is registered once and its result set ``S_n`` is
kept up to date as the stream advances.  Re-running the stabbing query
per arrival costs ``O(log N + s)``; the trigger-based algorithm here
instead applies Proposition 1 incrementally:

* **Deletion** — a result element leaves when the newcomer dominates it
  or when it expires from the most recent ``n`` elements;
* **Insertion** — the newcomer enters when its critical dominator (if
  any) is already outside the window; and when a result element
  expires, the elements it *critically dominated* take its place
  (cascading until the trigger heap's top is inside the window again).

Each query keeps a **min-heap on kappa** over ``S_n`` — the trigger
list.  Only the heap top must be examined per arrival, giving
``O(delta)`` result maintenance plus ``O(log s)`` heap work per result
change, where ``delta`` is the number of result changes.

The manager consumes the :class:`~repro.core.events.ArrivalOutcome`
emitted by :meth:`NofNSkyline.append`; this realises the paper's
"linking an element to the continuous queries which are using it".

Registration seeds each query's result set through
:meth:`NofNSkyline.query`, so it answers from the engine's versioned
stab cache when that is enabled — registering many queries between
arrivals costs one snapshot rebuild, not one tree walk per query.

Usage::

    engine = NofNSkyline(dim=2, capacity=1000)
    manager = ContinuousQueryManager(engine)
    handle = manager.register(n=100)
    for point in stream:
        manager.append(point)          # feeds engine + all queries
        current = handle.result()      # always equals engine.query(100)
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, BatchOutcome
from repro.core.nofn import NofNSkyline
from repro.exceptions import InvalidWindowError, QueryNotRegisteredError
from repro.sanitize.sanitizer import InvariantSanitizer, SanitizeArg
from repro.structures.heap import MinIndexedHeap

if TYPE_CHECKING:
    from repro.accel.stab_cache import StabCache


class ContinuousQueryHandle:
    """A registered continuous n-of-N query.

    The handle owns the query's result set and trigger heap; it is
    updated by its :class:`ContinuousQueryManager` and read by the
    application.
    """

    __slots__ = ("query_id", "n", "_members", "_heap", "changes")

    def __init__(self, query_id: int, n: int) -> None:
        self.query_id = query_id
        self.n = n
        self._members: Dict[int, StreamElement] = {}
        self._heap: MinIndexedHeap[int] = MinIndexedHeap()
        #: Number of element insertions+deletions applied since
        #: registration (the paper's cumulative ``delta``).
        self.changes = 0

    def result(self) -> List[StreamElement]:
        """The current skyline of the most recent ``n`` elements,
        sorted by arrival position."""
        return [self._members[k] for k in sorted(self._members)]

    def result_kappas(self) -> List[int]:
        """Arrival labels of the current result, ascending."""
        return sorted(self._members)

    def __contains__(self, kappa: int) -> bool:
        return kappa in self._members

    def __len__(self) -> int:
        return len(self._members)

    # -- mutations (manager only) --------------------------------------

    def _add(self, element: StreamElement) -> None:
        self._members[element.kappa] = element
        self._heap.push(element.kappa, element.kappa)
        self.changes += 1

    def _remove(self, kappa: int) -> None:
        del self._members[kappa]
        self._heap.delete(kappa)
        self.changes += 1


class ContinuousQueryManager:
    """Runs any number of continuous n-of-N queries over one engine.

    The manager wraps an :class:`NofNSkyline`; feed the stream through
    :meth:`append` / :meth:`append_many` (or call :meth:`process` /
    :meth:`process_batch` yourself with the outcomes of
    ``engine.append`` / ``engine.append_many`` if you drive the engine
    directly — every outcome since the manager's construction must reach
    it, in order).

    The manager keeps its own mirror of the critical dominance forest,
    advanced purely from the outcomes it consumes.  That makes trigger
    processing independent of the engine's *current* state — essential
    for batched ingestion, where the engine has already advanced to the
    end of the batch while the manager replays the batch's outcomes one
    arrival at a time.

    Parameters
    ----------
    engine:
        The n-of-N engine to wrap.
    sanitize:
        Runtime invariant checking of the manager's own state (trigger
        heaps, graph mirror, result sync): ``"off"`` (default),
        ``"sampled"``, ``"full"``, or a shared
        :class:`~repro.sanitize.InvariantSanitizer`.  Independent of
        the engine's own ``sanitize`` setting.
    """

    def __init__(
        self, engine: NofNSkyline, sanitize: SanitizeArg = "off"
    ) -> None:
        self.engine = engine
        self._sanitizer = InvariantSanitizer.coerce(sanitize)
        self._queries: Dict[int, ContinuousQueryHandle] = {}
        self._next_id = 1
        # Dominance-forest mirror over R_N: element, parent kappa (0 for
        # roots) and children kappas per retained element.
        self._graph_elements: Dict[int, StreamElement] = {}
        self._graph_parent: Dict[int, int] = {}
        self._graph_children: Dict[int, Set[int]] = {}
        for element in engine.non_redundant():
            self._graph_elements[element.kappa] = element
            self._graph_children[element.kappa] = set()
        for parent_kappa, child_kappa in engine.dominance_graph_edges():
            self._graph_parent[child_kappa] = parent_kappa
            if parent_kappa:
                self._graph_children[parent_kappa].add(child_kappa)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, n: int) -> ContinuousQueryHandle:
        """Register a continuous n-of-N query.

        The initial result is computed with one stabbing query; from
        then on the result is maintained incrementally.
        """
        if not 1 <= n <= self.engine.capacity:
            raise InvalidWindowError(
                f"n must be in [1, {self.engine.capacity}], got {n}"
            )
        handle = ContinuousQueryHandle(self._next_id, n)
        self._next_id += 1
        for element in self.engine.query(n):
            handle._add(element)
        handle.changes = 0
        self._queries[handle.query_id] = handle
        return handle

    def unregister(self, handle: ContinuousQueryHandle) -> None:
        """Stop maintaining ``handle``."""
        if self._queries.pop(handle.query_id, None) is None:
            raise QueryNotRegisteredError(
                f"query {handle.query_id} is not registered here"
            )

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[ContinuousQueryHandle]:
        return iter(list(self._queries.values()))

    # ------------------------------------------------------------------
    # Stream feeding
    # ------------------------------------------------------------------

    def append(self, values: Sequence[float], payload: Any = None) -> ArrivalOutcome:
        """Feed one element to the engine and update every query."""
        outcome = self.engine.append(values, payload)
        self.process(outcome)
        return outcome

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> BatchOutcome:
        """Feed a batch to the engine and update every query.

        Every query fires exactly the triggers — in the same order —
        that element-by-element :meth:`append` calls would have fired.
        """
        batch = self.engine.append_many(points, payloads)
        self.process_batch(batch)
        return batch

    def process_batch(self, batch: BatchOutcome) -> None:
        """Apply a batch's changes arrival by arrival to every query."""
        for outcome in batch:
            self.process(outcome)

    def process(self, outcome: ArrivalOutcome) -> None:
        """Apply one arrival's changes (Algorithm 2) to every query."""
        removed_kappas = outcome.removed_kappas
        # Children of an element that expired from R_N this arrival are
        # dropped from the mirror below; resolve them from the outcome's
        # captured snapshot instead.
        expired_children = {
            rec.element.kappa: rec.children for rec in outcome.expired
        }
        self._advance_graph(outcome)
        for handle in self._queries.values():
            self._process_query(handle, outcome, removed_kappas, expired_children)
        if self._sanitizer is not None:
            self._sanitizer.maybe_verify(self)

    def _advance_graph(self, outcome: ArrivalOutcome) -> None:
        """Replay one arrival's maintenance on the dominance-forest
        mirror (same order as Algorithm 1: expire, eject, install)."""
        for rec in outcome.expired:
            kappa = rec.element.kappa
            for child in rec.children:
                self._graph_parent[child.kappa] = 0
            self._graph_elements.pop(kappa, None)
            self._graph_parent.pop(kappa, None)
            self._graph_children.pop(kappa, None)
        for element in outcome.dominated_removed:
            kappa = element.kappa
            parent_kappa = self._graph_parent.pop(kappa, 0)
            children = self._graph_children.get(parent_kappa)
            if children is not None:
                children.discard(kappa)
            self._graph_elements.pop(kappa, None)
            self._graph_children.pop(kappa, None)
        newcomer = outcome.element
        self._graph_elements[newcomer.kappa] = newcomer
        self._graph_parent[newcomer.kappa] = outcome.parent_kappa
        self._graph_children[newcomer.kappa] = set()
        if outcome.parent_kappa:
            self._graph_children[outcome.parent_kappa].add(newcomer.kappa)

    def _process_query(
        self,
        handle: ContinuousQueryHandle,
        outcome: ArrivalOutcome,
        removed_kappas: frozenset,
        expired_children: Dict[int, tuple],
    ) -> None:
        window_start = outcome.seen_so_far - handle.n + 1

        # Lines 3-5: drop result elements the newcomer dominates.
        for element in outcome.dominated_removed:
            if element.kappa in handle:
                handle._remove(element.kappa)

        # Lines 6-8: the newcomer joins unless its critical dominator is
        # still inside the n-window.  (A root always joins — including
        # early in the stream, when the window is not yet full and
        # ``window_start`` is non-positive.)
        if outcome.parent_kappa == 0 or outcome.parent_kappa < window_start:
            handle._add(outcome.element)

        # Lines 9-14: fire the trigger while the heap top has expired
        # from the n-window; each firing promotes the children of the
        # expired result element (cascading if a child is itself already
        # outside the window).
        heap = handle._heap
        while heap:
            top_kappa, _ = heap.peek()
            if top_kappa >= window_start:
                break
            handle._remove(top_kappa)
            for child in self._children_of(top_kappa, expired_children):
                if child.kappa in removed_kappas or child.kappa in handle:
                    # Dominated by the newcomer this very arrival (and
                    # hence not skyline), or already present.
                    continue
                handle._add(child)

    def _children_of(
        self, kappa: int, expired_children: Dict[int, tuple]
    ) -> List[StreamElement]:
        """Critical children of ``kappa`` as of the arrival being
        processed.

        Resolved from the manager's dominance-forest mirror when the
        element is still in ``R_N``, otherwise from the expiry snapshot
        captured in the arrival outcome.  (The live engine is never
        consulted: during batch processing it is already at the end of
        the batch, ahead of the arrival being replayed.)
        """
        if kappa in expired_children:
            return list(expired_children[kappa])
        children = self._graph_children.get(kappa, ())
        return [self._graph_elements[c] for c in sorted(children)]

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    @property
    def sanitizer(self) -> Optional[InvariantSanitizer]:
        """The attached sanitizer, or ``None`` when checking is off."""
        return self._sanitizer

    @property
    def sanitize_mode(self) -> str:
        """The active sanitize mode (``"off"`` when none is attached)."""
        return "off" if self._sanitizer is None else self._sanitizer.mode

    @property
    def structure_version(self) -> int:
        """Monotonic version of the wrapped engine's interval encoding."""
        return self.engine.structure_version

    @property
    def stab_cache(self) -> "Optional[StabCache[Any]]":
        """The wrapped engine's query cache (``None`` when disabled)."""
        return self.engine.stab_cache

    @property
    def kernel_policy(self) -> str:
        """The ``kernels`` knob the wrapped engine was built with."""
        return self.engine.kernel_policy

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss/rebuild counters of the wrapped engine's query
        cache (``None`` when caching is disabled)."""
        return self.engine.cache_stats()

    def check_invariants(self) -> None:
        """Verify trigger heaps, the graph mirror and result sync.

        Raises
        ------
        StructureCorruptionError
            On the first violated invariant (survives ``python -O``).
        """
        from repro.sanitize.checks import verify_continuous

        verify_continuous(self)
