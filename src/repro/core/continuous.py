"""Continuous n-of-N queries (paper section 3.4, Algorithm 2).

A continuous query is registered once and its result set ``S_n`` is
kept up to date as the stream advances.  Re-running the stabbing query
per arrival costs ``O(log N + s)``; the trigger-based algorithm here
instead applies Proposition 1 incrementally:

* **Deletion** — a result element leaves when the newcomer dominates it
  or when it expires from the most recent ``n`` elements;
* **Insertion** — the newcomer enters when its critical dominator (if
  any) is already outside the window; and when a result element
  expires, the elements it *critically dominated* take its place
  (cascading until the trigger heap's top is inside the window again).

Each query keeps a **min-heap on kappa** over ``S_n`` — the trigger
list.  Only the heap top must be examined per arrival, giving
``O(delta)`` result maintenance plus ``O(log s)`` heap work per result
change, where ``delta`` is the number of result changes.

The manager consumes the :class:`~repro.core.events.ArrivalOutcome`
emitted by :meth:`NofNSkyline.append`; this realises the paper's
"linking an element to the continuous queries which are using it".

Registration seeds each query's result set through
:meth:`NofNSkyline.query`, so it answers from the engine's versioned
stab cache when that is enabled — registering many queries between
arrivals costs one snapshot rebuild, not one tree walk per query.

**Dispatch** is sublinear in the number of registered queries: handles
are deduped into per-``n`` :class:`~repro.core.query_index.QueryGroup`
objects kept on a sorted axis, and each arrival's change records are
routed to only the affected contiguous group range by binary search —
``O(log Q + affected)`` per event instead of the seed's ``O(Q)`` loop
(see :mod:`repro.core.query_index` for the derivation, and the
``query_index`` knob below for the escape hatch).

Usage::

    engine = NofNSkyline(dim=2, capacity=1000)
    manager = ContinuousQueryManager(engine)
    handle = manager.register(n=100)
    for point in stream:
        manager.append(point)          # feeds engine + all queries
        current = handle.result()      # always equals engine.query(100)
"""

from __future__ import annotations

import bisect
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, BatchOutcome
from repro.core.nofn import NofNSkyline
from repro.core.query_index import (
    INDEX_MODES,
    QueryGroup,
    QueryIndex,
    resolve_index_mode,
)
from repro.exceptions import InvalidWindowError, QueryNotRegisteredError
from repro.sanitize.sanitizer import InvariantSanitizer, SanitizeArg
from repro.structures.heap import MinIndexedHeap

try:  # pragma: no cover - exercised via both CI environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:
    from repro.accel.stab_cache import StabCache

__all__ = [
    "INDEX_MODES",
    "ContinuousQueryHandle",
    "ContinuousQueryManager",
]

#: Minimum number of change records in a batch before the vectorised
#: ``searchsorted`` routing pass beats per-record ``bisect`` calls.
_BATCH_KERNEL_MIN = 8


class ContinuousQueryHandle:
    """A registered continuous n-of-N query.

    The handle is a *view* onto the :class:`QueryGroup` shared by every
    registered query with the same ``n``; it is updated by its
    :class:`ContinuousQueryManager` and read by the application.
    ``changes`` counts this handle's insertions+deletions since its own
    registration (the group's counter minus a per-handle base), so two
    handles at the same ``n`` registered at different times report
    different counts — exactly as the per-handle implementation did.
    """

    __slots__ = ("query_id", "n", "_group", "_changes_base")

    def __init__(
        self, query_id: int, n: int, group: QueryGroup, changes_base: int
    ) -> None:
        self.query_id = query_id
        self.n = n
        self._group = group
        self._changes_base = changes_base

    @property
    def changes(self) -> int:
        """Number of element insertions+deletions applied since
        registration (the paper's cumulative ``delta``)."""
        return self._group.changes - self._changes_base

    @property
    def _members(self) -> Dict[int, StreamElement]:
        return self._group._members

    @property
    def _heap(self) -> MinIndexedHeap[int]:
        return self._group._heap

    def result(self) -> List[StreamElement]:
        """The current skyline of the most recent ``n`` elements,
        sorted by arrival position."""
        return self._group.result()

    def result_kappas(self) -> List[int]:
        """Arrival labels of the current result, ascending."""
        return self._group.result_kappas()

    def __contains__(self, kappa: int) -> bool:
        return kappa in self._group

    def __len__(self) -> int:
        return len(self._group)


class ContinuousQueryManager:
    """Runs any number of continuous n-of-N queries over one engine.

    The manager wraps an :class:`NofNSkyline`; feed the stream through
    :meth:`append` / :meth:`append_many` (or call :meth:`process` /
    :meth:`process_batch` yourself with the outcomes of
    ``engine.append`` / ``engine.append_many`` if you drive the engine
    directly — every outcome since the manager's construction must reach
    it, in order).

    The manager keeps its own mirror of the critical dominance forest,
    advanced purely from the outcomes it consumes.  That makes trigger
    processing independent of the engine's *current* state — essential
    for batched ingestion, where the engine has already advanced to the
    end of the batch while the manager replays the batch's outcomes one
    arrival at a time.

    Parameters
    ----------
    engine:
        The n-of-N engine to wrap.
    sanitize:
        Runtime invariant checking of the manager's own state (trigger
        heaps, graph mirror, result sync, query-index structure):
        ``"off"`` (default), ``"sampled"``, ``"full"``, or a shared
        :class:`~repro.sanitize.InvariantSanitizer`.  Independent of
        the engine's own ``sanitize`` setting.
    query_index:
        Dispatch strategy for registered queries.  ``"auto"`` (default)
        and ``"on"`` dedupe handles into per-``n`` groups on a sorted
        stab-point axis and route each change record to its contiguous
        group range by binary search; ``"off"`` keeps the seed
        per-handle ``O(Q)`` loop (the measured baseline).  Results,
        ``changes`` counters and trigger order are identical either way.
    """

    def __init__(
        self,
        engine: NofNSkyline,
        sanitize: SanitizeArg = "off",
        query_index: str = "auto",
    ) -> None:
        self.engine = engine
        #: The resolved ``query_index`` knob: ``"on"`` or ``"off"``.
        self.query_index = resolve_index_mode(query_index)
        self._sanitizer = InvariantSanitizer.coerce(sanitize)
        self._queries: Dict[int, ContinuousQueryHandle] = {}
        self._next_id = 1
        self._index: Optional[QueryIndex] = (
            QueryIndex() if self.query_index == "on" else None
        )
        # Dominance-forest mirror over R_N: element, parent kappa (0 for
        # roots) and children kappas per retained element.
        self._graph_elements: Dict[int, StreamElement] = {}
        self._graph_parent: Dict[int, int] = {}
        self._graph_children: Dict[int, Set[int]] = {}
        for element in engine.non_redundant():
            self._graph_elements[element.kappa] = element
            self._graph_children[element.kappa] = set()
        for parent_kappa, child_kappa in engine.dominance_graph_edges():
            self._graph_parent[child_kappa] = parent_kappa
            if parent_kappa:
                self._graph_children[parent_kappa].add(child_kappa)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, n: int) -> ContinuousQueryHandle:
        """Register a continuous n-of-N query.

        The initial result is computed with one stabbing query; from
        then on the result is maintained incrementally.  With the query
        index on, a second registration at an already-registered ``n``
        shares that group's state instead of seeding a new one.
        """
        if not 1 <= n <= self.engine.capacity:
            raise InvalidWindowError(
                f"n must be in [1, {self.engine.capacity}], got {n}"
            )
        if self._index is None:
            group = QueryGroup(n)
            group.refs = 1
            for element in self.engine.query(n):
                group.add(element)
        else:
            group, created = self._index.acquire(n)
            if created:
                for element in self.engine.query(n):
                    group.add(element)
                self._index.schedule(group)
        handle = ContinuousQueryHandle(
            self._next_id, n, group, changes_base=group.changes
        )
        self._next_id += 1
        self._queries[handle.query_id] = handle
        return handle

    def unregister(self, handle: ContinuousQueryHandle) -> None:
        """Stop maintaining ``handle``.

        The handle's result freezes at its current value (even when
        other handles at the same ``n`` stay registered — the departing
        handle is detached onto a private copy of the group state).
        """
        if self._queries.pop(handle.query_id, None) is None:
            raise QueryNotRegisteredError(
                f"query {handle.query_id} is not registered here"
            )
        if self._index is None:
            handle._group.refs = 0
            return
        group = self._index.release(handle.n)
        if group.refs > 0 and group is handle._group:
            # Other handles still share this group; freeze the departing
            # handle on a private snapshot so its result stops moving.
            delta = handle.changes
            frozen = QueryGroup(handle.n)
            for element in group.result():
                frozen.add(element)
            handle._group = frozen
            handle._changes_base = frozen.changes - delta

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[ContinuousQueryHandle]:
        return iter(list(self._queries.values()))

    # ------------------------------------------------------------------
    # Stream feeding
    # ------------------------------------------------------------------

    def append(self, values: Sequence[float], payload: Any = None) -> ArrivalOutcome:
        """Feed one element to the engine and update every query."""
        outcome = self.engine.append(values, payload)
        self.process(outcome)
        return outcome

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> BatchOutcome:
        """Feed a batch to the engine and update every query.

        Every query fires exactly the triggers — in the same order —
        that element-by-element :meth:`append` calls would have fired.
        """
        batch = self.engine.append_many(points, payloads)
        self.process_batch(batch)
        return batch

    def process(self, outcome: ArrivalOutcome) -> None:
        """Apply one arrival's changes (Algorithm 2) to every query."""
        removed_kappas = outcome.removed_kappas
        # Children of an element that expired from R_N this arrival are
        # dropped from the mirror below; resolve them from the outcome's
        # captured snapshot instead.
        expired_children = {
            rec.element.kappa: rec.children for rec in outcome.expired
        }
        index = self._index
        if index is None:
            self._advance_graph(outcome)
            for handle in self._queries.values():
                self._process_query(
                    handle, outcome, removed_kappas, expired_children
                )
        else:
            # Removal bounds read each ejected element's parent from the
            # mirror *before* this arrival is applied to it.
            removals = self._removal_bounds(outcome)
            self._advance_graph(outcome)
            self._route_arrival(
                index, outcome, removals, removed_kappas, expired_children
            )
        if self._sanitizer is not None:
            self._sanitizer.maybe_verify(self)

    def process_batch(self, batch: BatchOutcome) -> None:
        """Apply a batch's changes arrival by arrival to every query.

        With the query index on, the whole batch's change records are
        bounds-resolved up front and routed to group ranges in one
        vectorised ``searchsorted`` pass over the sorted stab-point
        axis; the per-arrival replay then applies precomputed slices.
        Trigger order and results are identical to per-arrival
        :meth:`process` calls.
        """
        index = self._index
        outcomes: Tuple[ArrivalOutcome, ...] = batch.outcomes
        if index is None or not outcomes or not index._order:
            for outcome in outcomes:
                self.process(outcome)
            return

        # Phase 1: collect (arrival, element, lo, hi) removal records
        # and per-arrival insertion bounds.  Parents are resolved
        # against the pre-batch mirror plus a batch-local hint table of
        # newcomers' birth parents — the mirror itself is only advanced
        # in phase 3.  A parent that expires mid-batch re-roots its
        # children to 0, which widens the true range; the stale bound is
        # then still a superset (it reaches past every registered n),
        # and application below stays exact via the membership check.
        sentinel = self.engine.capacity + 1
        rem_arrival: List[int] = []
        rem_elements: List[StreamElement] = []
        rem_lo: List[int] = []
        rem_hi: List[int] = []
        ins_hi: List[int] = []
        hints: Dict[int, int] = {}
        for i, outcome in enumerate(outcomes):
            m = outcome.seen_so_far
            for element in outcome.dominated_removed:
                kappa = element.kappa
                parent = hints.get(kappa)
                if parent is None:
                    parent = self._graph_parent.get(kappa, 0)
                rem_arrival.append(i)
                rem_elements.append(element)
                rem_lo.append(m - kappa)
                rem_hi.append(m - parent - 1 if parent else sentinel)
            parent = outcome.parent_kappa
            ins_hi.append(m - parent if parent else sentinel)
            hints[outcome.element.kappa] = parent

        # Phase 2: route every bound to an axis slice in one pass.
        rem_left, rem_right = self._route_bounds(index, rem_lo, rem_hi)
        _, ins_right = self._route_bounds(index, None, ins_hi)

        # Phase 3: per-arrival replay — apply the precomputed slices,
        # then fire this arrival's expiry cascades.  Order per group is
        # removals, insertion, cascade: the seed per-handle order.
        order = index._order
        rem_ptr = 0
        rem_count = len(rem_arrival)
        touched = 0
        for i, outcome in enumerate(outcomes):
            removed_kappas = outcome.removed_kappas
            expired_children = {
                rec.element.kappa: rec.children for rec in outcome.expired
            }
            self._advance_graph(outcome)
            while rem_ptr < rem_count and rem_arrival[rem_ptr] == i:
                kappa = rem_elements[rem_ptr].kappa
                for group in order[rem_left[rem_ptr]:rem_right[rem_ptr]]:
                    touched += 1
                    if kappa in group._members:
                        group.remove(kappa)
                rem_ptr += 1
            newcomer = outcome.element
            for group in order[: ins_right[i]]:
                touched += 1
                group.add(newcomer)
                if len(group._members) == 1:
                    index.schedule(group)
            self._fire_triggers(
                index, outcome.seen_so_far, removed_kappas, expired_children
            )
            if self._sanitizer is not None:
                self._sanitizer.maybe_verify(self)
        index._routed_events += rem_count + len(outcomes)
        index._touched_groups += touched
        index._batch_passes += 1

    @staticmethod
    def _route_bounds(
        index: QueryIndex,
        lows: Optional[List[int]],
        highs: List[int],
    ) -> Tuple[Sequence[int], Sequence[int]]:
        """Map inclusive (lo, hi) window bounds to axis slice indices.

        Vectorised through the index's NumPy axis mirror when the batch
        carries enough records to amortise the call; identical
        ``bisect`` routing otherwise (and when NumPy is unavailable).
        """
        axis = index._axis
        kernel = index.axis_kernel() if len(highs) >= _BATCH_KERNEL_MIN else None
        if kernel is not None and _np is not None:
            left = (
                _np.searchsorted(kernel, _np.asarray(lows, dtype=_np.int64))
                if lows is not None
                else _np.zeros(len(highs), dtype=_np.int64)
            )
            right = _np.searchsorted(
                kernel, _np.asarray(highs, dtype=_np.int64), side="right"
            )
            return left.tolist(), right.tolist()
        left_list = (
            [bisect.bisect_left(axis, lo) for lo in lows]
            if lows is not None
            else [0] * len(highs)
        )
        right_list = [bisect.bisect_right(axis, hi) for hi in highs]
        return left_list, right_list

    # ------------------------------------------------------------------
    # Indexed dispatch (query_index="on")
    # ------------------------------------------------------------------

    def _removal_bounds(
        self, outcome: ArrivalOutcome
    ) -> List[Tuple[StreamElement, int, Optional[int]]]:
        """Inclusive window-size ranges hit by this arrival's dominated
        removals, read against the pre-arrival mirror.

        An ejected element with label ``kappa`` and critical parent
        ``p`` was a result member of exactly the windows
        ``M - kappa <= n <= M - p - 1`` (unbounded above when it was a
        root) at stream length ``M - 1`` — Proposition 1 with the
        window endpoints moved to the query side.
        """
        m = outcome.seen_so_far
        bounds: List[Tuple[StreamElement, int, Optional[int]]] = []
        for element in outcome.dominated_removed:
            parent = self._graph_parent.get(element.kappa, 0)
            hi = m - parent - 1 if parent else None
            bounds.append((element, m - element.kappa, hi))
        return bounds

    def _route_arrival(
        self,
        index: QueryIndex,
        outcome: ArrivalOutcome,
        removals: List[Tuple[StreamElement, int, Optional[int]]],
        removed_kappas: FrozenSet[int],
        expired_children: Dict[int, Tuple[StreamElement, ...]],
    ) -> None:
        """Apply one arrival to only the affected group ranges."""
        m = outcome.seen_so_far
        touched = 0
        # Lines 3-5 per affected group: drop ejected result elements.
        for element, lo, hi in removals:
            kappa = element.kappa
            for group in index.range_between(lo, hi):
                touched += 1
                if kappa in group._members:
                    group.remove(kappa)
        # Lines 6-8: the newcomer joins every window its critical
        # dominator has already left — an ascending-axis prefix.
        parent = outcome.parent_kappa
        newcomer = outcome.element
        for group in index.prefix_upto(m - parent if parent else None):
            touched += 1
            group.add(newcomer)
            if len(group._members) == 1:
                # The group went non-empty: give it a trigger entry.
                index.schedule(group)
        # Lines 9-14: only groups whose trigger is actually due.
        self._fire_triggers(index, m, removed_kappas, expired_children)
        index._routed_events += len(removals) + 1
        index._touched_groups += touched

    def _fire_triggers(
        self,
        index: QueryIndex,
        m: int,
        removed_kappas: FrozenSet[int],
        expired_children: Dict[int, Tuple[StreamElement, ...]],
    ) -> None:
        """Fire every group whose next-trigger entry is due at stream
        length ``m``, cascading child promotions exactly as the seed
        per-handle loop did.

        Entries may be stale-early (a removal can leave the entry
        pointing at an already-gone heap top); an early firing pops
        nothing and :meth:`QueryIndex.schedule` re-anchors the entry.
        The loop terminates because every rescheduled entry is due at
        ``top_kappa + n >= m + 1`` once its cascade has drained.
        """
        expiry = index._expiry
        while expiry:
            n, due_obj = expiry.peek()
            if cast(int, due_obj) > m:
                break
            group = index._groups[n]
            window_start = m - n + 1
            heap = group._heap
            while heap:
                top_kappa, _ = heap.peek()
                if top_kappa >= window_start:
                    break
                group.remove(top_kappa)
                for child in self._children_of(top_kappa, expired_children):
                    if child.kappa in removed_kappas or child.kappa in group._members:
                        # Dominated by the newcomer this very arrival
                        # (and hence not skyline), or already present.
                        continue
                    group.add(child)
            index.schedule(group)

    # ------------------------------------------------------------------
    # Shared maintenance
    # ------------------------------------------------------------------

    def _advance_graph(self, outcome: ArrivalOutcome) -> None:
        """Replay one arrival's maintenance on the dominance-forest
        mirror (same order as Algorithm 1: expire, eject, install)."""
        for rec in outcome.expired:
            kappa = rec.element.kappa
            for child in rec.children:
                self._graph_parent[child.kappa] = 0
            self._graph_elements.pop(kappa, None)
            self._graph_parent.pop(kappa, None)
            self._graph_children.pop(kappa, None)
        for element in outcome.dominated_removed:
            kappa = element.kappa
            parent_kappa = self._graph_parent.pop(kappa, 0)
            children = self._graph_children.get(parent_kappa)
            if children is not None:
                children.discard(kappa)
            self._graph_elements.pop(kappa, None)
            self._graph_children.pop(kappa, None)
        newcomer = outcome.element
        self._graph_elements[newcomer.kappa] = newcomer
        self._graph_parent[newcomer.kappa] = outcome.parent_kappa
        self._graph_children[newcomer.kappa] = set()
        if outcome.parent_kappa:
            self._graph_children[outcome.parent_kappa].add(newcomer.kappa)

    def _process_query(
        self,
        handle: ContinuousQueryHandle,
        outcome: ArrivalOutcome,
        removed_kappas: FrozenSet[int],
        expired_children: Dict[int, Tuple[StreamElement, ...]],
    ) -> None:
        """The seed per-handle maintenance loop (``query_index="off"``)."""
        group = handle._group
        window_start = outcome.seen_so_far - handle.n + 1

        # Lines 3-5: drop result elements the newcomer dominates.
        for element in outcome.dominated_removed:
            if element.kappa in group._members:
                group.remove(element.kappa)

        # Lines 6-8: the newcomer joins unless its critical dominator is
        # still inside the n-window.  (A root always joins — including
        # early in the stream, when the window is not yet full and
        # ``window_start`` is non-positive.)
        if outcome.parent_kappa == 0 or outcome.parent_kappa < window_start:
            group.add(outcome.element)

        # Lines 9-14: fire the trigger while the heap top has expired
        # from the n-window; each firing promotes the children of the
        # expired result element (cascading if a child is itself already
        # outside the window).
        heap = group._heap
        while heap:
            top_kappa, _ = heap.peek()
            if top_kappa >= window_start:
                break
            group.remove(top_kappa)
            for child in self._children_of(top_kappa, expired_children):
                if child.kappa in removed_kappas or child.kappa in group._members:
                    # Dominated by the newcomer this very arrival (and
                    # hence not skyline), or already present.
                    continue
                group.add(child)

    def _children_of(
        self, kappa: int, expired_children: Dict[int, Tuple[StreamElement, ...]]
    ) -> List[StreamElement]:
        """Critical children of ``kappa`` as of the arrival being
        processed.

        Resolved from the manager's dominance-forest mirror when the
        element is still in ``R_N``, otherwise from the expiry snapshot
        captured in the arrival outcome.  (The live engine is never
        consulted: during batch processing it is already at the end of
        the batch, ahead of the arrival being replayed.)
        """
        if kappa in expired_children:
            return list(expired_children[kappa])
        children = self._graph_children.get(kappa, ())
        return [self._graph_elements[c] for c in sorted(children)]

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    @property
    def sanitizer(self) -> Optional[InvariantSanitizer]:
        """The attached sanitizer, or ``None`` when checking is off."""
        return self._sanitizer

    @property
    def sanitize_mode(self) -> str:
        """The active sanitize mode (``"off"`` when none is attached)."""
        return "off" if self._sanitizer is None else self._sanitizer.mode

    @property
    def structure_version(self) -> int:
        """Monotonic version of the wrapped engine's interval encoding."""
        return self.engine.structure_version

    @property
    def stab_cache(self) -> "Optional[StabCache[Any]]":
        """The wrapped engine's query cache (``None`` when disabled)."""
        return self.engine.stab_cache

    @property
    def kernel_policy(self) -> str:
        """The ``kernels`` knob the wrapped engine was built with."""
        return self.engine.kernel_policy

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss/rebuild counters of the wrapped engine's query
        cache (``None`` when caching is disabled)."""
        return self.engine.cache_stats()

    def query_index_stats(self) -> Optional[Dict[str, int]]:
        """Group and routing counters of the query index, or ``None``
        when ``query_index="off"``."""
        return None if self._index is None else self._index.stats()

    def check_invariants(self) -> None:
        """Verify trigger heaps, the graph mirror, result sync and the
        query-index structure.

        Raises
        ------
        StructureCorruptionError
            On the first violated invariant (survives ``python -O``).
        """
        from repro.sanitize.checks import verify_continuous

        verify_continuous(self)
