"""Stream elements and their arrival labels.

The paper positions every element in the stream by the integer
``kappa(e)``: ``e`` is the ``kappa(e)``-th arrival (1-based).  A
:class:`StreamElement` bundles the d-dimensional value vector with that
label and an optional opaque payload (the application record — e.g. the
full deal object in the stock-market example of section 1).

Elements compare, hash and print by ``kappa``: within one stream the
label is unique, and the engines use it as the identity throughout
(label set, interval endpoints, R-tree keys, trigger heaps).
"""

from __future__ import annotations

import math
from typing import Any, Sequence, Tuple


class StreamElement:
    """One stream arrival: a point, its position and an optional payload.

    Parameters
    ----------
    values:
        The d-dimensional coordinate vector.  Smaller is better on every
        axis (min-skyline), as in the paper.
    kappa:
        1-based arrival position in the stream.
    payload:
        Optional application data carried along verbatim.
    """

    __slots__ = ("values", "kappa", "payload")

    def __init__(
        self,
        values: Sequence[float],
        kappa: int,
        payload: Any = None,
    ) -> None:
        if kappa < 1:
            raise ValueError(f"kappa is a 1-based position, got {kappa}")
        if not values:
            raise ValueError("an element needs at least one coordinate")
        frozen = tuple(float(v) for v in values)
        for axis, value in enumerate(frozen):
            # NaN compares false against everything, which would poison
            # every dominance test and structure invariant downstream;
            # reject it at the boundary.
            if math.isnan(value):
                raise ValueError(
                    f"coordinate {axis} is NaN; dominance is undefined"
                )
        self.values: Tuple[float, ...] = frozen
        self.kappa = kappa
        self.payload = payload

    @property
    def dim(self) -> int:
        """Dimensionality of the value vector."""
        return len(self.values)

    def age(self, seen_so_far: int) -> int:
        """Recency rank: 1 for the newest element when ``M`` elements
        have been seen (``M - kappa + 1``)."""
        return seen_so_far - self.kappa + 1

    def is_expired(self, seen_so_far: int, window: int) -> bool:
        """Whether this element has left the most recent ``window``
        elements, given ``seen_so_far`` total arrivals."""
        return self.kappa < seen_so_far - window + 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamElement):
            return NotImplemented
        return self.kappa == other.kappa and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.kappa, self.values))

    def __repr__(self) -> str:
        return f"StreamElement(kappa={self.kappa}, values={self.values})"
