"""Windowed k-skybands: the paper's machinery, one level deeper.

The *k-skyband* of a point set contains every point dominated by fewer
than ``k`` others (``k = 1`` is the skyline).  This module answers
**n-of-N k-skyband queries** — the k-skyband of the most recent ``n``
elements, for any ``n <= N`` — by generalising the paper's two pillars:

**Pruning (Theorem 1, generalised).**  An element with ``>= k``
*younger* dominators can never enter the k-skyband of any window that
contains it (those dominators are in every such window).  The minimal
retained set ``R_N^k`` therefore keeps elements with fewer than ``k``
younger weak dominators; each retained element tracks its younger-
dominator count ``j``.

**Encoding (Theorem 3, generalised).**  Retained element ``e`` is in
the k-skyband of the most recent ``n`` elements iff fewer than ``k``
of its dominators lie inside the window.  Its ``j`` younger dominators
always do; so ``e`` qualifies iff fewer than ``k - j`` of its *older*
dominators do — i.e. iff its ``(k-j)``-th youngest older dominator
precedes the window.  Encoding ``e`` as the half-open interval
``(kappa(that dominator), kappa(e)]`` (0 when it does not exist) turns
the query into the same **stabbing query** at ``M - n + 1``.

Why older-dominator ranks computed against ``R_N^k`` are exact even
though pruned elements also dominate: if a pruned ``x`` dominates
``e``, then ``x``'s ``>= k`` younger dominators transitively dominate
``e`` and are younger than ``x`` — so the ``k`` *youngest* older
dominators of ``e`` can never be pruned elements, and the top-``k``
best-first search over the retained R-tree returns the true list.

Unlike Algorithm 1, expiry needs **no re-rooting**: thresholds are raw
positions, and a stab point ``M - n + 1 >= M - N + 1`` always clears an
expired dominator's position, so intervals age out of relevance by
themselves; per arrival only the dominated elements' intervals move.

Tie convention matches the rest of the library (DESIGN.md §7): a
*younger* exact duplicate counts as a dominator (so old copies fade as
new ones arrive) while an *older* duplicate does not count against the
newcomer — i.e. an element is reported when fewer than ``k`` in-window
elements strictly dominate it or duplicate it more recently.  For
``k = 1`` this engine reproduces :class:`~repro.core.nofn.NofNSkyline`
exactly (property-tested).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, cast

from repro.accel.batch_prefilter import (
    BatchPrefilter,
    iter_chunks,
    resolve_batch_chunk,
)
from repro.accel.stab_cache import StabCache
from repro.core.element import StreamElement
from repro.core.stats import EngineStats
from repro.exceptions import (
    DimensionMismatchError,
    InvalidWindowError,
    StructureCorruptionError,
)
from repro.sanitize.sanitizer import InvariantSanitizer, SanitizeArg
from repro.structures.interval_tree import IntervalHandle, IntervalTree
from repro.structures.labelset import LabelSet
from repro.structures.rtree_soa import SoARTree, make_rtree


class _BandRecord:
    """Book-keeping for one element of ``R_N^k``."""

    __slots__ = ("element", "younger", "older_doms", "handle")

    def __init__(self, element: StreamElement) -> None:
        self.element = element
        #: Number of younger weak dominators seen so far (< k).
        self.younger = 0
        #: kappas of the youngest older weak dominators, youngest first
        #: (at most k entries; computed exactly on arrival).
        self.older_doms: List[int] = []
        self.handle: Optional[IntervalHandle] = None


def _band_record_kappa(record: _BandRecord) -> int:
    """Query-order sort key (module-level so the cache can share it)."""
    return record.element.kappa


class KSkybandEngine:
    """Sliding-window engine answering all n-of-N k-skyband queries.

    Parameters
    ----------
    dim:
        Dimensionality of the stream's value vectors.
    capacity:
        ``N`` — the window size; queries may use any ``n <= N``.
    k:
        Band depth: report elements dominated by fewer than ``k``
        in-window elements.  ``k = 1`` is the skyline.
    sanitize:
        Runtime invariant checking: ``"off"`` (default), ``"sampled"``,
        ``"full"``, or a shared
        :class:`~repro.sanitize.InvariantSanitizer`.
    query_cache / kernels / rtree_layout / batch_chunk:
        Query and batched-ingest knobs (see
        :class:`~repro.core.nofn.NofNSkyline`): the versioned stab
        cache behind :meth:`query`, the vectorised R-tree leaf-search
        policy, the dominance-index layout
        (``"auto"``/``"soa"``/``"pointer"``), and the
        :meth:`append_many` slice size (clamped to ``capacity`` here so
        no chunk member can expire before its in-chunk pruner arrives).
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        k: int,
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise InvalidWindowError(f"capacity must be >= 1, got {capacity}")
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.dim = dim
        self.capacity = capacity
        self.k = k
        self._batch_chunk = resolve_batch_chunk(batch_chunk)
        self._sanitizer = InvariantSanitizer.coerce(sanitize)
        self._m = 0
        self._records: Dict[int, _BandRecord] = {}
        self._labels: LabelSet[_BandRecord] = LabelSet()
        self._intervals: IntervalTree[_BandRecord] = IntervalTree()
        self._rtree = make_rtree(
            dim,
            max_entries=rtree_max_entries,
            min_entries=rtree_min_entries,
            split=rtree_split,
            kernels=kernels,
            layout=rtree_layout,
        )
        self._kernel_policy = kernels
        self._rtree_layout = rtree_layout
        # Memoized answers come back pre-sorted in query order, so the
        # cached query path never re-sorts.
        self._stab_cache: Optional[StabCache[_BandRecord]] = (
            StabCache(self._intervals, sort_key=_band_record_kappa)
            if query_cache
            else None
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def append(self, values: Sequence[float], payload: Any = None) -> StreamElement:
        """Ingest one stream element; return it."""
        self._m += 1
        element = StreamElement(values, self._m, payload)
        self._arrive(element)
        return element

    def _arrive(self, element: StreamElement) -> None:
        """Run the per-arrival maintenance for an already-built element
        (``self._m`` has been advanced to ``element.kappa``)."""
        # Expiry: drop retained elements that left the window.  Their
        # positions fall below every admissible stab point, so nobody
        # else's interval needs touching.
        threshold = self._m - self.capacity + 1
        expired = 0
        while self._labels:
            oldest_kappa, oldest = self._labels.oldest()
            if oldest_kappa >= threshold:
                break
            self._discard(oldest)
            expired += 1

        # The newcomer's exact top-k older *strict* dominators, computed
        # BEFORE this arrival's pruning: an element pruned by this very
        # arrival counts the newcomer among its k younger dominators, so
        # it has only k-1 older witnesses and must still be visible here
        # (the module-doc argument covers elements pruned on *earlier*
        # arrivals only).  Older exact duplicates are skipped — they do
        # not count against the newcomer under the youngest-copy tie
        # convention (which is what makes k = 1 coincide exactly with
        # NofNSkyline).
        older_doms: List[int] = []
        bound: Optional[int] = None
        while len(older_doms) < self.k:
            entry = self._rtree.max_kappa_dominator(
                element.values, kappa_below=bound
            )
            if entry is None:
                break
            bound = entry.kappa
            # Duplicate-identity check, not a dominance test: an exact
            # twin is excluded from older_doms by the tie rule.
            if entry.point != element.values:  # lint: skip=REPRO004
                older_doms.append(entry.kappa)

        # Dominated elements gain one younger dominator each; those
        # reaching k are pruned (generalised Theorem 1).
        demoted = 0
        for entry in self._rtree.report_dominated(element.values):
            record: _BandRecord = entry.data
            record.younger += 1
            if record.younger >= self.k:
                self._rtree.delete(record.element.kappa)
                self._discard(record)
                demoted += 1
            else:
                self._reseat(record)

        record = _BandRecord(element)
        record.older_doms = older_doms
        record.handle = self._intervals.insert(
            float(self._threshold_kappa(record)), float(element.kappa), record
        )
        self._rtree.insert(element.values, element.kappa, record)
        self._labels.append(element.kappa, record)
        self._records[element.kappa] = record

        self.stats.record_arrival(
            expired=expired, dominated=demoted, rn_size=len(self._records)
        )
        if self._sanitizer is not None:
            self._sanitizer.maybe_verify(self)

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[StreamElement]:
        """Ingest a batch of stream elements; return them.

        Semantically identical to calling :meth:`append` once per point
        — identical retained set, interval encoding, query answers and
        maintenance stats afterwards — but faster on bursty feeds: the
        vectorised intra-batch prefilter (at skyband depth ``k``)
        identifies members that accumulate ``k`` younger same-batch weak
        dominators before the batch ends; they skip all index
        maintenance, contributing only their kappa to other members'
        older-dominator lists while "alive".

        Validation is all-or-nothing: dimension mismatches and invalid
        values raise before any engine state changes.
        """
        elements = self._batch_elements(points, payloads)
        self._ingest_elements(elements)
        return elements

    def _batch_chunk_size(self) -> int:
        """Largest batch chunk whose members cannot expire before their
        in-chunk ``k``-th dominator arrives (kappas are consecutive
        here; the sharded sub-stream variant tightens this for its
        strided kappa sequence)."""
        return min(self._batch_chunk, self.capacity)

    def _ingest_elements(self, elements: List[StreamElement]) -> None:
        """Run the chunked batch-arrival loop over validated elements
        (kappas already assigned and strictly increasing)."""
        started = perf_counter()
        dropped = 0
        for lo, hi in iter_chunks(len(elements), self._batch_chunk_size()):
            dropped += self._arrive_chunk(elements, lo, hi)
            if self._sanitizer is not None:
                self._sanitizer.maybe_verify(self)
        self.stats.record_batch(
            size=len(elements), dropped=dropped, seconds=perf_counter() - started
        )

    def _batch_elements(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]],
    ) -> List[StreamElement]:
        """Construct and validate the batch's elements without mutating
        engine state (all-or-nothing ingestion)."""
        pts = list(points)
        if payloads is None:
            payloads = [None] * len(pts)
        elif len(payloads) != len(pts):
            raise ValueError(
                f"got {len(pts)} points but {len(payloads)} payloads"
            )
        elements = []
        for offset, (values, payload) in enumerate(zip(pts, payloads)):
            element = StreamElement(values, self._m + offset + 1, payload)
            if len(element.values) != self.dim:
                raise DimensionMismatchError(self.dim, len(element.values))
            elements.append(element)
        return elements

    def _arrive_chunk(
        self, elements: List[StreamElement], lo: int, hi: int
    ) -> int:
        """Ingest ``elements[lo:hi]``, batched when the dominance index
        is the SoA layout, per-element otherwise."""
        if isinstance(self._rtree, SoARTree):
            return self._arrive_chunk_soa(elements, lo, hi)
        return self._arrive_chunk_fallback(elements, lo, hi)

    def _arrive_chunk_fallback(
        self, elements: List[StreamElement], lo: int, hi: int
    ) -> int:
        """Ingest ``elements[lo:hi]`` (at most ``capacity`` of them, so
        no chunk member can expire before its in-chunk ``k``-th
        dominator arrives).

        ``pending`` parks prefilter casualties until their pruning
        arrival: logically retained (they count towards ``rn_size`` and
        appear in younger members' older-dominator lists — exactly as
        the R-tree would surface them per element) but never indexed.
        """
        chunk = elements[lo:hi]
        pre = BatchPrefilter([e.values for e in chunk], k=self.k)
        # Expiry gate: if the oldest retained position survives even the
        # chunk's final threshold, no arrival in the chunk can expire
        # anything (chunk members themselves cannot, chunk <= capacity).
        threshold_end = chunk[-1].kappa - self.capacity + 1
        may_expire = bool(self._labels) and self._labels.oldest()[0] < threshold_end
        pending: Dict[int, StreamElement] = {}
        for i, element in enumerate(chunk):
            self._m = element.kappa

            expired = 0
            if may_expire:
                threshold = self._m - self.capacity + 1
                while self._labels:
                    oldest_kappa, oldest = self._labels.oldest()
                    if oldest_kappa >= threshold:
                        break
                    self._discard(oldest)
                    expired += 1

            # Merged top-k older strict dominator search: descend the
            # R-tree stream and the alive-pending stream in lockstep,
            # always taking the younger candidate, skipping exact
            # duplicates (which still advance their stream, matching the
            # per-element bound movement).  Doomed members skip it: the
            # list only ever feeds their interval encoding, which they
            # never get.  It must run before this arrival's pruning —
            # members pruned *by* this arrival are still witnesses.
            older_doms: List[int] = []
            if not pre.is_doomed(i):
                bound: Optional[int] = None
                pend_stream = iter(pre.older_weak_dominators(i))
                pend_head: Optional[int] = None
                tree_head = self._rtree.max_kappa_dominator(element.values)
                while len(older_doms) < self.k:
                    if pend_head is None:
                        for h in pend_stream:
                            if chunk[h].kappa in pending:
                                pend_head = h
                                break
                    if tree_head is None and pend_head is None:
                        break
                    if tree_head is not None and (
                        pend_head is None
                        or tree_head.kappa > chunk[pend_head].kappa
                    ):
                        bound = tree_head.kappa
                        # Duplicate-identity check (tie rule), as above.
                        if tree_head.point != element.values:  # lint: skip=REPRO004
                            older_doms.append(tree_head.kappa)
                        tree_head = self._rtree.max_kappa_dominator(
                            element.values, kappa_below=bound
                        )
                    else:
                        candidate = pending[chunk[pend_head].kappa]
                        # Duplicate-identity check (tie rule), as above.
                        if candidate.values != element.values:  # lint: skip=REPRO004
                            older_doms.append(candidate.kappa)
                        pend_head = None

            demoted = 0
            for entry in self._rtree.report_dominated(element.values):
                dominated_record: _BandRecord = entry.data
                dominated_record.younger += 1
                if dominated_record.younger >= self.k:
                    self._rtree.delete(dominated_record.element.kappa)
                    self._discard(dominated_record)
                    demoted += 1
                else:
                    self._reseat(dominated_record)
            for h in pre.killed_at(i):
                if pending.pop(chunk[h].kappa, None) is not None:
                    demoted += 1

            if pre.is_doomed(i):
                pending[element.kappa] = element
            else:
                record = _BandRecord(element)
                record.older_doms = older_doms
                record.handle = self._intervals.insert(
                    float(self._threshold_kappa(record)),
                    float(element.kappa),
                    record,
                )
                self._rtree.insert(element.values, element.kappa, record)
                self._labels.append(element.kappa, record)
                self._records[element.kappa] = record

            self.stats.record_arrival(
                expired=expired,
                dominated=demoted,
                rn_size=len(self._records) + len(pending),
            )
        if pending:
            raise StructureCorruptionError(
                f"{len(pending)} doomed batch members survived their chunk"
            )
        return pre.dropped

    def _arrive_chunk_soa(
        self, elements: List[StreamElement], lo: int, hi: int
    ) -> int:
        """Fully batched chunk ingestion over the SoA dominance index.

        The index is frozen for the chunk: one chunk-wide dominance
        report (all-attribution — every arrival sees its own victims,
        since each hit increments a younger-dominator count) runs up
        front, every mutation is deferred, and the chunk flushes with
        one :meth:`SoARTree.delete_many` + one
        :meth:`SoARTree.insert_many`.  Per-element semantics are
        reconstructed exactly:

        * a frozen-tree victim only counts while its record is still
          retained (aliveness against ``self._records``);
        * increments *from* chunk survivors *to* chunk survivors come
          from the prefilter's dominance matrix
          (:meth:`BatchPrefilter.older_weak_victims`) — the prefilter
          bound guarantees they stay below ``k``, so mid-chunk
          survivors reseat but never demote;
        * older-dominator lists merge the intra-chunk stream (alive
          pending members and installed survivors, youngest first — all
          younger than anything indexed) with the frozen-tree stream,
          skipping entries that died mid-chunk.
        """
        chunk = elements[lo:hi]
        points = [e.values for e in chunk]
        pre = BatchPrefilter(points, k=self.k)
        threshold_end = chunk[-1].kappa - self.capacity + 1
        may_expire = bool(self._labels) and self._labels.oldest()[0] < threshold_end
        # The dispatcher only routes here for the SoA layout.
        rtree = cast(SoARTree, self._rtree)
        victims0 = rtree.report_dominated_batch(points, first_only=False)
        deferred_deletes: List[int] = []
        deferred_inserts: Dict[int, _BandRecord] = {}
        pending: Dict[int, StreamElement] = {}
        for i, element in enumerate(chunk):
            self._m = element.kappa

            expired = 0
            if may_expire:
                threshold = self._m - self.capacity + 1
                while self._labels:
                    oldest_kappa, oldest = self._labels.oldest()
                    if oldest_kappa >= threshold:
                        break
                    self._discard_deferred(
                        oldest, deferred_deletes, deferred_inserts
                    )
                    expired += 1

            # Merged top-k older strict dominator search (computed
            # before this arrival's pruning, as per element).  Every
            # intra-chunk candidate outranks the whole frozen tree, so
            # the merge is: intra stream first (alive pending members
            # and installed survivors, youngest first), then the
            # frozen-tree stream with mid-chunk casualties skipped.
            older_doms: List[int] = []
            if not pre.is_doomed(i):
                for h in pre.older_weak_dominators(i):
                    if len(older_doms) >= self.k:
                        break
                    kappa_h = chunk[h].kappa
                    if kappa_h in pending:
                        candidate_values = pending[kappa_h].values
                    elif kappa_h in self._records:
                        candidate_values = self._records[kappa_h].element.values
                    else:
                        continue  # pruned or expired mid-chunk
                    # Duplicate-identity check (tie rule), as per element.
                    if candidate_values != element.values:  # lint: skip=REPRO004
                        older_doms.append(kappa_h)
                bound: Optional[int] = None
                while len(older_doms) < self.k:
                    entry = rtree.max_kappa_dominator(
                        element.values, kappa_below=bound
                    )
                    if entry is None:
                        break
                    bound = entry.kappa
                    if entry.kappa not in self._records:
                        continue  # died mid-chunk: not a witness anymore
                    # Duplicate-identity check (tie rule), as per element.
                    if entry.point != element.values:  # lint: skip=REPRO004
                        older_doms.append(entry.kappa)

            demoted = 0
            for entry in victims0[i]:
                dominated_record = self._records.get(entry.kappa)
                if dominated_record is None:
                    continue  # already pruned or expired this chunk
                dominated_record.younger += 1
                if dominated_record.younger >= self.k:
                    self._discard_deferred(
                        dominated_record, deferred_deletes, deferred_inserts
                    )
                    demoted += 1
                else:
                    self._reseat(dominated_record)
            for h in pre.older_weak_victims(i):
                survivor = self._records.get(chunk[h].kappa)
                if survivor is None:
                    continue  # pending (no index state) or already gone
                survivor.younger += 1
                if survivor.younger >= self.k:  # pragma: no cover
                    # Unreachable by the prefilter bound; kept for the
                    # same defensive shape as the frozen-tree branch.
                    self._discard_deferred(
                        survivor, deferred_deletes, deferred_inserts
                    )
                    demoted += 1
                else:
                    self._reseat(survivor)
            for h in pre.killed_at(i):
                if pending.pop(chunk[h].kappa, None) is not None:
                    demoted += 1

            if pre.is_doomed(i):
                pending[element.kappa] = element
            else:
                record = _BandRecord(element)
                record.older_doms = older_doms
                record.handle = self._intervals.insert(
                    float(self._threshold_kappa(record)),
                    float(element.kappa),
                    record,
                )
                deferred_inserts[element.kappa] = record
                self._labels.append(element.kappa, record)
                self._records[element.kappa] = record

            self.stats.record_arrival(
                expired=expired,
                dominated=demoted,
                rn_size=len(self._records) + len(pending),
            )
        if pending:
            raise StructureCorruptionError(
                f"{len(pending)} doomed batch members survived their chunk"
            )
        if deferred_deletes:
            rtree.delete_many(deferred_deletes)
        if deferred_inserts:
            survivors = list(deferred_inserts.values())
            rtree.insert_many(
                [r.element.values for r in survivors],
                [r.element.kappa for r in survivors],
                survivors,
            )
        return pre.dropped

    def _discard_deferred(
        self,
        record: _BandRecord,
        deferred_deletes: List[int],
        deferred_inserts: Dict[int, _BandRecord],
    ) -> None:
        """Deferred-mutation variant of :meth:`_discard`: the frozen
        tree is flushed at chunk end, so the record's physical entry is
        either queued for :meth:`SoARTree.delete_many` or simply dropped
        from the pending inserts."""
        kappa = record.element.kappa
        self._intervals.remove(record.handle)
        record.handle = None
        self._labels.remove(kappa)
        del self._records[kappa]
        if deferred_inserts.pop(kappa, None) is None:
            deferred_deletes.append(kappa)

    def _threshold_kappa(self, record: _BandRecord) -> int:
        """Position of the dominator whose window-exit admits ``record``.

        The ``(k - younger)``-th youngest older dominator, or 0 when
        fewer exist (the element qualifies for every window holding it).
        """
        need = self.k - record.younger
        if len(record.older_doms) < need:
            return 0
        return record.older_doms[need - 1]

    def _reseat(self, record: _BandRecord) -> None:
        """Re-encode a record after its younger-dominator count grew."""
        record.handle = self._intervals.replace(
            record.handle,
            float(self._threshold_kappa(record)),
            float(record.element.kappa),
        )

    def _discard(self, record: _BandRecord) -> None:
        kappa = record.element.kappa
        self._intervals.remove(record.handle)
        record.handle = None
        self._labels.remove(kappa)
        del self._records[kappa]
        if kappa in self._rtree:
            self._rtree.delete(kappa)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, n: int) -> List[StreamElement]:
        """The k-skyband of the most recent ``n`` elements, sorted by
        ``kappa``.

        Raises
        ------
        InvalidWindowError
            If ``n`` is not in ``[1, capacity]``.
        """
        if not 1 <= n <= self.capacity:
            raise InvalidWindowError(
                f"n must be in [1, {self.capacity}], got {n}"
            )
        if self._m == 0:
            self.stats.record_query(0)
            return []
        stab = max(1, self._m - n + 1)
        if self._stab_cache is not None:
            records = self._stab_cache.stab(stab)  # pre-sorted by kappa
        else:
            records = self._intervals.stab(stab)
            records.sort(key=_band_record_kappa)
        self.stats.record_query(len(records))
        return [r.element for r in records]

    def skyband(self) -> List[StreamElement]:
        """The k-skyband of the whole window."""
        return self.query(self.capacity)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def seen_so_far(self) -> int:
        """``M`` — number of elements ingested."""
        return self._m

    @property
    def retained_size(self) -> int:
        """``|R_N^k|`` — elements with fewer than k younger dominators."""
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify cross-structure consistency and band membership
        against brute force.

        Raises
        ------
        StructureCorruptionError
            On the first violated invariant (survives ``python -O``).
        """
        from repro.sanitize.checks import verify_skyband

        verify_skyband(self)

    @property
    def sanitizer(self) -> Optional[InvariantSanitizer]:
        """The attached sanitizer, or ``None`` when checking is off."""
        return self._sanitizer

    @property
    def sanitize_mode(self) -> str:
        """The active sanitize mode (``"off"`` when none is attached)."""
        return "off" if self._sanitizer is None else self._sanitizer.mode

    @property
    def structure_version(self) -> int:
        """Monotonic version of the interval encoding (see
        :attr:`repro.core.nofn.NofNSkyline.structure_version`)."""
        return self._intervals.version

    @property
    def stab_cache(self) -> Optional[StabCache[_BandRecord]]:
        """The query cache, or ``None`` when ``query_cache=False``."""
        return self._stab_cache

    @property
    def kernel_policy(self) -> str:
        """The ``kernels`` knob this engine was built with."""
        return self._kernel_policy

    @property
    def rtree_layout(self) -> str:
        """The ``rtree_layout`` knob this engine was built with (the
        requested policy; the effective layout is
        ``engine._rtree.layout``)."""
        return self._rtree_layout

    @property
    def batch_chunk(self) -> int:
        """The effective batched-ingest chunk size (the ``batch_chunk``
        knob, or the library default when unset)."""
        return self._batch_chunk

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Hit/miss/rebuild counters of the query cache (``None`` when
        caching is disabled)."""
        if self._stab_cache is None:
            return None
        return self._stab_cache.stats()
