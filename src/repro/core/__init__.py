"""The paper's primary contribution: sliding-window skyline engines.

* :class:`~repro.core.nofn.NofNSkyline` — n-of-N queries over the most
  recent ``N`` elements (sections 3.1-3.3);
* :class:`~repro.core.continuous.ContinuousQueryManager` — trigger-based
  continuous n-of-N queries (section 3.4);
* :class:`~repro.core.n1n2.N1N2Skyline` — arbitrary-window
  (n1,n2)-of-N queries (section 4);
* :class:`~repro.core.timewindow.TimeWindowSkyline` — time-period
  windows (section 6 remark);
* :class:`~repro.core.approx.ApproxNofNSkyline` — epsilon-approximate
  n-of-N (section 6 future work);
* :class:`~repro.core.skyband.KSkybandEngine` — windowed k-skybands
  (the standard skyline generalisation, built on the same machinery);
* :class:`~repro.core.nofn_linear.LinearScanNofNSkyline` — the engine
  with flat scans instead of the R-tree (ablation / small-``R_N``
  deployments);
* :mod:`~repro.core.persistence` — engine snapshot / restore.
"""

from repro.core.approx import ApproxNofNSkyline
from repro.core.continuous import ContinuousQueryHandle, ContinuousQueryManager
from repro.core.dominance import dominates, incomparable, weakly_dominates
from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, BatchOutcome, ExpiredRecord
from repro.core.n1n2 import ContinuousN1N2Query, N1N2Skyline
from repro.core.nofn import NofNSkyline
from repro.core.nofn_linear import LinearScanNofNSkyline
from repro.core.skyband import KSkybandEngine
from repro.core.stats import EngineStats
from repro.core.timewindow import TimeWindowSkyline

__all__ = [
    "ApproxNofNSkyline",
    "ArrivalOutcome",
    "BatchOutcome",
    "ContinuousN1N2Query",
    "ContinuousQueryHandle",
    "ContinuousQueryManager",
    "EngineStats",
    "ExpiredRecord",
    "KSkybandEngine",
    "LinearScanNofNSkyline",
    "N1N2Skyline",
    "NofNSkyline",
    "StreamElement",
    "TimeWindowSkyline",
    "dominates",
    "incomparable",
    "weakly_dominates",
]
