"""(n1,n2)-of-N skyline queries (paper section 4).

An (n1,n2)-of-N query asks for the skyline of the elements between the
``n2``-th and the ``n1``-th most recent arrivals (``n1 <= n2 <= N``) —
recent "historic" information, with n-of-N as the special case
``n1 = 1``.

Unlike n-of-N processing, *all* of ``P_N`` must be retained (``n1``
could equal ``n2``).  Every element ``e`` carries two ancestors:

* ``a_e`` — the **critical ancestor**: youngest *older* dominator
  (Equation 1; ``0`` when none exists), and
* ``b_e`` — the **backward critical ancestor**: oldest *younger*
  dominator (Equation 2; ``infinity`` — stored as ``None`` — while no
  younger dominator exists, i.e. while ``e`` is in ``R_N``).

Theorem 4: ``e`` answers an (n1,n2)-of-N query iff ::

    kappa(a_e) < M - n2 + 1 <= kappa(e) <= M - n1 + 1 < kappa(b_e)

The edge set (the *CBC dominance graph*) is encoded as intervals
``(kappa(a_e), kappa(e)]`` annotated with ``kappa(b_e)`` and split over
two interval trees (Figure 11):

* ``I_RN`` — elements still in ``R_N`` (``b_e = infinity``), which is
  exactly the n-of-N structure of section 3.2, and
* ``I_RN-`` — superseded elements (finite ``b_e``).

Queries stab both trees with ``M - n2 + 1`` and post-filter on the
``b_e`` condition (Algorithm 3); maintenance (Algorithm 4) mirrors
Algorithm 1, with dominated elements *demoted* from ``I_RN`` to
``I_RN-`` instead of discarded.  Every element moves between the trees
at most once, keeping updates amortised ``O(log N)``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, cast

from repro.accel.batch_prefilter import (
    BatchPrefilter,
    iter_chunks,
    resolve_batch_chunk,
)
from repro.accel.stab_cache import StabCache
from repro.core.element import StreamElement
from repro.core.stats import EngineStats
from repro.exceptions import (
    DimensionMismatchError,
    InvalidWindowError,
    StructureCorruptionError,
)
from repro.sanitize.sanitizer import InvariantSanitizer, SanitizeArg
from repro.structures.interval_tree import IntervalHandle, IntervalTree
from repro.structures.rtree_soa import SoARTree, make_rtree


class _WindowRecord:
    """Book-keeping for one element of ``P_N`` (CBC graph vertex)."""

    __slots__ = (
        "element",
        "a_kappa",
        "b_kappa",
        "handle",
        "in_rn",
        "dependents",
    )

    def __init__(self, element: StreamElement) -> None:
        self.element = element
        self.a_kappa: int = 0
        self.b_kappa: Optional[int] = None  # None encodes +infinity
        self.handle: Optional[IntervalHandle] = None
        self.in_rn = True
        #: kappas of elements whose critical ancestor is this element.
        self.dependents: Set[int] = set()


class N1N2Skyline:
    """Sliding-window engine answering all (n1,n2)-of-N skyline queries.

    Parameters
    ----------
    dim:
        Dimensionality of the stream's value vectors.
    capacity:
        ``N`` — the window size; queries may use any
        ``1 <= n1 <= n2 <= N``.
    sanitize:
        Runtime invariant checking: ``"off"`` (default), ``"sampled"``,
        ``"full"``, or a shared
        :class:`~repro.sanitize.InvariantSanitizer`.
    query_cache / kernels / rtree_layout / batch_chunk:
        Query and batched-ingest knobs (see
        :class:`~repro.core.nofn.NofNSkyline`).  Each interval tree
        (``I_RN`` and ``I_RN-``) gets its own versioned stab cache; the
        cached answers are the *raw* stab lists, post-filtered per query
        on the Theorem-4 bounds exactly as the uncached path does.

    Notes
    -----
    Space is ``O(N)``: the whole window is retained, as section 4
    requires.  Use :class:`repro.core.nofn.NofNSkyline` when only
    ``n1 = 1`` queries are needed — it stores only ``R_N``.
    """

    def __init__(
        self,
        dim: int,
        capacity: int,
        rtree_max_entries: int = 12,
        rtree_min_entries: int = 4,
        rtree_split: str = "quadratic",
        sanitize: SanitizeArg = "off",
        query_cache: bool = True,
        kernels: str = "auto",
        rtree_layout: str = "auto",
        batch_chunk: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise InvalidWindowError(f"capacity must be >= 1, got {capacity}")
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        self.dim = dim
        self.capacity = capacity
        self._batch_chunk = resolve_batch_chunk(batch_chunk)
        self._sanitizer = InvariantSanitizer.coerce(sanitize)
        self._m = 0
        self._records: Dict[int, _WindowRecord] = {}
        self._live = IntervalTree()  # I_RN   (b = infinity)
        self._superseded = IntervalTree()  # I_RN- (finite b)
        self._rtree = make_rtree(
            dim,
            max_entries=rtree_max_entries,
            min_entries=rtree_min_entries,
            split=rtree_split,
            kernels=kernels,
            layout=rtree_layout,
        )
        self._kernel_policy = kernels
        self._rtree_layout = rtree_layout
        self._live_cache: Optional[StabCache[_WindowRecord]] = (
            StabCache(self._live) if query_cache else None
        )
        self._superseded_cache: Optional[StabCache[_WindowRecord]] = (
            StabCache(self._superseded) if query_cache else None
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Maintenance (Algorithm 4)
    # ------------------------------------------------------------------

    def append(self, values: Sequence[float], payload: Any = None) -> StreamElement:
        """Ingest one stream element; return it."""
        self._m += 1
        element = StreamElement(values, self._m, payload)

        # -- Expire the element leaving P_N (always the oldest). --------
        expired = 0
        leaving = self._m - self.capacity
        if leaving >= 1:
            self._expire(self._records[leaving])
            expired = 1

        # -- Demote D_{e_new}: e_new becomes their backward ancestor. ---
        demoted = 0
        for entry in self._rtree.remove_dominated(element.values):
            record: _WindowRecord = entry.data
            self._demote(record, b_kappa=element.kappa)
            demoted += 1

        # -- Critical ancestor of the newcomer (best-first search). -----
        record = _WindowRecord(element)
        parent_entry = self._rtree.max_kappa_dominator(element.values)
        if parent_entry is not None:
            parent: _WindowRecord = parent_entry.data
            record.a_kappa = parent.element.kappa
            parent.dependents.add(element.kappa)

        record.handle = self._live.insert(
            float(record.a_kappa), float(element.kappa), record
        )
        self._rtree.insert(element.values, element.kappa, record)
        self._records[element.kappa] = record

        self.stats.record_arrival(
            expired=expired, dominated=demoted, rn_size=len(self._rtree)
        )
        if self._sanitizer is not None:
            self._sanitizer.maybe_verify(self)
        return element

    def append_many(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[StreamElement]:
        """Ingest a batch of stream elements; return them.

        Semantically identical to calling :meth:`append` once per point
        — identical window contents, CBC-graph ancestors, query answers
        and maintenance stats afterwards — but faster on bursty feeds:
        batch members the vectorised intra-batch prefilter proves
        dominated by a younger same-batch member are installed as
        superseded records directly (their backward critical ancestor is
        already known), skipping the R-tree and ``I_RN`` insert/remove
        cycle entirely.

        Validation is all-or-nothing: dimension mismatches and invalid
        values raise before any engine state changes.
        """
        started = perf_counter()
        elements = self._batch_elements(points, payloads)
        dropped = 0
        chunk = min(self._batch_chunk, self.capacity)
        for lo, hi in iter_chunks(len(elements), chunk):
            dropped += self._arrive_chunk(elements, lo, hi)
            if self._sanitizer is not None:
                self._sanitizer.maybe_verify(self)
        self.stats.record_batch(
            size=len(elements), dropped=dropped, seconds=perf_counter() - started
        )
        return elements

    def _batch_elements(
        self,
        points: Sequence[Sequence[float]],
        payloads: Optional[Sequence[Any]],
    ) -> List[StreamElement]:
        """Construct and validate the batch's elements without mutating
        engine state (all-or-nothing ingestion)."""
        pts = list(points)
        if payloads is None:
            payloads = [None] * len(pts)
        elif len(payloads) != len(pts):
            raise ValueError(
                f"got {len(pts)} points but {len(payloads)} payloads"
            )
        elements = []
        for offset, (values, payload) in enumerate(zip(pts, payloads)):
            element = StreamElement(values, self._m + offset + 1, payload)
            if len(element.values) != self.dim:
                raise DimensionMismatchError(self.dim, len(element.values))
            elements.append(element)
        return elements

    def _arrive_chunk(
        self, elements: List[StreamElement], lo: int, hi: int
    ) -> int:
        """Ingest ``elements[lo:hi]``, dispatching to the frozen-tree
        pipeline when the R-tree supports bulk maintenance."""
        if isinstance(self._rtree, SoARTree):
            return self._arrive_chunk_soa(elements, lo, hi)
        return self._arrive_chunk_fallback(elements, lo, hi)

    def _arrive_chunk_fallback(
        self, elements: List[StreamElement], lo: int, hi: int
    ) -> int:
        """Ingest ``elements[lo:hi]`` (at most ``capacity`` of them, so
        no chunk member can expire before its in-chunk dominator
        arrives).

        ``alive_doomed`` tracks prefilter casualties whose killer has
        not arrived yet: logically still in ``R_N`` (they count towards
        ``rn_size``, are candidate critical ancestors, and are reported
        as demotions at their killer's arrival) but physically already
        installed as superseded records.
        """
        chunk = elements[lo:hi]
        pre = BatchPrefilter([e.values for e in chunk], k=1)
        base_kappa = chunk[0].kappa
        alive_doomed: Dict[int, _WindowRecord] = {}
        for i, element in enumerate(chunk):
            kappa = element.kappa
            self._m = kappa

            expired = 0
            leaving = kappa - self.capacity
            if leaving >= 1:
                self._expire(self._records[leaving])
                expired = 1

            demoted = 0
            for entry in self._rtree.remove_dominated(element.values):
                self._demote(entry.data, b_kappa=kappa)
                demoted += 1
            for h in pre.killed_at(i):
                if alive_doomed.pop(base_kappa + h, None) is not None:
                    demoted += 1

            record = _WindowRecord(element)
            parent_entry = self._rtree.max_kappa_dominator(element.values)
            parent = None if parent_entry is None else parent_entry.data
            if pre.is_doomed(i):
                # The critical ancestor may be a still-alive doomed batch
                # member missing from the R-tree; merge the candidates.
                # (A surviving member cannot have an alive doomed
                # ancestor: its ancestor's killer would dominate it too.)
                for h in pre.older_weak_dominators(i):
                    candidate = alive_doomed.get(base_kappa + h)
                    if candidate is not None:
                        if (
                            parent is None
                            or candidate.element.kappa > parent.element.kappa
                        ):
                            parent = candidate
                        break
                    if pre.kill[h] < 0:
                        break  # a survivor: the R-tree search covered it
                    # else: demoted or expired already — keep walking
                if parent is not None:
                    record.a_kappa = parent.element.kappa
                    parent.dependents.add(kappa)
                record.b_kappa = base_kappa + pre.kill[i]
                record.in_rn = False
                record.handle = self._superseded.insert(
                    float(record.a_kappa), float(kappa), record
                )
                alive_doomed[kappa] = record
            else:
                if parent is not None:
                    record.a_kappa = parent.element.kappa
                    parent.dependents.add(kappa)
                record.handle = self._live.insert(
                    float(record.a_kappa), float(kappa), record
                )
                self._rtree.insert(element.values, kappa, record)
            self._records[kappa] = record

            self.stats.record_arrival(
                expired=expired,
                dominated=demoted,
                rn_size=len(self._rtree) + len(alive_doomed),
            )
        if alive_doomed:
            raise StructureCorruptionError(
                f"{len(alive_doomed)} doomed batch members survived their chunk"
            )
        return pre.dropped

    def _arrive_chunk_soa(
        self, elements: List[StreamElement], lo: int, hi: int
    ) -> int:
        """Frozen-tree variant of :meth:`_arrive_chunk_fallback`.

        All R-tree mutations the chunk causes are deferred: demotions
        and expiries accumulate into one bulk
        :meth:`~repro.structures.rtree_soa.SoARTree.delete_many` and the
        chunk's surviving members land with one
        :meth:`~repro.structures.rtree_soa.SoARTree.insert_many`, so the
        tree is searched (and re-summarised) once per chunk instead of
        once per element.  The tree therefore stays at its chunk-start
        state throughout; the two batched searches below answer every
        member's demotion report and critical-ancestor query against
        that frozen state, and per-arrival staleness is repaired with
        window-membership (``_records``) and ``in_rn`` checks.  Chunk
        members themselves never appear in the frozen answers, so the
        intra-chunk prefilter stream is merged in first — chunk kappas
        outrank every indexed kappa, making the first logically-alive
        intra candidate automatically the youngest.
        """
        chunk = elements[lo:hi]
        points = [e.values for e in chunk]
        pre = BatchPrefilter(points, k=1)
        base_kappa = chunk[0].kappa
        # The dispatcher only routes here for the SoA layout.
        rtree = cast(SoARTree, self._rtree)
        victims0 = rtree.report_dominated_batch(points)
        parents0 = rtree.max_kappa_dominator_batch(points)

        deferred_deletes: List[int] = []
        deferred_inserts: Dict[int, _WindowRecord] = {}

        def defer_delete(kappa: int) -> None:
            if deferred_inserts.pop(kappa, None) is None:
                deferred_deletes.append(kappa)

        alive_doomed: Dict[int, _WindowRecord] = {}
        live_rn = len(rtree)  # |R_N| were the deferred flushes applied
        for i, element in enumerate(chunk):
            kappa = element.kappa
            self._m = kappa

            expired = 0
            leaving = kappa - self.capacity
            if leaving >= 1:
                leaving_record = self._records[leaving]
                if leaving_record.in_rn:
                    live_rn -= 1
                self._expire(leaving_record, defer_delete)
                expired = 1

            demoted = 0
            for entry in victims0[i]:
                victim = self._records.get(entry.kappa)
                if victim is None:
                    continue  # expired earlier in the chunk
                self._demote(victim, b_kappa=kappa)
                defer_delete(entry.kappa)
                live_rn -= 1
                demoted += 1
            for h in pre.killed_at(i):
                if alive_doomed.pop(base_kappa + h, None) is not None:
                    demoted += 1

            record = _WindowRecord(element)
            # Youngest logically-alive older dominator: intra-chunk
            # candidates first (surviving members sit in
            # ``deferred_inserts``, doomed-but-unkilled ones in
            # ``alive_doomed`` — neither is in the frozen tree), then
            # the frozen-tree answer, stale-walked past members the
            # chunk has already expired or demoted.
            parent: Optional[_WindowRecord] = None
            for h in pre.older_weak_dominators(i):
                kappa_h = base_kappa + h
                candidate = alive_doomed.get(kappa_h)
                if candidate is None:
                    record_h = self._records.get(kappa_h)
                    if record_h is not None and record_h.in_rn:
                        candidate = record_h
                if candidate is not None:
                    parent = candidate
                    break
            if parent is None:
                parent_entry = parents0[i]
                while parent_entry is not None:
                    stale = self._records.get(parent_entry.kappa)
                    if stale is not None and stale.in_rn:
                        parent = stale
                        break
                    parent_entry = rtree.max_kappa_dominator(
                        element.values, kappa_below=parent_entry.kappa
                    )
            if parent is not None:
                record.a_kappa = parent.element.kappa
                parent.dependents.add(kappa)
            if pre.is_doomed(i):
                record.b_kappa = base_kappa + pre.kill[i]
                record.in_rn = False
                record.handle = self._superseded.insert(
                    float(record.a_kappa), float(kappa), record
                )
                alive_doomed[kappa] = record
            else:
                record.handle = self._live.insert(
                    float(record.a_kappa), float(kappa), record
                )
                deferred_inserts[kappa] = record
                live_rn += 1
            self._records[kappa] = record

            self.stats.record_arrival(
                expired=expired,
                dominated=demoted,
                rn_size=live_rn + len(alive_doomed),
            )
        if alive_doomed:
            raise StructureCorruptionError(
                f"{len(alive_doomed)} doomed batch members survived their chunk"
            )
        if deferred_deletes:
            rtree.delete_many(deferred_deletes)
        if deferred_inserts:
            survivors = list(deferred_inserts.values())
            rtree.insert_many(
                [r.element.values for r in survivors],
                [r.element.kappa for r in survivors],
                survivors,
            )
        return pre.dropped

    def _expire(
        self,
        record: _WindowRecord,
        defer: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Drop the oldest window element, re-rooting its dependents.

        ``defer``, when given, receives the R-tree deletion instead of
        it being applied immediately (the batched frozen-tree path)."""
        if record.a_kappa != 0:
            raise StructureCorruptionError(
                f"expiring element {record.element.kappa} of P_N still has "
                f"a live critical ancestor ({record.a_kappa})"
            )
        for dep_kappa in sorted(record.dependents):
            dep = self._records[dep_kappa]
            tree = self._live if dep.in_rn else self._superseded
            dep.handle = tree.replace(dep.handle, 0.0, float(dep_kappa))
            dep.a_kappa = 0
        record.dependents.clear()
        tree = self._live if record.in_rn else self._superseded
        tree.remove(record.handle)
        record.handle = None
        if record.in_rn:
            if defer is None:
                self._rtree.delete(record.element.kappa)
            else:
                defer(record.element.kappa)
        del self._records[record.element.kappa]

    def _demote(self, record: _WindowRecord, b_kappa: int) -> None:
        """Move a newly-dominated element from ``I_RN`` to ``I_RN-``.

        Its R-tree entry has already been removed by
        :meth:`RTree.remove_dominated`; its interval keeps the same
        endpoints, but now carries a finite backward ancestor.
        """
        self._live.remove(record.handle)
        record.handle = self._superseded.insert(
            float(record.a_kappa), float(record.element.kappa), record
        )
        record.b_kappa = b_kappa
        record.in_rn = False

    # ------------------------------------------------------------------
    # Query processing (Algorithm 3)
    # ------------------------------------------------------------------

    def query(self, n1: int, n2: int) -> List[StreamElement]:
        """Skyline of the elements between the ``n2``-th and ``n1``-th
        most recent arrivals, sorted by ``kappa``.

        Raises
        ------
        InvalidWindowError
            Unless ``1 <= n1 <= n2 <= capacity``.
        """
        if not 1 <= n1 <= n2 <= self.capacity:
            raise InvalidWindowError(
                f"need 1 <= n1 <= n2 <= {self.capacity}, got ({n1}, {n2})"
            )
        self.stats.queries += 1
        if self._m == 0:
            return []
        upper = self._m - n1 + 1  # kappa of the n1-th most recent element
        if upper < 1:
            return []  # the requested slice predates the stream
        stab = max(1, self._m - n2 + 1)

        results: List[StreamElement] = []
        live = (
            self._live_cache.stab(stab)
            if self._live_cache is not None
            else self._live.stab(stab)
        )
        for record in live:
            # Live elements have b = infinity; only the upper bound on
            # kappa(e) needs checking.
            if record.element.kappa <= upper:
                results.append(record.element)
        if n1 > 1:
            # Superseded elements have finite b <= M; they can only
            # qualify when the slice ends strictly before the present.
            superseded = (
                self._superseded_cache.stab(stab)
                if self._superseded_cache is not None
                else self._superseded.stab(stab)
            )
            for record in superseded:
                if record.element.kappa <= upper < record.b_kappa:
                    results.append(record.element)
        results.sort(key=lambda e: e.kappa)
        self.stats.query_results += len(results)
        return results

    def query_nofn(self, n: int) -> List[StreamElement]:
        """The n-of-N special case (``n1 = 1``)."""
        return self.query(1, n)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def seen_so_far(self) -> int:
        """``M`` — number of elements ingested."""
        return self._m

    @property
    def window_size(self) -> int:
        """Current ``|P_N|`` (= min(M, N))."""
        return len(self._records)

    @property
    def rn_size(self) -> int:
        """Current ``|R_N|`` within the window."""
        return len(self._rtree)

    def window_elements(self) -> List[StreamElement]:
        """Every element of ``P_N``, oldest first."""
        return [self._records[k].element for k in sorted(self._records)]

    def ancestors(self, kappa: int) -> Tuple[int, Optional[int]]:
        """``(kappa(a_e), kappa(b_e))`` for the window element labelled
        ``kappa`` (``0`` means no critical ancestor; ``None`` means the
        backward critical ancestor does not exist yet)."""
        record = self._records[kappa]
        return record.a_kappa, record.b_kappa

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify CBC-graph and cross-structure consistency, with the
        Theorem-4 ancestors recomputed by brute force.

        Raises
        ------
        StructureCorruptionError
            On the first violated invariant (survives ``python -O``).
        """
        from repro.sanitize.checks import verify_n1n2

        verify_n1n2(self)

    @property
    def sanitizer(self) -> Optional[InvariantSanitizer]:
        """The attached sanitizer, or ``None`` when checking is off."""
        return self._sanitizer

    @property
    def sanitize_mode(self) -> str:
        """The active sanitize mode (``"off"`` when none is attached)."""
        return "off" if self._sanitizer is None else self._sanitizer.mode

    @property
    def structure_version(self) -> int:
        """Monotonic version of the interval encoding: the sum of both
        trees' versions (every demotion, expiry or arrival bumps it)."""
        return self._live.version + self._superseded.version

    @property
    def kernel_policy(self) -> str:
        """The ``kernels`` knob this engine was built with."""
        return self._kernel_policy

    @property
    def rtree_layout(self) -> str:
        """The ``rtree_layout`` knob this engine was built with (the
        requested policy; the effective layout is
        ``engine._rtree.layout``)."""
        return self._rtree_layout

    @property
    def batch_chunk(self) -> int:
        """The effective batched-ingest chunk size (the ``batch_chunk``
        knob, or the library default when unset)."""
        return self._batch_chunk

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Combined hit/miss/rebuild counters of the two stab caches
        (``None`` when caching is disabled)."""
        if self._live_cache is None or self._superseded_cache is None:
            return None
        merged = dict(self._live_cache.stats())
        for key, value in self._superseded_cache.stats().items():
            merged[key] += value
        return merged


class ContinuousN1N2Query:
    """A continuous (n1,n2)-of-N query.

    The paper develops a space-efficient trigger algorithm for this case
    but omits it for space (section 4, final paragraph); following
    DESIGN.md §4, this wrapper maintains the result by re-running the
    stabbing query per arrival — the strategy the paper itself
    benchmarks as "running nN per new data element" in Figure 16 — and
    reports the per-arrival result delta so applications can react to
    changes only.
    """

    def __init__(self, engine: N1N2Skyline, n1: int, n2: int) -> None:
        if not 1 <= n1 <= n2 <= engine.capacity:
            raise InvalidWindowError(
                f"need 1 <= n1 <= n2 <= {engine.capacity}, got ({n1}, {n2})"
            )
        self.engine = engine
        self.n1 = n1
        self.n2 = n2
        self._current: List[StreamElement] = engine.query(n1, n2)

    def append(
        self, values: Sequence[float], payload: Any = None
    ) -> Tuple[List[StreamElement], List[StreamElement]]:
        """Feed one element; return ``(added, removed)`` result changes."""
        self.engine.append(values, payload)
        return self.refresh()

    def refresh(self) -> Tuple[List[StreamElement], List[StreamElement]]:
        """Recompute the result; return ``(added, removed)``."""
        fresh = self.engine.query(self.n1, self.n2)
        old = {e.kappa: e for e in self._current}
        new = {e.kappa: e for e in fresh}
        added = [e for k, e in new.items() if k not in old]
        removed = [e for k, e in old.items() if k not in new]
        self._current = fresh
        return added, removed

    def result(self) -> List[StreamElement]:
        """The current result, sorted by arrival position."""
        return list(self._current)
