"""Vectorised intra-batch dominance prefilter for batched ingestion.

Real feeds deliver points in bursts, and Theorem 2 (``E[|R_N|] =
O(log^d N)``) says almost every burst member is dominated quickly —
most often by a *younger member of the same burst*.  Such an element
would be inserted into the R-tree / interval tree / label set only to
be ejected again before any query can observe it (queries never run
mid-batch).  The batched ingestion paths
(:meth:`repro.core.nofn.NofNSkyline.append_many` and friends) therefore
precompute, with two NumPy broadcasts over the batch, *when* each batch
member dies at the hands of a younger same-batch member — and skip all
index maintenance for those casualties while still synthesising their
exact per-element :class:`~repro.core.events.ArrivalOutcome`.

The filter is a *skyband* filter: ``k = 1`` marks an element as doomed
at its first younger weak dominator (the skyline engines), ``k > 1`` at
its ``k``-th (the k-skyband engine, where an element is pruned once
``k`` younger dominators have arrived).

The core library stays dependency-free: when NumPy is unavailable the
same quantities are computed with a pure-Python double loop (correct,
just not fast).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every batch test
    import numpy as _np
except ImportError:  # pragma: no cover - the library must work without it
    _np = None

__all__ = ["BatchPrefilter", "intra_batch_survivors", "resolve_batch_chunk"]

#: Batches larger than this are processed in slices of this size so the
#: pairwise dominance matrix stays small (``CHUNK^2`` booleans).  The
#: engines' ``batch_chunk`` knob overrides it per instance; this module
#: constant is the single source of the default
#: (:func:`resolve_batch_chunk`).
CHUNK = 1024


def resolve_batch_chunk(batch_chunk: Optional[int]) -> int:
    """Resolve an engine's ``batch_chunk`` knob to an effective chunk.

    ``None`` (the default everywhere) means :data:`CHUNK`.

    Raises
    ------
    ValueError
        If ``batch_chunk`` is given and smaller than 1.
    """
    if batch_chunk is None:
        return CHUNK
    chunk = int(batch_chunk)
    if chunk < 1:
        raise ValueError(f"batch_chunk must be >= 1, got {batch_chunk}")
    return chunk


class BatchPrefilter:
    """Pairwise weak-dominance analysis of one ingestion batch.

    Parameters
    ----------
    points:
        The batch's value vectors, in arrival order.
    k:
        Skyband depth: member ``i`` is *doomed* once ``k`` younger batch
        members weakly dominate it (``k = 1`` for the skyline engines).

    Attributes
    ----------
    kill:
        ``kill[i]`` is the batch index of the arrival at which member
        ``i`` accumulates its ``k``-th younger same-batch weak
        dominator (the arrival that removes it from the engine), or
        ``-1`` if fewer than ``k`` younger batch members dominate it.
    """

    __slots__ = ("size", "k", "kill", "_weak", "_killed_at")

    def __init__(self, points: Sequence[Sequence[float]], k: int = 1) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.size = len(points)
        self.k = k
        if _np is not None:
            self._init_numpy(points)
        else:
            self._init_python(points)
        self._killed_at: Dict[int, List[int]] = {}
        for idx, at in enumerate(self.kill):
            if at >= 0:
                self._killed_at.setdefault(at, []).append(idx)

    # -- construction ---------------------------------------------------

    def _init_numpy(self, points: Sequence[Sequence[float]]) -> None:
        arr = _np.asarray([tuple(p) for p in points], dtype=float)
        if arr.size == 0:
            self._weak = _np.zeros((0, 0), dtype=bool)
            self.kill = []
            return
        # weak[a, b] <=> points[a] weakly dominates points[b].  One
        # outer comparison per dimension keeps the working set at B^2
        # booleans instead of materialising a B^2 x d cube.
        weak = arr[:, 0, None] <= arr[None, :, 0]
        for c in range(1, arr.shape[1]):
            weak &= arr[:, c, None] <= arr[None, :, c]
        # Younger-dominator relation: row index (the dominator) must
        # arrive after the column index.  tril(k=-1) keeps a > b.
        younger = _np.tril(weak, k=-1)
        if self.k == 1:
            # argmax finds each column's first younger dominator
            # directly; the cumsum is only needed for skyband depths.
            has = younger.any(axis=0)
            first = younger.argmax(axis=0)
        else:
            reached = _np.cumsum(younger, axis=0) >= self.k
            has = reached[-1]
            first = _np.argmax(reached, axis=0)
        self._weak = weak
        self.kill = _np.where(has, first, -1).tolist()

    def _init_python(self, points: Sequence[Sequence[float]]) -> None:
        pts = [tuple(float(v) for v in p) for p in points]
        n = len(pts)
        weak = [[False] * n for _ in range(n)]
        for a in range(n):
            pa = pts[a]
            for b in range(n):
                # Vectorised-fallback inner loop: one call per pair is
                # the whole cost, so the comparison is inlined here.
                weak[a][b] = all(x <= y for x, y in zip(pa, pts[b]))  # lint: skip=REPRO002
        kill = []
        for b in range(n):
            count = 0
            at = -1
            for a in range(b + 1, n):
                if weak[a][b]:
                    count += 1
                    if count == self.k:
                        at = a
                        break
            kill.append(at)
        self._weak = weak
        self.kill = kill

    # -- queries --------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Number of batch members the engines never need to index."""
        return sum(1 for at in self.kill if at >= 0)

    def is_doomed(self, i: int) -> bool:
        """Whether member ``i`` dies to a younger same-batch member."""
        return self.kill[i] >= 0

    def killed_at(self, j: int) -> List[int]:
        """Batch indices whose removal arrival is ``j`` (ascending)."""
        return self._killed_at.get(j, [])

    def older_weak_dominators(self, i: int) -> List[int]:
        """Batch indices ``h < i`` weakly dominating ``i``, youngest
        first — the batch-side candidates for member ``i``'s critical
        dominator search."""
        if _np is not None:
            return _np.flatnonzero(self._weak[:i, i])[::-1].tolist()
        return [h for h in range(i - 1, -1, -1) if self._weak[h][i]]

    def older_weak_victims(self, j: int) -> List[int]:
        """Batch indices ``h < j`` weakly dominated by ``j``, ascending —
        the already-arrived members whose younger-dominator counts grow
        when member ``j`` arrives (the batch-side mirror of an R-tree
        dominance report)."""
        if _np is not None:
            return _np.flatnonzero(self._weak[j, :j]).tolist()
        return [h for h in range(j) if self._weak[j][h]]

    def weakly_dominates(self, a: int, b: int) -> bool:
        """Whether batch member ``a`` weakly dominates member ``b``."""
        return bool(self._weak[a][b])


def intra_batch_survivors(
    points: Sequence[Sequence[float]], k: int = 1
) -> List[int]:
    """Indices of batch members with fewer than ``k`` younger same-batch
    weak dominators, ascending — the members that must touch the engine
    index when the batch is ingested."""
    pre = BatchPrefilter(points, k=k)
    return [i for i in range(pre.size) if not pre.is_doomed(i)]


def iter_chunks(count: int, chunk: int = CHUNK) -> List[Tuple[int, int]]:
    """``(start, stop)`` slice bounds covering ``range(count)`` in
    slices of at most ``chunk``."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    return [(s, min(s + chunk, count)) for s in range(0, count, chunk)]
