"""Versioned read-path cache for interval-tree stabbing queries.

The paper reduces every n-of-N query to *one stabbing query* over the
interval encoding of the critical dominance graph (Theorem 3).  The
engines' write path keeps that encoding in an augmented red-black tree
(:class:`~repro.structures.interval_tree.IntervalTree`), which is the
right structure for ``O(log m)`` updates — but answering reads through
it pays pure-Python pointer chasing per node.  Query traffic is
typically far heavier than the update stream cares to admit, and the
interval set changes only when an arrival, expiry or re-rooting touches
the tree.

:class:`StabCache` therefore trades a little write-side work for a flat
read path:

* **Versioned invalidation** — the interval tree bumps an integer
  version on every insert/remove; the cache compares that single
  integer per query, so invalidation is O(1) and *exact*: a cached
  answer is reused iff the interval set is bit-for-bit the one it was
  computed from.
* **Flat snapshot** — on the first stab after a write the cache walks
  the tree once (in ``(low, high, seq)`` key order, so lows arrive
  sorted) into contiguous ``low``/``high`` arrays.  A stab at ``t``
  becomes ``searchsorted`` + one vectorised comparison +
  ``np.flatnonzero`` instead of an RB-tree descent.  Without NumPy the
  same snapshot is scanned with :func:`bisect.bisect_left` and a plain
  loop — slower, identical results.
* **Elementary-span memo** — the answer to a stab is constant between
  consecutive interval endpoints: for ``t`` inside a span
  ``(v_i, v_{i+1}]`` of the sorted endpoint values, every ``low < t``
  and ``t <= high`` comparison has the same outcome for all of the
  span (an endpoint can never fall strictly inside it).  The memo
  therefore keys on the span index — one ``bisect`` per query — so
  *distinct but equivalent* stab points share a single entry.  Under
  query workloads that sweep ``n`` (or under continuous polling) most
  queries collapse onto at most ``2 |R_N| + 1`` spans and answer from
  the memo without touching the arrays.

Results can be memoized **pre-sorted**: pass ``sort_key`` and every
answer is ordered by it once, on the miss, instead of per query by the
caller (the engines sort by kappa this way).  Callers receive a
**fresh list** per call and may mutate it freely; the memo stores
immutable tuples.  The cache never mutates the tree and may be dropped
or re-attached at any time.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Generic, List, Optional, Tuple, TypeVar

from repro.structures.interval_tree import IntervalTree

try:  # pragma: no cover - exercised only without NumPy installed
    import numpy as _np
except ImportError:  # pragma: no cover - NumPy is optional
    _np = None  # type: ignore[assignment]

D = TypeVar("D")

#: Memo entries kept before the table is dropped wholesale.  Bounds
#: memory when the tree holds more elementary spans than this; a plain
#: clear beats an LRU here because the flat path a miss falls back to
#: is already cheap.
DEFAULT_MAX_MEMO = 1024


class StabCache(Generic[D]):
    """Read-optimised view of one :class:`IntervalTree`.

    Parameters
    ----------
    tree:
        The live tree to mirror.  The cache reads ``tree.version`` and
        ``tree.intervals()`` only; it never mutates the tree.
    max_memo:
        Memo-table capacity (distinct elementary spans); the table is
        cleared when full.
    sort_key:
        When given, answers are sorted by it once per memo entry, so
        every :meth:`stab` returns an ordered list for free.  Without
        it results follow the snapshot (ascending ``low``).

    Attributes
    ----------
    hits / misses:
        Memo-table hits and misses across the cache's lifetime.
    rebuilds:
        How many times the flat snapshot was rebuilt after a write.
    """

    __slots__ = (
        "_tree",
        "_snap_version",
        "_lows",
        "_highs",
        "_data",
        "_bounds",
        "_memo",
        "_max_memo",
        "_sort_key",
        "hits",
        "misses",
        "rebuilds",
    )

    def __init__(
        self,
        tree: IntervalTree[D],
        max_memo: int = DEFAULT_MAX_MEMO,
        sort_key: Optional[Callable[[D], Any]] = None,
    ) -> None:
        if max_memo < 1:
            raise ValueError(f"max_memo must be >= 1, got {max_memo}")
        self._tree = tree
        self._snap_version = -1  # tree versions start at 0: forces a build
        self._lows: Any = []
        self._highs: Any = []
        self._data: List[D] = []
        self._bounds: List[float] = []
        self._memo: Dict[int, Tuple[D, ...]] = {}
        self._max_memo = max_memo
        self._sort_key = sort_key
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def stab(self, t: float) -> List[D]:
        """Payloads of every interval with ``low < t <= high``.

        Same answer set as :meth:`IntervalTree.stab`; output is ordered
        by ``sort_key`` when one was given, otherwise by the snapshot
        (ascending ``low``).  Always returns a fresh list.
        """
        if self._tree.version != self._snap_version:
            self._rebuild()
        # Stab answers are constant on the elementary spans between
        # consecutive endpoint values; the span index is the memo key.
        span = bisect_left(self._bounds, t)
        cached = self._memo.get(span)
        if cached is not None:
            self.hits += 1
            return list(cached)
        self.misses += 1
        out = self._flat_stab(t)
        if self._sort_key is not None:
            out.sort(key=self._sort_key)
        if len(self._memo) >= self._max_memo:
            self._memo.clear()
        self._memo[span] = tuple(out)
        return out

    def is_fresh(self) -> bool:
        """Whether the snapshot matches the tree's current version."""
        return self._tree.version == self._snap_version

    def snapshot_arrays(self) -> Tuple[Any, Any, List[D]]:
        """The flat snapshot as ``(lows, highs, data)``, rebuilt first if
        the tree has moved on.

        This is the export surface of the cache: the shared-memory shard
        replicas (:mod:`repro.parallel.replicas`) publish exactly these
        arrays, so a reader in another process can answer stabs with the
        same ``searchsorted`` arithmetic :meth:`stab` uses locally.  With
        NumPy installed ``lows``/``highs`` are ``float64`` arrays sorted
        by ``low``; without it they are plain lists.  The returned
        objects are the cache's own working copies — callers must treat
        them as read-only (they are replaced wholesale, never mutated,
        on the next rebuild).
        """
        if self._tree.version != self._snap_version:
            self._rebuild()
        return self._lows, self._highs, self._data

    def invalidate(self) -> None:
        """Drop the snapshot and memo, forcing a rebuild on next stab."""
        self._snap_version = -1
        self._memo.clear()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters, for telemetry and the benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rebuilds": self.rebuilds,
            "memo_size": len(self._memo),
            "snapshot_size": len(self._data),
        }

    # ------------------------------------------------------------------
    # Snapshot maintenance
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        """Flatten the tree into sorted-by-low parallel arrays."""
        lows: List[float] = []
        highs: List[float] = []
        data: List[D] = []
        # intervals() yields in (low, high, seq) key order, so ``lows``
        # is already sorted — no extra sort pass needed.
        for interval in self._tree.intervals():
            lows.append(interval.low)
            highs.append(interval.high)
            data.append(interval.data)
        if _np is not None:
            self._lows = _np.asarray(lows, dtype=_np.float64)
            self._highs = _np.asarray(highs, dtype=_np.float64)
        else:
            self._lows = lows
            self._highs = highs
        self._data = data
        # Elementary-span boundaries for the memo key (a plain list:
        # ``bisect`` on it beats a scalar ``searchsorted`` call).
        self._bounds = sorted(set(lows).union(highs))
        self._memo.clear()
        self._snap_version = self._tree.version
        self.rebuilds += 1

    def _flat_stab(self, t: float) -> List[D]:
        """Vectorised stab over the flat snapshot: ``low < t <= high``."""
        data = self._data
        if _np is not None:
            # Lows are sorted: everything left of ``idx`` has low < t.
            idx = int(_np.searchsorted(self._lows, t, side="left"))
            if idx == 0:
                return []
            hit = _np.flatnonzero(self._highs[:idx] >= t)
            return [data[i] for i in hit.tolist()]
        idx = bisect_left(self._lows, t)
        highs = self._highs
        return [data[i] for i in range(idx) if highs[i] >= t]
