"""Vectorised static skyline via NumPy.

Semantically identical to :func:`repro.baselines.naive.naive_skyline`
(strict Pareto dominance, min-skyline, all duplicate copies reported),
but the inner dominance test runs as array operations:

* points are visited in ascending coordinate-sum order (the SFS
  monotone presort — no later point can dominate an earlier one), and
* each candidate is checked against the *matrix* of skyline points kept
  so far with two vectorised comparisons.

Complexity is ``O(n * s * d)`` array work; at tens of thousands of
points this is typically 10-50x faster than the pure-Python baselines
(``benchmarks/bench_baselines.py`` includes it for comparison).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def numpy_skyline(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the skyline of ``points``, ascending.

    Accepts anything convertible to a 2-d float array (one row per
    point).  Matches the semantics of every other baseline.
    """
    return [int(i) for i in np.flatnonzero(pareto_mask(points))]


def pareto_mask(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Boolean mask: ``mask[i]`` iff ``points[i]`` is a skyline member.

    Raises
    ------
    ValueError
        If the input is not interpretable as ``(n, d)`` with ``d >= 1``.
    """
    arr = np.asarray(points, dtype=float)
    if arr.size == 0:
        return np.zeros(0, dtype=bool)
    if arr.ndim != 2 or arr.shape[1] < 1:
        raise ValueError(
            f"expected an (n, d) array of points, got shape {arr.shape}"
        )
    n = arr.shape[0]
    order = np.argsort(arr.sum(axis=1), kind="stable")
    mask = np.zeros(n, dtype=bool)
    kept_rows: List[np.ndarray] = []
    kept = np.empty((0, arr.shape[1]))
    dirty = False
    for idx in order:
        candidate = arr[idx]
        if dirty:
            kept = np.array(kept_rows)
            dirty = False
        if kept.shape[0]:
            weakly = np.all(kept <= candidate, axis=1)
            strictly = np.any(kept < candidate, axis=1)
            if np.any(weakly & strictly):
                continue
        mask[idx] = True
        kept_rows.append(candidate)
        dirty = True
    return mask
