"""Vectorised leaf kernels for the R-tree's dominance searches.

The R-tree walks of section 3.3 (dominance reporting, Figure 7a;
best-first critical-dominator search, Figure 7b) prune at *node* level
with MBR tests, but once a leaf survives pruning every entry is tested
with a per-entry Python loop.  Leaves are where most of the work lands
— fan-out 12 means a test per entry per surviving leaf, per arrival.

This module gives each leaf a :class:`LeafKernel`: the leaf's points as
one contiguous ``(len, dim)`` float matrix plus its kappas as an int
vector.  A whole leaf is then answered by one broadcasted ``<=`` and an
``all(axis=1)`` reduction:

* ``dominated_indices`` — entries weakly dominated by the probe
  (feeds ``report_dominated`` / ``remove_dominated``);
* ``best_dominator_index`` — the max-kappa entry weakly dominating the
  probe (feeds ``max_kappa_dominator``), optionally constrained to
  ``kappa < kappa_below``.

Kernels are built lazily per leaf and cached on the node; every
``recompute()`` (which all structural mutations funnel through) drops
the cache.  Leaves smaller than :data:`KERNEL_MIN_LEAF` skip the
vectorised path entirely — NumPy's fixed per-call overhead loses to a
short Python loop there.  The module is import-safe without NumPy —
the R-tree then keeps its pure-Python per-entry loops, slower but
identical.

Policy strings (constructor/CLI knob ``kernels``):

``"auto"``
    Use kernels when NumPy is importable (the default).
``"on"``
    Same as ``"auto"`` — kept distinct so operators can record intent;
    falls back to pure Python with no error when NumPy is missing.
``"off"``
    Never build kernels, even with NumPy available.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised only without NumPy installed
    import numpy as _np
except ImportError:  # pragma: no cover - NumPy is optional
    _np = None  # type: ignore[assignment]

#: Whether the vectorised path is available at all.
HAVE_NUMPY = _np is not None

#: Legal values of the ``kernels`` knob.
KERNEL_POLICIES = ("auto", "on", "off")

#: Smallest leaf worth vectorising.  Below this the per-entry Python
#: loop beats NumPy's fixed per-call overhead (measured crossover is
#: around six entries; eight keeps a margin), so searches fall back to
#: the loop for smaller leaves even with kernels enabled.
KERNEL_MIN_LEAF = 8


def resolve_kernel_policy(policy: str) -> bool:
    """Map a ``kernels`` policy string to "use kernels now" (bool).

    Raises
    ------
    ValueError
        If ``policy`` is not one of :data:`KERNEL_POLICIES`.
    """
    if policy not in KERNEL_POLICIES:
        raise ValueError(
            f"kernels must be one of {KERNEL_POLICIES}, got {policy!r}"
        )
    return policy != "off" and HAVE_NUMPY


class LeafKernel:
    """Contiguous mirror of one leaf's entries.

    ``points[i]`` / ``kappas[i]`` correspond to the leaf's ``i``-th
    child, in child-list order, so returned indices address the child
    list directly.
    """

    __slots__ = ("points", "kappas")

    def __init__(
        self, points: Sequence[Tuple[float, ...]], kappas: Sequence[int]
    ) -> None:
        if _np is None:  # pragma: no cover - guarded by HAVE_NUMPY
            raise RuntimeError("LeafKernel requires NumPy")
        self.points = _np.asarray(points, dtype=_np.float64)
        self.kappas = _np.asarray(kappas, dtype=_np.int64)

    @classmethod
    def from_entries(cls, entries: Sequence[Any]) -> "LeafKernel":
        """Build from leaf children carrying ``.point`` and ``.kappa``."""
        return cls([e.point for e in entries], [e.kappa for e in entries])

    def __len__(self) -> int:
        return int(self.points.shape[0])


def as_probe(q: Sequence[float]) -> Any:
    """The probe point as a 1-D float array (convert once per search)."""
    if _np is None:  # pragma: no cover - guarded by HAVE_NUMPY
        raise RuntimeError("as_probe requires NumPy")
    return _np.asarray(q, dtype=_np.float64)


def dominated_indices(kernel: LeafKernel, probe: Any) -> List[int]:
    """Child indices whose points are weakly dominated by ``probe``
    (coordinate-wise ``probe <= point``), ascending — the same order a
    per-entry loop over the child list reports them in."""
    mask = (probe <= kernel.points).all(axis=1)
    return _np.flatnonzero(mask).tolist()  # type: ignore[no-any-return]


def best_dominator_index(
    kernel: LeafKernel, probe: Any, kappa_below: Optional[int] = None
) -> int:
    """Index of the max-kappa child weakly dominating ``probe``
    (coordinate-wise ``point <= probe``), or ``-1`` when none does.

    ``kappa_below`` restricts candidates to ``kappa < kappa_below``.
    Any *other* dominating child has a smaller kappa, so the best-first
    search only ever needs this one index per leaf: a lower-kappa
    dominator from the same leaf can never outrank it on the frontier.
    """
    mask = (kernel.points <= probe).all(axis=1)
    if kappa_below is not None:
        mask &= kernel.kappas < kappa_below
    candidates = _np.flatnonzero(mask)
    if candidates.size == 0:
        return -1
    return int(candidates[_np.argmax(kernel.kappas[candidates])])
