"""Optional vectorised (NumPy) helpers.

The core library is dependency-free; this subpackage hosts the
vectorised implementations for users who batch-process large static
point sets (e.g. seeding a window from history) and already have NumPy
around.
"""

from repro.accel.numpy_skyline import numpy_skyline, pareto_mask

__all__ = ["numpy_skyline", "pareto_mask"]
