"""Optional vectorised (NumPy) helpers.

The core library is dependency-free; this subpackage hosts the
vectorised implementations for users who batch-process large static
point sets (e.g. seeding a window from history) and already have NumPy
around, plus the intra-batch dominance prefilter behind the engines'
``append_many`` fast path.

Importing the package never requires NumPy: the static-skyline helpers
are only exported when NumPy is importable, and
:mod:`repro.accel.batch_prefilter` falls back to a pure-Python
implementation (slower, identical results) without it.
"""

from repro.accel.batch_prefilter import BatchPrefilter, intra_batch_survivors

__all__ = ["BatchPrefilter", "intra_batch_survivors"]

try:
    from repro.accel.numpy_skyline import numpy_skyline, pareto_mask
except ImportError:  # pragma: no cover - NumPy not installed
    pass
else:
    __all__ += ["numpy_skyline", "pareto_mask"]
