"""Optional vectorised (NumPy) helpers.

The core library is dependency-free; this subpackage hosts the
vectorised implementations for users who batch-process large static
point sets (e.g. seeding a window from history) and already have NumPy
around, plus the intra-batch dominance prefilter behind the engines'
``append_many`` fast path.

It also hosts the query fast path: the versioned stab cache
(:mod:`repro.accel.stab_cache`) that memoizes interval-tree stabbing
queries between structural changes, and the R-tree leaf kernels
(:mod:`repro.accel.rtree_kernels`) that vectorise the per-leaf
dominance tests inside the maintenance searches.

Importing the package never requires NumPy: the static-skyline helpers
are only exported when NumPy is importable, and
:mod:`repro.accel.batch_prefilter`, :mod:`repro.accel.stab_cache` and
:mod:`repro.accel.rtree_kernels` fall back to pure-Python
implementations (slower, identical results) without it.
"""

from repro.accel.batch_prefilter import BatchPrefilter, intra_batch_survivors
from repro.accel.rtree_kernels import (
    HAVE_NUMPY,
    KERNEL_POLICIES,
    LeafKernel,
    resolve_kernel_policy,
)
from repro.accel.stab_cache import DEFAULT_MAX_MEMO, StabCache

__all__ = [
    "BatchPrefilter",
    "intra_batch_survivors",
    "HAVE_NUMPY",
    "KERNEL_POLICIES",
    "LeafKernel",
    "resolve_kernel_policy",
    "DEFAULT_MAX_MEMO",
    "StabCache",
]

try:
    from repro.accel.numpy_skyline import numpy_skyline, pareto_mask
except ImportError:  # pragma: no cover - NumPy not installed
    pass
else:
    __all__ += ["numpy_skyline", "pareto_mask"]
