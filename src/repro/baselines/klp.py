"""Kung-Luccio-Preparata (KLP) divide-and-conquer skyline [JACM 1975].

This is the algorithm the paper implements as its benchmark ("KLP",
section 5): the classic maxima-set divide and conquer with
``O(n log n)`` time for ``d = 2, 3`` and ``O(n log^{d-2} n)`` for
``d >= 4`` (adapted here to min-skylines).

Structure
---------
* Sort by the first coordinate and split on a distinct median value, so
  that every point in the low half strictly precedes every point in the
  high half on that coordinate (no high point can dominate a low one).
* Recursively compute both halves' skylines.
* **Filter** the high skyline against the low skyline: a high point
  dies iff some low point weakly dominates it on the *remaining*
  coordinates — itself a divide and conquer that sheds one dimension
  per level, with a linear sweep once two dimensions remain.

Tie handling: the original algorithm assumes distinct values per
dimension.  This implementation first collapses exact duplicate
vectors (strict dominance treats copies identically, so membership is
shared), then splits on *distinct* coordinate values; when a
coordinate is constant across a sub-problem it is projected away.
That recovers the textbook invariants without the distinctness
assumption.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, ...]

#: Sub-problems at most this large are solved by pairwise filtering.
_BRUTE_THRESHOLD = 16


def klp_skyline(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the skyline of ``points`` under strict Pareto
    dominance, ascending.

    Semantics are identical to :func:`repro.baselines.naive.naive_skyline`
    (exact duplicates all survive together).
    """
    if not points:
        return []
    groups: Dict[Point, List[int]] = {}
    for idx, raw in enumerate(points):
        groups.setdefault(tuple(float(v) for v in raw), []).append(idx)
    distinct = sorted(groups)
    winners = _skyline_distinct(distinct)
    result: List[int] = []
    for vector in winners:
        result.extend(groups[vector])
    return sorted(result)


# ----------------------------------------------------------------------
# Divide and conquer over distinct, lexicographically sorted vectors
# ----------------------------------------------------------------------


def _skyline_distinct(rows: List[Point]) -> List[Point]:
    """Skyline of distinct lex-sorted vectors (weak == strict here)."""
    if not rows:
        return []
    d = len(rows[0])
    if d == 1:
        return [rows[0]]  # lex-sorted: the minimum is first
    if d == 2:
        return _skyline_2d(rows)
    return _skyline_dc(rows)


def _skyline_2d(rows: List[Point]) -> List[Point]:
    """Linear sweep over lex-sorted distinct 2-d vectors."""
    result: List[Point] = []
    best_y = float("inf")
    for point in rows:
        if point[1] < best_y:
            result.append(point)
            best_y = point[1]
    return result


def _skyline_dc(rows: List[Point]) -> List[Point]:
    """General case (``d >= 3``): split on the first coordinate."""
    if len(rows) <= _BRUTE_THRESHOLD:
        return _brute_skyline(rows, axis=0)
    values = sorted({row[0] for row in rows})
    if len(values) == 1:
        # The first coordinate is constant: dominance is decided by the
        # remaining coordinates (suffixes stay distinct).
        reduced = _skyline_distinct(sorted(row[1:] for row in rows))
        kept = set(reduced)
        return [row for row in rows if row[1:] in kept]
    median = values[len(values) // 2]
    low = [row for row in rows if row[0] < median]
    high = [row for row in rows if row[0] >= median]
    sky_low = _skyline_dc(low) if len(low) > _BRUTE_THRESHOLD else _brute_skyline(low, 0)
    sky_high = _skyline_dc(high) if len(high) > _BRUTE_THRESHOLD else _brute_skyline(high, 0)
    # Low points strictly precede high points on coordinate 0, so only
    # low can kill high, and only the remaining coordinates matter.
    survivors = _filter(sky_low, sky_high, axis=1)
    return sky_low + survivors


def _brute_skyline(rows: List[Point], axis: int) -> List[Point]:
    """Pairwise skyline on coordinates ``axis..d-1`` (distinct rows)."""
    result = []
    for i, candidate in enumerate(rows):
        if not any(
            j != i and _suffix_dominates(other, candidate, axis)
            for j, other in enumerate(rows)
        ):
            result.append(candidate)
    return result


def _suffix_dominates(a: Point, b: Point, axis: int) -> bool:
    # KLP compares coordinate *suffixes* from a pivot axis — a partial-
    # dimension test core.dominance deliberately does not offer.
    return all(x <= y for x, y in zip(a[axis:], b[axis:]))  # lint: skip=REPRO002


# ----------------------------------------------------------------------
# The dimension-shedding filter
# ----------------------------------------------------------------------


def _filter(killers: List[Point], cands: List[Point], axis: int) -> List[Point]:
    """Candidates not weakly dominated on coords ``axis..d-1`` by any
    killer.

    Precondition: every killer weakly dominates every candidate on the
    coordinates before ``axis`` (guaranteed by the callers' splits).
    """
    if not killers or not cands:
        return cands
    d = len(cands[0])
    if axis >= d:
        # All coordinates already matched: everything is dominated.
        return []
    if axis == d - 1:
        best = min(k[axis] for k in killers)
        return [c for c in cands if c[axis] < best]
    if axis == d - 2:
        return _filter_sweep(killers, cands, axis)
    if len(killers) * len(cands) <= _BRUTE_THRESHOLD * _BRUTE_THRESHOLD:
        return [
            c
            for c in cands
            if not any(_suffix_dominates(k, c, axis) for k in killers)
        ]
    values = sorted({p[axis] for p in killers} | {p[axis] for p in cands})
    if len(values) == 1:
        return _filter(killers, cands, axis + 1)
    median = values[len(values) // 2]
    k_low = [k for k in killers if k[axis] < median]
    k_high = [k for k in killers if k[axis] >= median]
    c_low = [c for c in cands if c[axis] < median]
    c_high = [c for c in cands if c[axis] >= median]
    # Within each side the axis ordering is undecided: recurse same-axis.
    c_low = _filter(k_low, c_low, axis)
    c_high = _filter(k_high, c_high, axis)
    # Low killers satisfy the axis constraint against high candidates
    # outright: shed this dimension.
    c_high = _filter(k_low, c_high, axis + 1)
    return c_low + c_high


def _filter_sweep(killers: List[Point], cands: List[Point], axis: int) -> List[Point]:
    """Two remaining coordinates: a merge sweep.

    A candidate dies iff some killer has ``k[axis] <= c[axis]`` and
    ``k[axis+1] <= c[axis+1]``; sweeping both sets in ``axis`` order
    while tracking the killers' running minimum on ``axis+1`` decides
    that in ``O((|K| + |C|) log)`` for the sorts plus a linear merge.
    """
    last = axis + 1
    killers_sorted = sorted(killers, key=lambda p: p[axis])
    order = sorted(range(len(cands)), key=lambda i: cands[i][axis])
    survivors_idx = []
    best = float("inf")
    k_pos = 0
    for idx in order:
        candidate = cands[idx]
        while k_pos < len(killers_sorted) and (
            killers_sorted[k_pos][axis] <= candidate[axis]
        ):
            if killers_sorted[k_pos][last] < best:
                best = killers_sorted[k_pos][last]
            k_pos += 1
        if candidate[last] < best:
            survivors_idx.append(idx)
    survivors_idx.sort()
    return [cands[i] for i in survivors_idx]
