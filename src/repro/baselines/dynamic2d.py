"""A dynamic 2-d skyline structure, in the spirit of Kapoor [SIAM J. Comput. 2000].

The paper's related work (section 2.1) describes Kapoor's structure:
a red-black tree ordering the points by one dimension, with the skyline
of each subtree *implicitly* maintained — ``O(log n)`` updates and
output-sensitive skyline queries.  The paper notes its limitation for
the streaming setting (it maintains one whole-set skyline, and supports
deletion only in 2-d), which is exactly what motivates the n-of-N
machinery.  This module provides the 2-d structure so that comparison
can be made concrete:

* points live in a red-black tree keyed by ``(x, y, key)``;
* every node carries the minimum ``y`` of its subtree;
* ``dominated(x, y)`` answers "does any stored point weakly dominate
  (x, y)?" in ``O(log n)`` via a prefix-min descent;
* ``skyline()`` walks the staircase in ``O(s log n)``, pruning any
  subtree whose min-``y`` cannot beat the running bound.

Insertions and deletions are plain tree updates — ``O(log n)``.

Tie convention: among exact duplicates only the first in key order is
reported (a duplicate cannot beat the running bound its twin set).
Otherwise the output is the strict-Pareto skyline, matching the other
baselines on distinct inputs.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Tuple, Union

from repro.exceptions import DuplicateKeyError, KeyNotFoundError, corruption
from repro.structures.rbtree import NIL, RBNode, RedBlackTree

_INF = float("inf")


def _augment_min_y(node: RBNode) -> None:
    best = node.key[1]
    if node.left is not NIL and node.left.aggregate < best:
        best = node.left.aggregate
    if node.right is not NIL and node.right.aggregate < best:
        best = node.right.aggregate
    node.aggregate = best


class Dynamic2DSkyline:
    """Fully dynamic 2-d min-skyline: insert, delete, query.

    Each point carries a caller-supplied hashable ``key`` (unique),
    used for deletion — in a stream setting, the arrival position.
    """

    def __init__(self) -> None:
        self._tree: RedBlackTree = RedBlackTree(augment=_augment_min_y)
        self._where: dict = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, x: float, y: float, key: Hashable) -> None:
        """Insert point ``(x, y)`` under ``key``.

        Raises
        ------
        DuplicateKeyError
            If ``key`` is already present.
        """
        if key in self._where:
            raise DuplicateKeyError(f"key already present: {key!r}")
        node = self._tree.insert((float(x), float(y), self._order_token(key)), key)
        self._where[key] = node

    def delete(self, key: Hashable) -> Tuple[float, float]:
        """Remove the point stored under ``key``; return ``(x, y)``.

        Raises
        ------
        KeyNotFoundError
            If ``key`` is absent.
        """
        node = self._where.pop(key, None)
        if node is None:
            raise KeyNotFoundError(f"key not present: {key!r}")
        x, y, _ = node.key
        # delete_node may splice another node object into place; refresh
        # the location map for whichever key ends up where.
        self._tree.delete_node(node)
        self._reindex()
        return x, y

    def _reindex(self) -> None:
        # delete_node moves the successor *object* (keeping its key and
        # value), so handles other than the removed one stay valid; the
        # map only needs purging of the removed key, already done.
        return

    @staticmethod
    def _order_token(key: Hashable) -> Union[Hashable, int]:
        # Keys participate in tuple comparison only to disambiguate
        # exact duplicate coordinates; fall back to id() for unorderable
        # keys (stable within a process).
        try:
            key < key  # noqa: B015 - probe orderability
            return key
        except TypeError:
            return id(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._where

    def dominated(self, x: float, y: float) -> bool:
        """Whether some stored point weakly dominates ``(x, y)``,
        i.e. has ``x' <= x`` and ``y' <= y`` — an ``O(log n)`` descent."""
        node = self._tree.root
        while node is not NIL:
            nx, ny, _ = node.key
            if nx <= x:
                # This node and its whole left subtree satisfy x' <= x.
                if ny <= y:
                    return True
                if node.left is not NIL and node.left.aggregate <= y:
                    return True
                node = node.right
            else:
                node = node.left
        return False

    def skyline(self) -> List[Tuple[float, float, Hashable]]:
        """The staircase, as ``(x, y, key)`` ascending in ``x``.

        Output-sensitive: subtrees whose min-``y`` does not improve on
        the running bound are pruned, giving ``O(s log n)``.
        """
        out: List[Tuple[float, float, Hashable]] = []
        self._walk(self._tree.root, _INF, out)
        return out

    def _walk(self, node: RBNode, bound: float, out: list) -> float:
        # Iterative simulation of: walk left, visit, walk right — with
        # subtree pruning on the min-y aggregate.
        stack: List[Tuple[RBNode, bool]] = [(node, False)]
        while stack:
            current, visited = stack.pop()
            if current is NIL or current.aggregate >= bound:
                continue
            if not visited:
                stack.append((current, True))
                stack.append((current.left, False))
            else:
                y = current.key[1]
                if y < bound:
                    out.append((current.key[0], y, current.value))
                    bound = y
                stack.append((current.right, False))
        return bound

    def points(self) -> Iterator[Tuple[float, float, Hashable]]:
        """All stored points in ``(x, y)`` order."""
        for (x, y, _), key in self._tree.items():
            yield x, y, key

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify tree and min-y aggregate consistency.

        Raises :class:`~repro.exceptions.StructureCorruptionError` on
        any violation; the checks survive ``python -O``.
        """
        self._tree.check_invariants()
        self._check_min_y(self._tree.root)
        if len(self._where) != len(self._tree):
            raise corruption(
                "dynamic2d",
                "counts",
                f"location map holds {len(self._where)} points but the "
                f"tree holds {len(self._tree)}",
            )

    def _check_min_y(self, node: RBNode) -> float:
        if node is NIL:
            return _INF
        expected = min(
            node.key[1],
            self._check_min_y(node.left),
            self._check_min_y(node.right),
        )
        if node.aggregate != expected:
            raise corruption(
                "dynamic2d",
                "min-y-augmentation",
                f"node {node.key!r} carries subtree min-y "
                f"{node.aggregate!r}, recomputation gives {expected!r}",
            )
        return expected
