"""Block-nested-loop (BNL) skyline [Borzsonyi, Kossmann, Stocker, ICDE 2001].

The classic database skyline algorithm the paper cites as [4].  Points
stream through a bounded *window* of incomparable candidates:

* a point dominated by a window entry is discarded;
* a point dominating window entries evicts them and joins the window;
* an incomparable point joins the window, or — when the window is
  full — *overflows* into the next pass.

A window entry is confirmed as skyline once every later-arriving point
has been compared against it; with overflow that is exactly the
entries inserted before the pass's first overflow.  Entries inserted
afterwards are re-queued, and passes repeat until no input remains.
Each pass confirms at least one point (the first input of a pass always
enters the then-empty window), so termination is guaranteed.

This in-memory rendition keeps overflow in a list rather than a temp
file; the pass structure and comparison counts are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.dominance import dominates

Point = Tuple[float, ...]


@dataclass
class BNLStats:
    """Work counters for one :func:`bnl_skyline` run."""

    passes: int = 0
    comparisons: int = 0
    overflowed: int = 0


def bnl_skyline(
    points: Sequence[Sequence[float]],
    window_size: Optional[int] = None,
    stats: Optional[BNLStats] = None,
) -> List[int]:
    """Indices of the skyline of ``points``, ascending.

    Parameters
    ----------
    points:
        The input set (strict Pareto dominance, min-skyline).
    window_size:
        Maximum number of candidates held at once; ``None`` means
        unbounded (single pass).
    stats:
        Optional counter sink for pass/comparison accounting.
    """
    if window_size is not None and window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    if stats is None:
        stats = BNLStats()

    pending = list(range(len(points)))
    confirmed: List[int] = []

    while pending:
        stats.passes += 1
        # window holds (index, insertion_position_within_pass)
        window: List[Tuple[int, int]] = []
        overflow: List[int] = []
        first_overflow_pos: Optional[int] = None

        for pos, idx in enumerate(pending):
            candidate = points[idx]
            dominated = False
            survivors: List[Tuple[int, int]] = []
            for k, (w_idx, w_pos) in enumerate(window):
                stats.comparisons += 1
                if dominates(points[w_idx], candidate):
                    dominated = True
                    survivors.append((w_idx, w_pos))
                    # Remaining window entries are untouched.
                    survivors.extend(window[k + 1:])
                    break
                if not dominates(candidate, points[w_idx]):
                    survivors.append((w_idx, w_pos))
            window = survivors
            if dominated:
                continue
            if window_size is None or len(window) < window_size:
                window.append((idx, pos))
            else:
                overflow.append(idx)
                stats.overflowed += 1
                if first_overflow_pos is None:
                    first_overflow_pos = pos

        if first_overflow_pos is None:
            confirmed.extend(w_idx for w_idx, _ in window)
            pending = []
        else:
            # Entries inserted before the first overflow met every later
            # point of this pass and all of the overflow: confirmed.
            confirmed.extend(
                w_idx for w_idx, w_pos in window if w_pos < first_overflow_pos
            )
            requeue = [
                w_idx for w_idx, w_pos in window if w_pos >= first_overflow_pos
            ]
            pending = requeue + overflow

    return sorted(confirmed)
