"""Quadratic-time skyline oracle.

``O(n^2 d)`` pairwise filtering — far too slow for streams, but simple
enough to be *obviously correct*, which makes it the reference
implementation every other algorithm (and both engines) is validated
against in the test suite.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.dominance import dominates, weakly_dominates

Point = Tuple[float, ...]


def naive_skyline(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the skyline of ``points`` under strict Pareto
    dominance, ascending.

    Exact duplicates do not dominate each other, so all copies of a
    duplicated skyline point are reported.
    """
    result = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(points)
            if j != i
        ):
            result.append(i)
    return result


def naive_skyline_youngest(points: Sequence[Sequence[float]]) -> List[int]:
    """Like :func:`naive_skyline` but under *weak* dominance with the
    engines' tie-break: of exact duplicates only the latest (highest
    index) copy survives.

    This matches what :class:`repro.core.nofn.NofNSkyline` reports for a
    window (DESIGN.md §7), making it the oracle for engine tests.
    """
    result = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if j == i:
                continue
            if weakly_dominates(other, candidate) and (
                tuple(other) != tuple(candidate) or j > i
            ):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result
