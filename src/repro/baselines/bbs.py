"""Branch-and-bound skyline (BBS) [Papadias, Tao, Fu, Seeger, SIGMOD 2003].

The paper cites BBS ([23]) as the progressive skyline algorithm with
guaranteed-minimal I/O on R-tree-indexed data.  This implementation
runs it over this library's own in-memory
:class:`~repro.structures.rtree.RTree`:

1. seed a min-heap with the root, keyed by *mindist* — the L1 distance
   of a box's lower corner (or a point) from the origin;
2. repeatedly pop the least entry; discard it if its lower corner is
   weakly dominated by a point already in the skyline; otherwise expand
   nodes into the heap, and emit points — the mindist order guarantees
   every dominator of a point is popped first, so emitted points are
   final.

The progressive variant yields skyline points one at a time in mindist
order, exactly the behaviour BBS is valued for; ``bbs_skyline`` wraps
it with the index-list interface shared by all baselines (strict
Pareto dominance; exact duplicates all reported).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.core.dominance import weakly_dominates
from repro.structures.heap import IndexedHeap
from repro.structures.rtree import RTree, RTreeEntry

Point = Tuple[float, ...]


def bbs_skyline(
    points: Sequence[Sequence[float]],
    max_entries: int = 12,
    min_entries: int = 4,
) -> List[int]:
    """Indices of the skyline of ``points``, ascending.

    Same semantics as the other baselines (strict dominance; all copies
    of a duplicated skyline point reported).
    """
    if not points:
        return []
    groups: Dict[Point, List[int]] = {}
    for idx, raw in enumerate(points):
        groups.setdefault(tuple(float(v) for v in raw), []).append(idx)
    result: List[int] = []
    for vector in bbs_progressive(
        list(groups), max_entries=max_entries, min_entries=min_entries
    ):
        result.extend(groups[vector])
    return sorted(result)


def bbs_progressive(
    points: Sequence[Sequence[float]],
    max_entries: int = 12,
    min_entries: int = 4,
) -> Iterator[Point]:
    """Yield distinct skyline points progressively, in mindist order.

    Points must be distinct vectors (``bbs_skyline`` handles duplicate
    collapsing); under distinct vectors weak and strict dominance
    coincide, so the emitted set is the strict-Pareto skyline.
    """
    pts = [tuple(float(v) for v in p) for p in points]
    if not pts:
        return
    dim = len(pts[0])
    tree = RTree(dim, max_entries=max_entries, min_entries=min_entries)
    for i, point in enumerate(pts):
        tree.insert(point, kappa=i + 1)

    heap: IndexedHeap[int] = IndexedHeap()
    frontier: Dict[int, Union[RTreeEntry, object]] = {}
    counter = 0

    def push(item: Union[RTreeEntry, object], corner: Point) -> None:
        nonlocal counter
        frontier[counter] = item
        # The corner tie-break matters for correctness, not just
        # determinism: float addition is monotone under componentwise <=
        # but can round two *different* corners to the same sum (e.g. a
        # subnormal coordinate vanishing into 1.0).  Dominance implies
        # lexicographic <=, so on equal sums the dominator still pops
        # first and the emitted-points-are-final invariant holds.
        heap.push(counter, (sum(corner), corner, counter))
        counter += 1

    root = tree._root
    if root.mbr is not None:
        push(root, root.mbr.lower)

    skyline: List[Point] = []
    while heap:
        key, _ = heap.pop()
        item = frontier.pop(key)
        if isinstance(item, RTreeEntry):
            if _dominated(item.point, skyline):
                continue
            skyline.append(item.point)
            yield item.point
            continue
        if item.mbr is None or _dominated(item.mbr.lower, skyline):
            continue
        if item.is_leaf:
            for entry in item.children:
                if not _dominated(entry.point, skyline):
                    push(entry, entry.point)
        else:
            for child in item.children:
                if not _dominated(child.mbr.lower, skyline):
                    push(child, child.mbr.lower)


def _dominated(corner: Sequence[float], skyline: List[Point]) -> bool:
    return any(weakly_dominates(s, corner) for s in skyline)
