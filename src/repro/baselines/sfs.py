"""Sort-filter-skyline (SFS) [Chomicki, Godfrey, Gryz, Liang, ICDE 2003].

The paper cites this as [6]: pre-sort the input by a *monotone* scoring
function — if ``a`` strictly dominates ``b`` then ``score(a) <
score(b)`` — so that no point can be dominated by a later one.  A
single scan then suffices: each point is compared against the skyline
collected so far, and accepted points are never evicted.

The default score is the coordinate sum, which is monotone for strict
Pareto dominance (dominating a point implies a strictly smaller sum) —
in exact arithmetic.  Float rounding can absorb a tiny coordinate gap
and hand a dominator the *same* rounded score as its victim (e.g.
``1.0 + 1e-38 == 1.0 + 0.0``), so score ties are broken by the
coordinate tuple: componentwise ``<=`` with one strict ``<`` implies
lexicographically strictly smaller, which restores the sort invariant
that no point is dominated by a later one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.dominance import dominates

ScoreFn = Callable[[Sequence[float]], float]


@dataclass
class SFSStats:
    """Work counters for one :func:`sfs_skyline` run."""

    comparisons: int = 0


def sfs_skyline(
    points: Sequence[Sequence[float]],
    score: Optional[ScoreFn] = None,
    stats: Optional[SFSStats] = None,
) -> List[int]:
    """Indices of the skyline of ``points``, ascending.

    Parameters
    ----------
    points:
        The input set (strict Pareto dominance, min-skyline).
    score:
        Monotone scoring function used for the pre-sort; defaults to
        the coordinate sum.  Supplying a non-monotone function voids
        correctness — the library does not (and cannot cheaply) verify
        monotonicity.
    stats:
        Optional counter sink.
    """
    if score is None:
        score = _coordinate_sum
    if stats is None:
        stats = SFSStats()

    # Score ties break on the coordinate tuple: rounded scores can tie
    # across a real dominance gap, and the scan never evicts, so the
    # dominator must sort first.
    order = sorted(
        range(len(points)),
        key=lambda i: (score(points[i]), tuple(points[i]), i),
    )
    skyline: List[int] = []
    for idx in order:
        candidate = points[idx]
        dominated = False
        for kept in skyline:
            stats.comparisons += 1
            if dominates(points[kept], candidate):
                dominated = True
                break
        if not dominated:
            skyline.append(idx)
    return sorted(skyline)


def _coordinate_sum(point: Sequence[float]) -> float:
    return sum(point)
