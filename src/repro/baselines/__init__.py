"""Baseline skyline algorithms.

* :func:`~repro.baselines.klp.klp_skyline` — Kung-Luccio-Preparata
  divide and conquer, the paper's benchmark algorithm (section 5);
* :func:`~repro.baselines.bnl.bnl_skyline` — block-nested-loop [4];
* :func:`~repro.baselines.sfs.sfs_skyline` — sort-filter-skyline [6];
* :func:`~repro.baselines.naive.naive_skyline` — quadratic oracle used
  by the test suite.

All of them take a sequence of points and return the ascending indices
of the skyline members under strict Pareto dominance (min-skyline), so
they are interchangeable and cross-checkable.
"""

from repro.baselines.bbs import bbs_progressive, bbs_skyline
from repro.baselines.bnl import BNLStats, bnl_skyline
from repro.baselines.dynamic2d import Dynamic2DSkyline
from repro.baselines.klp import klp_skyline
from repro.baselines.naive import naive_skyline, naive_skyline_youngest
from repro.baselines.sfs import SFSStats, sfs_skyline
from repro.baselines.skyband import k_skyband, k_skyband_sorted

__all__ = [
    "BNLStats",
    "Dynamic2DSkyline",
    "SFSStats",
    "bbs_progressive",
    "bbs_skyline",
    "bnl_skyline",
    "k_skyband",
    "k_skyband_sorted",
    "klp_skyline",
    "naive_skyline",
    "naive_skyline_youngest",
    "sfs_skyline",
]
