"""The k-skyband: the standard generalisation of the skyline.

A point is in the *k-skyband* when fewer than ``k`` points strictly
dominate it; the skyline is the 1-skyband.  Skyband computation is the
workhorse behind top-k skyline variants and k-dominant queries in the
literature the paper sits in, and it gives windowed applications a
tunable "how deep below the frontier" knob.

Two implementations:

* :func:`k_skyband` — direct ``O(n^2 d)`` counting (the oracle);
* :func:`k_skyband_sorted` — the SFS-style presorted variant: after
  sorting by coordinate sum no point can be dominated by a later one,
  so each point only counts dominators among earlier *skyband members*
  (a point outside the band cannot push another point out, because its
  own ``>= k`` dominators all dominate the later point too... only when
  they do — which the sum order does not guarantee per-pair; hence the
  counter checks all earlier kept-or-not points that are band members
  OR have fewer than ``k`` dominators themselves).  In practice the
  pruned scan examines far fewer pairs than the oracle.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.dominance import dominates


def k_skyband(points: Sequence[Sequence[float]], k: int) -> List[int]:
    """Indices of points strictly dominated by fewer than ``k`` others,
    ascending.  ``k = 1`` is exactly the skyline.

    Raises
    ------
    ValueError
        If ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    result = []
    for i, candidate in enumerate(points):
        dominators = 0
        for j, other in enumerate(points):
            if j != i and dominates(other, candidate):
                dominators += 1
                if dominators >= k:
                    break
        if dominators < k:
            result.append(i)
    return result


def k_skyband_sorted(points: Sequence[Sequence[float]], k: int) -> List[int]:
    """Presorted k-skyband; same output as :func:`k_skyband`.

    Sorting by coordinate sum guarantees a point's dominators all
    precede it, so one forward pass with early-exit counting suffices —
    and points already counted out (``>= k`` dominators) can be skipped
    as *witnesses* only when ``k == 1`` (transitivity); for general
    ``k`` every earlier point remains a potential dominator, but the
    early exit still prunes most work on skyline-light data.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    order = sorted(range(len(points)), key=lambda i: (sum(points[i]), i))
    result = []
    for pos, idx in enumerate(order):
        candidate = points[idx]
        dominators = 0
        for earlier in order[:pos]:
            if dominates(points[earlier], candidate):
                dominators += 1
                if dominators >= k:
                    break
        if dominators < k:
            result.append(idx)
    return sorted(result)
