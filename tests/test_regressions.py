"""Regression tests for bugs found (and fixed) while building this library.

Each test pins the exact scenario that once failed, so the suite
documents the failure modes as well as guarding against their return.
"""

from __future__ import annotations

import pytest

from repro import (
    ContinuousQueryManager,
    KSkybandEngine,
    NofNSkyline,
    TimeWindowSkyline,
)
from repro.structures.rtree import RTree


class TestContinuousUnfullWindowRoot:
    """Algorithm 2 line 6 reads ``parent < M - n + 1``; early in the
    stream the right side is non-positive while roots carry parent 0,
    so a literal reading drops the very first result element."""

    def test_first_arrival_enters_unfull_window(self):
        engine = NofNSkyline(dim=2, capacity=20)
        manager = ContinuousQueryManager(engine)
        handle = manager.register(15)  # window far from full
        manager.append((0.5, 0.5))
        assert handle.result_kappas() == [1]

    def test_non_root_stays_out_while_window_unfull(self):
        engine = NofNSkyline(dim=2, capacity=20)
        manager = ContinuousQueryManager(engine)
        handle = manager.register(15)
        manager.append((0.1, 0.1))
        manager.append((0.5, 0.5))  # dominated: parent inside window
        assert handle.result_kappas() == [1]


class TestKSkybandSameArrivalPruning:
    """The newcomer's top-k older-dominator search must run before the
    arrival's own pruning: an element pruned *by this arrival* counts
    the newcomer among its k younger dominators and so witnesses only
    k-1 older dominators — the pure duplicate stream exposes this."""

    def test_triplicate_stream_k2(self):
        engine = KSkybandEngine(dim=2, capacity=10, k=2)
        for _ in range(3):
            engine.append((0.5, 0.5))
        # Copies 2 and 3 have < 2 younger duplicates; copy 1 has 2.
        assert [e.kappa for e in engine.skyband()] == [2, 3]
        # The full window of 3 must NOT report copy 1 (it has two
        # younger duplicates inside any window containing it).
        assert [e.kappa for e in engine.query(3)] == [2, 3]

    def test_duplicate_then_shrunk_window(self):
        engine = KSkybandEngine(dim=2, capacity=10, k=2)
        for _ in range(4):
            engine.append((0.3, 0.3))
        # Window of 2: only the last two copies exist; both qualify.
        assert [e.kappa for e in engine.query(2)] == [3, 4]


class TestConstrainedRCorner:
    """Under a ``kappa_below`` constraint the r-corner shortcut of the
    best-first search may surface a *sub-optimal* subtree entry; it
    must be fed back to the frontier, not returned outright."""

    def test_young_cluster_hides_older_winner(self):
        tree = RTree(2, max_entries=4, min_entries=2)
        # A tight cluster of very young dominators (high kappas) whose
        # box r-corners immediately...
        for i in range(8):
            tree.insert((0.1 + i * 0.001, 0.1 + i * 0.001), kappa=100 + i)
        # ...plus an older dominator elsewhere.
        tree.insert((0.05, 0.3), kappa=50)
        found = tree.max_kappa_dominator((0.5, 0.5), kappa_below=100)
        assert found is not None and found.kappa == 50


class TestLabelSetCheckOrder:
    """Re-appending the current tail label must fail as an ordering
    violation (ValueError), not as a duplicate."""

    def test_equal_label_is_an_ordering_error(self):
        from repro.structures.labelset import LabelSet

        labels = LabelSet()
        labels.append(5, None)
        with pytest.raises(ValueError, match="increasing"):
            labels.append(5, None)


class TestBNLWindowEvictionSlice:
    """BNL's window-eviction loop once mis-sliced the untouched suffix
    after a domination hit; this instance exercises that exact path:
    a candidate dominated by a mid-window entry after earlier entries
    were evicted in the same scan."""

    def test_eviction_then_domination_in_one_scan(self):
        from repro.baselines import bnl_skyline, naive_skyline

        points = [
            (0.9, 0.9),   # enters window, evicted later
            (0.8, 0.1),   # enters window
            (0.5, 0.5),   # evicts (0.9,0.9), stays
            (0.6, 0.6),   # dominated by (0.5,0.5) after the eviction
            (0.1, 0.8),
        ]
        assert bnl_skyline(points, window_size=3) == naive_skyline(points)


class TestTimeWindowBoundaries:
    """The closed time window [now - tau, now] vs half-open intervals:
    both boundary cases must behave exactly as documented."""

    def test_element_exactly_at_boundary_is_included(self):
        engine = TimeWindowSkyline(dim=1, horizon=10.0)
        engine.append((5.0,), timestamp=2.0)
        engine.append((9.0,), timestamp=6.0)
        # tau = 4: window [2, 6] includes the t=2 element.
        assert [e.kappa for e in engine.query_last(4.0)] == [1]

    def test_parent_exactly_at_boundary_excludes_child(self):
        engine = TimeWindowSkyline(dim=1, horizon=10.0)
        engine.append((1.0,), timestamp=2.0)   # dominator
        engine.append((5.0,), timestamp=4.0)   # its child
        engine.append((9.0,), timestamp=6.0)
        # tau = 4: the dominator sits exactly on the boundary, is in
        # the window, and therefore keeps suppressing its child.
        got = [e.kappa for e in engine.query_last(4.0)]
        assert 2 not in got and 1 in got


class TestStabPointClamping:
    """Queries for more elements than have arrived clamp the stab point
    to 1 instead of stabbing a non-positive coordinate (where half-open
    root intervals (0, kappa] would match nothing)."""

    def test_oversized_n_returns_full_skyline(self):
        engine = NofNSkyline(dim=2, capacity=100)
        engine.append((0.5, 0.5))
        engine.append((0.2, 0.8))
        assert [e.kappa for e in engine.query(100)] == [1, 2]

    def test_n1n2_slice_before_stream_start(self):
        from repro import N1N2Skyline

        engine = N1N2Skyline(dim=1, capacity=10)
        engine.append((1.0,))
        # The requested slice ends before the first element existed.
        assert engine.query(3, 7) == []


class TestBBSSubnormalTieBreak:
    """BBS orders its heap by mindist = sum of MBR corner coordinates.
    Floating-point addition can round two *different* corners to the
    same sum (e.g. ``1.0 + 1.18e-38 == 1.0``), letting a dominated
    point pop before its dominator and leak into the result.  The heap
    priority therefore tie-breaks on the corner vector itself."""

    POINTS = [(1.0, 1.1754943508222875e-38), (1.0, 0.0)]

    def test_subnormal_coordinate_does_not_leak(self):
        from repro.baselines.bbs import bbs_skyline
        from repro.baselines.naive import naive_skyline

        assert bbs_skyline(self.POINTS) == naive_skyline(self.POINTS) == [1]

    def test_reversed_order_too(self):
        from repro.baselines.bbs import bbs_skyline
        from repro.baselines.naive import naive_skyline

        points = list(reversed(self.POINTS))
        assert bbs_skyline(points) == naive_skyline(points) == [0]


class TestTimeWindowRTreeSplitForwarding:
    """``TimeWindowSkyline.__init__`` once dropped ``rtree_split`` on
    the floor instead of forwarding it to the base engine."""

    def test_split_policy_reaches_the_tree(self):
        engine = TimeWindowSkyline(dim=2, horizon=4.0, rtree_split="rstar")
        assert engine._rtree.split_policy == "rstar"
        default = TimeWindowSkyline(dim=2, horizon=4.0)
        assert default._rtree.split_policy == "quadratic"

    def test_invalid_split_is_rejected(self):
        with pytest.raises(ValueError):
            TimeWindowSkyline(dim=2, horizon=4.0, rtree_split="bogus")


class TestTimeWindowQueryScanSemantics:
    """``query_scan(n)`` inherited from the count-based engine treated
    ``n`` as a *count* while the time-based engine's labels are
    *timestamps* — the scan cut the window at ``M - n + 1`` elements
    and silently answered the wrong question.  It must refuse, like
    ``query(n)`` already did, and point at ``query_last``."""

    def test_query_scan_refuses(self):
        from repro.exceptions import InvalidWindowError

        engine = TimeWindowSkyline(dim=2, horizon=10.0)
        engine.append((0.5, 0.5), 1.0)
        with pytest.raises(InvalidWindowError):
            engine.query_scan(3)

    def test_query_last_still_works(self):
        engine = TimeWindowSkyline(dim=2, horizon=10.0)
        engine.append((0.5, 0.5), 1.0)
        assert [e.kappa for e in engine.query_last(5.0)] == [1]


class TestNilNodeSlots:
    """``_NilNode`` once lacked ``__slots__``, so every red-black tree
    paid for a sentinel ``__dict__`` and — worse — attribute typos on
    NIL were silently absorbed instead of raising."""

    def test_nil_has_no_dict(self):
        from repro.structures.rbtree import NIL

        assert not hasattr(NIL, "__dict__")
        with pytest.raises(AttributeError):
            NIL.aggregte = 1.0  # typo'd attribute must not be absorbed


class TestContinuousHandleSlots:
    """:class:`ContinuousQueryHandle` is allocated per registered query
    and mutated on every trigger; it now declares ``__slots__`` so a
    manager with thousands of queries does not pay a dict per handle."""

    def test_handle_has_no_dict(self):
        from repro import ContinuousQueryManager, NofNSkyline

        manager = ContinuousQueryManager(NofNSkyline(dim=2, capacity=8))
        handle = manager.register(4)
        assert not hasattr(handle, "__dict__")
