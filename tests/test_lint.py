"""Unit tests for the custom AST lint suite (``tools.lint``).

Each REPRO rule is exercised positively (a minimal offending snippet is
flagged) and negatively (the idiomatic fix, an exempt context, or a
waiver comment silences it).  A final test locks the production tree
itself at zero findings, so any new violation fails the suite even
before CI runs the linter.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from tools.lint import lint_paths
from tools.lint.rules import RULES, check_source

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source, path="src/repro/example.py"):
    return [f.code for f in check_source(path, source)]


class TestRepro001BareAssert:
    def test_flags_assert(self):
        assert codes("def f(x):\n    assert x > 0\n") == ["REPRO001"]

    def test_raise_is_clean(self):
        src = (
            "def f(x):\n"
            "    if x <= 0:\n"
            "        raise ValueError(x)\n"
        )
        assert codes(src) == []

    def test_waiver(self):
        src = "def f(x):\n    assert x  # lint: skip=REPRO001\n"
        assert codes(src) == []


class TestRepro002InlineDominance:
    OFFENDER = "def dom(a, b):\n    return all(x <= y for x, y in zip(a, b))\n"

    def test_flags_all_over_zip(self):
        assert codes(self.OFFENDER) == ["REPRO002"]

    def test_flags_any_variant(self):
        src = "def dom(a, b):\n    return any(x < y for x, y in zip(a, b))\n"
        assert codes(src) == ["REPRO002"]

    def test_dominance_module_is_exempt(self):
        assert codes(self.OFFENDER, path="src/repro/core/dominance.py") == []

    def test_mbr_module_is_exempt(self):
        assert codes(self.OFFENDER, path="src/repro/structures/mbr.py") == []

    def test_zip_without_comparison_is_clean(self):
        src = "def add(a, b):\n    return tuple(x + y for x, y in zip(a, b))\n"
        assert codes(src) == []

    def test_equality_over_zip_is_clean(self):
        # Equality is REPRO004's business (and only on coordinate
        # attributes); the dominance rule targets orderings.
        src = "def same(a, b):\n    return all(x == y for x, y in zip(a, b))\n"
        assert codes(src) == []


class TestRepro003MutableDefault:
    def test_flags_list_default(self):
        assert codes("def f(x=[]):\n    return x\n") == ["REPRO003"]

    def test_flags_dict_call_default(self):
        assert codes("def f(x=dict()):\n    return x\n") == ["REPRO003"]

    def test_flags_kwonly_default(self):
        assert codes("def f(*, x={}):\n    return x\n") == ["REPRO003"]

    def test_none_default_is_clean(self):
        assert codes("def f(x=None):\n    return x\n") == []

    def test_tuple_default_is_clean(self):
        assert codes("def f(x=()):\n    return x\n") == []


class TestRepro004CoordinateEquality:
    def test_flags_values_comparison(self):
        src = "def dup(a, b):\n    return a.values == b.values\n"
        assert codes(src) == ["REPRO004"]

    def test_flags_point_inequality(self):
        src = "def f(entry, e):\n    return entry.point != e.values\n"
        assert codes(src) == ["REPRO004"]

    def test_dunder_eq_is_exempt(self):
        src = (
            "class E:\n"
            "    def __eq__(self, other):\n"
            "        return self.values == other.values\n"
        )
        assert codes(src) == []

    def test_other_attributes_are_clean(self):
        src = "def f(a, b):\n    return a.kappa == b.kappa\n"
        assert codes(src) == []

    def test_waiver(self):
        src = (
            "def dup(a, b):\n"
            "    return a.values == b.values  # lint: skip=REPRO004\n"
        )
        assert codes(src) == []


class TestRepro005MissingSlots:
    def test_flags_slotless_node_class(self):
        src = "class TreeNode:\n    def __init__(self):\n        self.x = 1\n"
        assert codes(src) == ["REPRO005"]

    def test_slots_are_clean(self):
        src = "class TreeNode:\n    __slots__ = ('x',)\n"
        assert codes(src) == []

    def test_dataclass_is_exempt(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class ExpiredRecord:\n"
            "    kappa: int\n"
        )
        assert codes(src) == []

    def test_unmatched_name_is_clean(self):
        src = "class EngineStats:\n    def __init__(self):\n        self.n = 0\n"
        assert codes(src) == []


class TestWaiverParsing:
    def test_multiple_codes_one_waiver(self):
        src = (
            "def f(a, b, x=[]):\n"
            "    assert a.values == b.values  "
            "# lint: skip=REPRO001,REPRO004\n"
        )
        assert codes(src) == ["REPRO003"]

    def test_waiver_is_line_scoped(self):
        src = (
            "def f(x):\n"
            "    assert x  # lint: skip=REPRO001\n"
            "    assert x\n"
        )
        assert codes(src) == ["REPRO001"]

    def test_unknown_code_in_waiver_is_ignored(self):
        src = "def f(x):\n    assert x  # lint: skip=REPRO999\n"
        assert codes(src) == ["REPRO001"]


class TestProductionTreeIsClean:
    def test_src_repro_is_clean(self):
        findings = lint_paths([str(REPO_ROOT / "src" / "repro")])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_tools_are_clean(self):
        findings = lint_paths([str(REPO_ROOT / "tools")])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCommandLine:
    def test_module_entrypoint_clean_exit(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_module_entrypoint_reports_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    assert x\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", str(bad)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "REPRO001" in proc.stdout

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout
