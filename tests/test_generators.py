"""Tests for the synthetic benchmark stream generators."""

from __future__ import annotations

import statistics

import pytest

from repro.baselines import naive_skyline
from repro.streams.generators import (
    anticorrelated_stream,
    correlated_stream,
    distributions,
    independent_stream,
    make_stream,
    materialize,
)

ALL_FACTORIES = [independent_stream, correlated_stream, anticorrelated_stream]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
class TestCommonContract:
    def test_count_and_dimension(self, factory):
        points = list(factory(dim=3, count=50, seed=1))
        assert len(points) == 50
        assert all(len(p) == 3 for p in points)

    def test_values_in_unit_cube(self, factory):
        for point in factory(dim=4, count=200, seed=2):
            assert all(0.0 <= v <= 1.0 for v in point)

    def test_deterministic_given_seed(self, factory):
        assert list(factory(2, 30, seed=9)) == list(factory(2, 30, seed=9))

    def test_different_seeds_differ(self, factory):
        assert list(factory(2, 30, seed=1)) != list(factory(2, 30, seed=2))

    def test_zero_count(self, factory):
        assert list(factory(2, 0)) == []

    def test_validation(self, factory):
        with pytest.raises(ValueError):
            list(factory(0, 10))
        with pytest.raises(ValueError):
            list(factory(2, -1))


def _pairwise_correlation(points):
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return statistics.correlation(xs, ys)


class TestDistributionShapes:
    """The defining statistical signatures of the three families."""

    def test_correlated_has_positive_correlation(self):
        points = materialize("correlated", 2, 2000, seed=3)
        assert _pairwise_correlation(points) > 0.7

    def test_anticorrelated_has_negative_correlation(self):
        points = materialize("anticorrelated", 2, 2000, seed=3)
        assert _pairwise_correlation(points) < -0.4

    def test_independent_has_weak_correlation(self):
        points = materialize("independent", 2, 2000, seed=3)
        assert abs(_pairwise_correlation(points)) < 0.1

    def test_skyline_size_ordering(self):
        """The paper's premise: corr < indep < anti skyline sizes."""
        sizes = {}
        for dist in ("correlated", "independent", "anticorrelated"):
            points = materialize(dist, 3, 1500, seed=4)
            sizes[dist] = len(naive_skyline(points))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]


class TestFactoryDispatch:
    def test_distributions_lists_canonical_names(self):
        assert distributions() == [
            "anticorrelated", "correlated", "independent",
        ]

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("ind", "independent"),
            ("indep", "independent"),
            ("corr", "correlated"),
            ("anti", "anticorrelated"),
            ("anti-correlated", "anticorrelated"),
            ("Independent", "independent"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        via_alias = list(make_stream(alias, 2, 10, seed=5))
        direct = list(make_stream(canonical, 2, 10, seed=5))
        assert via_alias == direct

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_stream("zipfian", 2, 10)

    def test_materialize_equals_stream(self):
        assert materialize("independent", 2, 25, seed=6) == list(
            make_stream("independent", 2, 25, seed=6)
        )
