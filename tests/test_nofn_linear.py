"""Tests for the linear-scan ablation engine.

The variant must be *observationally identical* to the R-tree engine —
same queries, same outcomes, same dominance graph — since only the
maintenance-search substrate differs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NofNSkyline
from repro.core.nofn_linear import LinearScanNofNSkyline

from tests.conftest import window_skyline_kappas

coord = st.integers(0, 6).map(lambda v: v / 6)


def streams(max_dim=3, max_len=50):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


class TestObservationalEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(streams(), st.integers(1, 12))
    def test_same_queries_and_graph(self, history, capacity):
        rtree_engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        linear_engine = LinearScanNofNSkyline(
            dim=len(history[0]), capacity=capacity
        )
        for point in history:
            a = rtree_engine.append(point)
            b = linear_engine.append(point)
            assert a.parent_kappa == b.parent_kappa
            assert sorted(e.kappa for e in a.dominated_removed) == (
                sorted(e.kappa for e in b.dominated_removed)
            )
            assert [r.element.kappa for r in a.expired] == [
                r.element.kappa for r in b.expired
            ]
        assert rtree_engine.dominance_graph_edges() == (
            linear_engine.dominance_graph_edges()
        )
        for n in range(1, capacity + 1):
            assert [e.kappa for e in rtree_engine.query(n)] == [
                e.kappa for e in linear_engine.query(n)
            ]

    @settings(max_examples=30, deadline=None)
    @given(streams(max_len=40), st.integers(1, 10))
    def test_matches_oracle_directly(self, history, capacity):
        engine = LinearScanNofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
            engine.check_invariants()
        for n in (1, capacity):
            assert [e.kappa for e in engine.query(n)] == (
                window_skyline_kappas(history, min(n, len(history)))
            )


class TestScanIndexSurface:
    def test_behaves_like_engine_drop_in(self):
        engine = LinearScanNofNSkyline(dim=2, capacity=4)
        engine.append((0.5, 0.5))
        engine.append((0.1, 0.1))
        assert engine.rn_size == 1
        assert [e.kappa for e in engine.skyline()] == [2]

    def test_continuous_manager_composes(self):
        from repro import ContinuousQueryManager

        engine = LinearScanNofNSkyline(dim=2, capacity=5)
        manager = ContinuousQueryManager(engine)
        handle = manager.register(3)
        for point in [(0.5, 0.5), (0.2, 0.8), (0.8, 0.2), (0.4, 0.4)]:
            manager.append(point)
            assert handle.result_kappas() == [
                e.kappa for e in engine.query(3)
            ]
