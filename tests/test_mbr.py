"""Unit and property tests for the MBR geometry (Figure 7 region tests)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DimensionMismatchError
from repro.structures.mbr import MBR


def box(lo, hi):
    return MBR(lo, hi)


class TestConstruction:
    def test_from_point_is_degenerate(self):
        b = MBR.from_point((1.0, 2.0))
        assert b.lower == b.upper == (1.0, 2.0)
        assert b.area() == 0.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="invalid MBR"):
            MBR((2.0, 0.0), (1.0, 1.0))

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(DimensionMismatchError):
            MBR((0.0,), (1.0, 1.0))

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MBR.union_of([])

    def test_union_of_many(self):
        b = MBR.union_of([box((0, 0), (1, 1)), box((2, -1), (3, 0.5))])
        assert b.lower == (0.0, -1.0)
        assert b.upper == (3.0, 1.0)


class TestGeometry:
    def test_area_and_margin(self):
        b = box((0, 0), (2, 3))
        assert b.area() == 6.0
        assert b.margin() == 5.0

    def test_center(self):
        assert box((0, 0), (2, 4)).center() == (1.0, 2.0)

    def test_union_commutative(self):
        a, b = box((0, 0), (1, 1)), box((2, 2), (3, 3))
        assert a.union(b) == b.union(a)

    def test_extend_point(self):
        b = box((0, 0), (1, 1)).extend_point((2.0, -1.0))
        assert b.lower == (0.0, -1.0)
        assert b.upper == (2.0, 1.0)

    def test_enlargement_zero_for_contained(self):
        outer, inner = box((0, 0), (4, 4)), box((1, 1), (2, 2))
        assert outer.enlargement(inner) == 0.0
        assert inner.enlargement(outer) == 15.0

    def test_containment(self):
        outer = box((0, 0), (4, 4))
        assert outer.contains_point((4.0, 0.0))  # closed boundary
        assert not outer.contains_point((4.1, 0.0))
        assert outer.contains_box(box((1, 1), (4, 4)))
        assert not outer.contains_box(box((1, 1), (5, 4)))

    def test_intersects_touching_edges(self):
        assert box((0, 0), (1, 1)).intersects(box((1, 1), (2, 2)))
        assert not box((0, 0), (1, 1)).intersects(box((1.5, 0), (2, 1)))

    def test_hash_and_eq(self):
        assert box((0, 0), (1, 1)) == box((0, 0), (1, 1))
        assert hash(box((0, 0), (1, 1))) == hash(box((0, 0), (1, 1)))
        assert box((0, 0), (1, 1)) != box((0, 0), (1, 2))


class TestDominanceRegions:
    """The Figure 7 candidate-region / l-corner / r-corner tests."""

    B = box((2.0, 2.0), (4.0, 4.0))

    def test_l_corner_harvests_subtree(self):
        # q dominates the lower corner: every box point is dominated.
        assert self.B.fully_dominated_by((2.0, 2.0))
        assert self.B.fully_dominated_by((0.0, 1.0))
        assert not self.B.fully_dominated_by((3.0, 1.0))

    def test_candidate_region_for_reporting(self):
        # q below-left of the upper corner may dominate something inside.
        assert self.B.may_contain_dominated((3.0, 3.0))
        assert self.B.may_contain_dominated((4.0, 4.0))
        assert not self.B.may_contain_dominated((4.5, 3.0))

    def test_r_corner_terminates_search(self):
        # The upper corner dominates q: every box point dominates q.
        assert self.B.fully_dominates((4.0, 4.0))
        assert self.B.fully_dominates((5.0, 6.0))
        assert not self.B.fully_dominates((3.0, 6.0))

    def test_candidate_region_for_dominators(self):
        assert self.B.may_contain_dominator((2.0, 2.0))
        assert self.B.may_contain_dominator((3.0, 10.0))
        assert not self.B.may_contain_dominator((1.0, 10.0))

    def test_region_tests_validate_dimension(self):
        with pytest.raises(DimensionMismatchError):
            self.B.may_contain_dominated((1.0,))


coords = st.floats(min_value=-10, max_value=10, allow_nan=False, width=32)
point2 = st.tuples(coords, coords)


class TestRegionProperties:
    @given(point2, point2, point2)
    def test_region_tests_are_sound_for_contained_points(self, a, b, q):
        lo = tuple(min(x, y) for x, y in zip(a, b))
        hi = tuple(max(x, y) for x, y in zip(a, b))
        box_ = MBR(lo, hi)
        # Sample the corners of the box as witnesses.
        corners = [
            (lo[0], lo[1]), (lo[0], hi[1]), (hi[0], lo[1]), (hi[0], hi[1]),
        ]
        for corner in corners:
            q_dominates = all(qc <= cc for qc, cc in zip(q, corner))
            if q_dominates:
                assert box_.may_contain_dominated(q)
            if box_.fully_dominated_by(q):
                assert q_dominates
            corner_dominates_q = all(cc <= qc for cc, qc in zip(corner, q))
            if corner_dominates_q:
                assert box_.may_contain_dominator(q)
            if box_.fully_dominates(q):
                assert corner_dominates_q

    @given(point2, point2)
    def test_union_contains_both(self, a, b):
        ba, bb = MBR.from_point(a), MBR.from_point(b)
        u = ba.union(bb)
        assert u.contains_point(a) and u.contains_point(b)
        assert u.contains_box(ba) and u.contains_box(bb)
