"""Behavioural tests for the (n1,n2)-of-N engine (paper section 4)."""

from __future__ import annotations

import pytest

from repro import ContinuousN1N2Query, N1N2Skyline
from repro.exceptions import InvalidWindowError

from tests.conftest import slice_skyline_kappas


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(InvalidWindowError):
            N1N2Skyline(dim=2, capacity=0)
        with pytest.raises(ValueError, match="dimension"):
            N1N2Skyline(dim=0, capacity=4)

    def test_fresh_engine(self):
        engine = N1N2Skyline(dim=2, capacity=4)
        assert engine.seen_so_far == 0
        assert engine.window_size == 0
        assert engine.query(1, 4) == []


class TestWindowRetention:
    def test_whole_window_is_kept(self):
        """Unlike n-of-N, every window element survives — n1 could equal
        n2, so even deeply dominated elements answer some query."""
        engine = N1N2Skyline(dim=2, capacity=5)
        engine.append((0.1, 0.1))
        engine.append((0.9, 0.9))  # hopeless... except for (n1,n2)=(1,1)
        assert engine.window_size == 2
        # The younger element is dominated by an *older* one, so it is
        # still non-redundant (nothing younger beats it): |R_N| = 2.
        assert engine.rn_size == 2
        assert [e.kappa for e in engine.query(1, 1)] == [2]
        # The older element pushed out of R_N happens the other way:
        engine.append((0.05, 0.05))  # dominates both
        assert engine.window_size == 3
        assert engine.rn_size == 1

    def test_window_slides_at_capacity(self):
        engine = N1N2Skyline(dim=1, capacity=3)
        for i in range(5):
            engine.append((float(i),))
        assert engine.window_size == 3
        assert [e.kappa for e in engine.window_elements()] == [3, 4, 5]

    def test_rn_vs_window_split(self):
        engine = N1N2Skyline(dim=2, capacity=10)
        engine.append((0.5, 0.5))
        engine.append((0.3, 0.3))  # dominates kappa 1
        assert engine.window_size == 2
        assert engine.rn_size == 1


class TestAncestors:
    def test_critical_and_backward_ancestors(self):
        engine = N1N2Skyline(dim=2, capacity=10)
        engine.append((0.5, 0.5))  # kappa 1
        engine.append((0.7, 0.7))  # kappa 2: a = 1
        engine.append((0.2, 0.2))  # kappa 3: dominates both
        assert engine.ancestors(1) == (0, 3)  # b_1 = 3
        assert engine.ancestors(2) == (1, 3)
        assert engine.ancestors(3) == (0, None)  # in R_N: b = infinity

    def test_backward_ancestor_is_oldest_younger_dominator(self):
        engine = N1N2Skyline(dim=2, capacity=10)
        engine.append((0.5, 0.5))  # kappa 1
        engine.append((0.4, 0.4))  # kappa 2 dominates 1 -> b_1 = 2
        engine.append((0.3, 0.3))  # kappa 3 dominates 1 and 2
        assert engine.ancestors(1) == (0, 2)  # the *oldest* such, not 3
        assert engine.ancestors(2) == (0, 3)

    def test_expiry_reroots_dependents_in_both_trees(self):
        engine = N1N2Skyline(dim=2, capacity=3)
        engine.append((0.1, 0.1))  # kappa 1: ancestor of 2 and 3
        engine.append((0.5, 0.5))  # kappa 2: a=1; will also be demoted
        engine.append((0.4, 0.4))  # kappa 3: a=1, demotes 2
        assert engine.ancestors(2) == (1, 3)
        engine.append((0.9, 0.9))  # expels kappa 1
        assert engine.ancestors(2) == (0, 3)
        assert engine.ancestors(3) == (0, None)
        engine.check_invariants()


class TestQueries:
    HISTORY = [
        (0.7, 0.3), (0.2, 0.9), (0.5, 0.5), (0.3, 0.6),
        (0.9, 0.1), (0.4, 0.4), (0.8, 0.8), (0.1, 0.95),
    ]

    @pytest.fixture
    def engine(self):
        engine = N1N2Skyline(dim=2, capacity=8)
        for point in self.HISTORY:
            engine.append(point)
        return engine

    def test_all_slices_match_oracle(self, engine):
        for n1 in range(1, 9):
            for n2 in range(n1, 9):
                got = [e.kappa for e in engine.query(n1, n2)]
                assert got == slice_skyline_kappas(self.HISTORY, n1, n2), (
                    f"(n1, n2) = ({n1}, {n2})"
                )

    def test_parameter_validation(self, engine):
        with pytest.raises(InvalidWindowError):
            engine.query(0, 3)
        with pytest.raises(InvalidWindowError):
            engine.query(3, 2)
        with pytest.raises(InvalidWindowError):
            engine.query(1, 9)

    def test_point_slice(self, engine):
        # n1 == n2: the skyline of a single element is that element.
        assert [e.kappa for e in engine.query(3, 3)] == [6]

    def test_slice_predating_stream_is_empty(self):
        engine = N1N2Skyline(dim=1, capacity=10)
        engine.append((1.0,))
        assert engine.query(5, 7) == []

    def test_nofn_special_case_matches(self, engine):
        for n in range(1, 9):
            assert engine.query_nofn(n) == engine.query(1, n)

    def test_query_does_not_mutate(self, engine):
        engine.query(2, 6)
        engine.query(1, 8)
        engine.check_invariants()


class TestContinuousWrapper:
    def test_validates_bounds(self):
        engine = N1N2Skyline(dim=2, capacity=4)
        with pytest.raises(InvalidWindowError):
            ContinuousN1N2Query(engine, 3, 2)

    def test_tracks_slice_and_reports_delta(self):
        engine = N1N2Skyline(dim=2, capacity=6)
        query = ContinuousN1N2Query(engine, n1=2, n2=4)
        added, removed = query.append((0.5, 0.5))
        assert added == [] and removed == []  # slice still ahead of data
        query.append((0.3, 0.3))
        added, _ = query.append((0.9, 0.9))
        # Now M=3: slice covers kappas [1..2] -> skyline of those two.
        assert [e.kappa for e in query.result()] == [2]
        assert {e.kappa for e in added} == {2}

    def test_result_always_matches_engine(self):
        engine = N1N2Skyline(dim=2, capacity=5)
        query = ContinuousN1N2Query(engine, n1=2, n2=5)
        points = [(0.6, 0.4), (0.2, 0.8), (0.5, 0.5), (0.7, 0.1),
                  (0.3, 0.3), (0.9, 0.9), (0.1, 0.6)]
        for point in points:
            query.append(point)
            assert [e.kappa for e in query.result()] == [
                e.kappa for e in engine.query(2, 5)
            ]
