"""Tests for the query-index dispatch layer (``query_index="on"``).

The indexed path must be *observably identical* to both oracles: a
fresh ``engine.query(n)`` after every arrival (Proposition 1), and the
seed per-handle loop (``query_index="off"``) — results, ``changes``
counters and trigger behaviour alike — under interleaved single and
batched feeding, duplicate window sizes, mid-stream registration and
unregistration, and both R-tree layouts.  The ``continuous-index``
sanitizer invariant must catch seeded corruption of every structural
piece: the sorted axis, the refcounts, the expiry heap and the group
member sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ContinuousQueryManager, NofNSkyline
from repro.core.persistence import loads, dumps, restore, snapshot
from repro.core.query_index import (
    INDEX_MODES,
    QueryGroup,
    QueryIndex,
    mixed_query_plan,
    resolve_index_mode,
)
from repro.exceptions import (
    InvalidWindowError,
    KeyNotFoundError,
    QueryNotRegisteredError,
    StructureCorruptionError,
)

coord = st.integers(0, 6).map(lambda v: v / 6)


def streams(max_dim=3, max_len=60):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


def _fresh_kappas(engine, n):
    return [e.kappa for e in engine.query(n)]


def _drive(capacity=40, points=120, dim=2, layout="auto", **manager_kwargs):
    """A prefilled engine + manager pair fed a deterministic stream."""
    engine = NofNSkyline(dim=dim, capacity=capacity, rtree_layout=layout)
    manager = ContinuousQueryManager(engine, **manager_kwargs)
    for i in range(points):
        manager.append(((i * 7919) % 97 / 97.0, (i * 104729) % 89 / 89.0))
    return engine, manager


class TestIndexModeKnob:
    def test_modes_and_resolution(self):
        assert INDEX_MODES == ("auto", "on", "off")
        assert resolve_index_mode("auto") == "on"
        assert resolve_index_mode("on") == "on"
        assert resolve_index_mode("off") == "off"
        with pytest.raises(ValueError):
            resolve_index_mode("fast")

    def test_manager_exposes_resolved_mode(self):
        engine = NofNSkyline(dim=2, capacity=8)
        assert ContinuousQueryManager(engine).query_index == "on"
        legacy = ContinuousQueryManager(engine, query_index="off")
        assert legacy.query_index == "off"
        assert legacy.query_index_stats() is None

    def test_register_validation_unchanged(self):
        engine = NofNSkyline(dim=2, capacity=8)
        manager = ContinuousQueryManager(engine)
        with pytest.raises(InvalidWindowError):
            manager.register(0)
        with pytest.raises(InvalidWindowError):
            manager.register(9)

    def test_unregister_unknown_handle_raises(self):
        engine = NofNSkyline(dim=2, capacity=8)
        manager = ContinuousQueryManager(engine)
        handle = manager.register(4)
        manager.unregister(handle)
        with pytest.raises(QueryNotRegisteredError):
            manager.unregister(handle)


class TestGroupDedupe:
    def test_duplicate_n_shares_one_group(self):
        engine = NofNSkyline(dim=2, capacity=20)
        manager = ContinuousQueryManager(engine)
        a = manager.register(5)
        b = manager.register(5)
        c = manager.register(9)
        assert a._group is b._group
        assert a._group is not c._group
        stats = manager.query_index_stats()
        assert stats["groups"] == 2
        assert stats["handles"] == 3

    def test_changes_counter_is_per_handle(self):
        engine, manager = _drive(capacity=16, points=40)
        early = manager.register(8)
        for i in range(10):
            manager.append((0.3, 0.4 + i / 100))
        late = manager.register(8)
        assert late._group is early._group
        assert late.changes == 0
        assert early.changes > 0
        before_early, before_late = early.changes, late.changes
        for i in range(10):
            manager.append((0.2 + i / 50, 0.6))
        assert early.changes - before_early == late.changes - before_late

    def test_release_drops_empty_groups(self):
        engine = NofNSkyline(dim=2, capacity=20)
        manager = ContinuousQueryManager(engine)
        a = manager.register(5)
        b = manager.register(5)
        manager.unregister(a)
        assert manager.query_index_stats()["groups"] == 1
        manager.unregister(b)
        assert manager.query_index_stats()["groups"] == 0

    def test_release_unknown_group_raises(self):
        index = QueryIndex()
        with pytest.raises(KeyNotFoundError):
            index.release(7)


class TestUnregisterFreeze:
    def test_departing_handle_freezes_while_twin_tracks(self):
        engine, manager = _drive(capacity=24, points=60)
        keeper = manager.register(12)
        leaver = manager.register(12)
        for i in range(10):
            manager.append((0.1 + i / 40, 0.8))
        frozen_kappas = leaver.result_kappas()
        frozen_changes = leaver.changes
        manager.unregister(leaver)
        for i in range(25):
            manager.append((0.5, 0.1 + i / 60))
        assert leaver.result_kappas() == frozen_kappas
        assert leaver.changes == frozen_changes
        assert keeper.result_kappas() == _fresh_kappas(engine, 12)


class TestMemoisedResults:
    def test_result_memoised_between_maintenance(self):
        engine, manager = _drive(capacity=16, points=40)
        handle = manager.register(8)
        group = handle._group
        first = handle.result()
        assert group._sorted_changes == group.changes
        memo = group._sorted_elements
        again = handle.result()
        assert group._sorted_elements is memo
        assert first == again
        assert first is not again  # copies: callers cannot corrupt memo
        manager.append((0.05, 0.05))
        refreshed = handle.result_kappas()
        assert refreshed == _fresh_kappas(engine, 8)

    def test_kappas_and_elements_stay_aligned(self):
        group = QueryGroup(4)
        engine, manager = _drive(capacity=10, points=30)
        handle = manager.register(6)
        kappas = handle.result_kappas()
        elements = handle.result()
        assert kappas == [e.kappa for e in elements]
        assert len(group) == 0


class TestMixedQueryPlan:
    def test_plan_shape(self):
        plan = mixed_query_plan(10, 50)
        assert len(plan) == 10
        assert all(1 <= n <= 50 for n in plan)
        # Half the pool repeats: registrations exercise the dedupe path.
        assert len(set(plan)) <= 5
        assert mixed_query_plan(0, 50) == []


class TestIndexedMatchesFreshQueries:
    @settings(max_examples=30, deadline=None)
    @given(streams(), st.integers(2, 12), st.data())
    def test_interleaved_feed_and_registration(self, history, capacity, data):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        manager = ContinuousQueryManager(engine)
        handles = []
        # Duplicate n on purpose: two handles at capacity//2 + 1.
        shared_n = capacity // 2 + 1
        handles.append(manager.register(shared_n))
        handles.append(manager.register(shared_n))
        cursor = 0
        while cursor < len(history):
            step = data.draw(st.integers(1, 4), label="chunk")
            chunk = history[cursor:cursor + step]
            cursor += step
            if data.draw(st.booleans(), label="batched"):
                manager.append_many(chunk)
            else:
                for point in chunk:
                    manager.append(point)
            action = data.draw(st.integers(0, 3), label="action")
            if action == 0:
                handles.append(
                    manager.register(data.draw(
                        st.integers(1, capacity), label="n"
                    ))
                )
            elif action == 1 and len(handles) > 2:
                manager.unregister(handles.pop())
            for handle in handles:
                assert handle.result_kappas() == _fresh_kappas(
                    engine, handle.n
                ), f"n={handle.n} diverged"
        manager.check_invariants()

    @settings(max_examples=10, deadline=None)
    @given(streams(max_dim=2, max_len=40), st.integers(2, 10))
    def test_both_rtree_layouts(self, history, capacity):
        for layout in ("pointer", "soa"):
            engine = NofNSkyline(
                dim=len(history[0]), capacity=capacity, rtree_layout=layout
            )
            manager = ContinuousQueryManager(engine)
            handles = [manager.register(n) for n in range(1, capacity + 1)]
            manager.append_many(history)
            for handle in handles:
                assert handle.result_kappas() == _fresh_kappas(
                    engine, handle.n
                )


class TestIndexedMatchesLegacy:
    @settings(max_examples=25, deadline=None)
    @given(streams(max_len=50), st.integers(2, 10))
    def test_parity_results_and_changes(self, history, capacity):
        dim = len(history[0])
        engine = NofNSkyline(dim=dim, capacity=capacity)
        indexed = ContinuousQueryManager(engine, query_index="on")
        legacy = ContinuousQueryManager(engine, query_index="off")
        pairs = [
            (indexed.register(n), legacy.register(n))
            for n in list(range(1, capacity + 1)) + [capacity // 2 + 1]
        ]
        for point in history:
            outcome = engine.append(point)
            indexed.process(outcome)
            legacy.process(outcome)
            for ih, lh in pairs:
                assert ih.result_kappas() == lh.result_kappas()
                assert ih.changes == lh.changes
        for ih, lh in pairs:
            assert [e.kappa for e in ih.result()] == [
                e.kappa for e in lh.result()
            ]

    def test_batch_parity_under_full_sanitize(self):
        capacity = 24
        engine = NofNSkyline(dim=2, capacity=capacity)
        indexed = ContinuousQueryManager(
            engine, query_index="on", sanitize="full"
        )
        legacy = ContinuousQueryManager(engine, query_index="off")
        for n in mixed_query_plan(12, capacity):
            indexed.register(n)
            legacy.register(n)
        points = [
            ((i * 37) % 41 / 41.0, (i * 61) % 53 / 53.0) for i in range(90)
        ]
        for start in range(0, len(points), 7):
            batch = engine.append_many(points[start:start + 7])
            indexed.process_batch(batch)
            legacy.process_batch(batch)
        for ih, lh in zip(indexed, legacy):
            assert ih.result_kappas() == lh.result_kappas()
            assert ih.changes == lh.changes
        stats = indexed.query_index_stats()
        assert stats["batch_passes"] > 0
        assert stats["routed_events"] > 0


class TestContinuousIndexSanitizer:
    def _corrupt(self, manager, poke):
        poke(manager._index)
        with pytest.raises(StructureCorruptionError) as excinfo:
            manager.check_invariants()
        assert excinfo.value.report is not None
        return excinfo.value.report.invariant

    def _manager(self):
        engine, manager = _drive(capacity=30, points=80)
        for n in (6, 11, 11, 19, 27):
            manager.register(n)
        return manager

    def test_axis_out_of_order(self):
        manager = self._manager()
        invariant = self._corrupt(manager, lambda idx: idx._axis.reverse())
        assert invariant == "continuous-index"

    def test_refcount_mismatch(self):
        manager = self._manager()

        def poke(idx):
            idx._order[0].refs += 1

        assert self._corrupt(manager, poke) == "continuous-index"

    def test_expiry_entry_scheduled_late(self):
        manager = self._manager()

        def poke(idx):
            n = idx._axis[0]
            if n in idx._expiry:
                idx._expiry.update_priority(n, 10 ** 9)
            else:
                idx._expiry.push(n, 10 ** 9)

        assert self._corrupt(manager, poke) == "continuous-index"

    def test_member_silently_dropped(self):
        manager = self._manager()

        def poke(idx):
            group = next(g for g in idx._order if len(g) > 0)
            kappa = group.result_kappas()[0]
            # Consistent drop (members + heap + no counter bump): only
            # the brute-force Proposition 1 replay can notice.
            del group._members[kappa]
            group._heap.delete(kappa)
            group._sorted_changes = -1

        assert self._corrupt(manager, poke) == "continuous-index"

    def test_clean_manager_passes(self):
        manager = self._manager()
        manager.check_invariants()


class TestContinuousPersistence:
    def test_round_trip_and_continued_maintenance(self):
        engine, manager = _drive(capacity=20, points=50)
        a = manager.register(7)
        b = manager.register(7)
        c = manager.register(15)
        for i in range(10):
            manager.append((0.2 + i / 40, 0.7))
        clone = restore(snapshot(manager))
        assert clone.query_index == manager.query_index
        assert sorted(h.query_id for h in clone) == sorted(
            h.query_id for h in manager
        )
        by_id = {h.query_id: h for h in clone}
        for handle in (a, b, c):
            twin = by_id[handle.query_id]
            assert twin.n == handle.n
            assert twin.result_kappas() == handle.result_kappas()
            assert twin.changes == handle.changes
        # Maintenance continues identically on both sides.
        for i in range(15):
            point = (0.1 + i / 30, 0.4)
            manager.append(point)
            clone.append(point)
        for handle in (a, b, c):
            twin = by_id[handle.query_id]
            assert twin.result_kappas() == handle.result_kappas()
            assert twin.changes == handle.changes
        clone.check_invariants()

    def test_next_id_continues_without_collision(self):
        engine, manager = _drive(capacity=12, points=20)
        manager.register(4)
        manager.register(9)
        clone = loads(dumps(manager))
        fresh = clone.register(6)
        assert fresh.query_id not in {4, 9} and fresh.query_id >= 3
        assert len({h.query_id for h in clone}) == 3

    def test_legacy_mode_round_trips(self):
        engine = NofNSkyline(dim=2, capacity=10)
        manager = ContinuousQueryManager(engine, query_index="off")
        handle = manager.register(5)
        for i in range(20):
            manager.append((i % 7 / 7.0, i % 5 / 5.0))
        clone = loads(dumps(manager))
        assert clone.query_index == "off"
        twin = next(iter(clone))
        assert twin.result_kappas() == handle.result_kappas()
        assert twin.changes == handle.changes
