"""Frozen-tree batched pipeline: snapshot-level parity and knob wiring.

The SoA engines process ``append_many`` chunks against a *frozen*
R-tree — every search answered up front, all mutations flushed as one
``delete_many`` + one ``insert_many`` — so these tests pin the
strongest parity statement available: against a per-element twin built
with **identical knobs**, batched ingestion must produce *byte-
identical* persistence snapshots (same retained records, same critical
parents, same stats) and identical critical-dominance edges, across
layouts, chunk sizes (including ``batch_chunk=1`` and chunks far larger
than the stream), interleaved expiry and mid-stream queries.

The ``batch_chunk`` knob itself is exercised end to end: constructor
validation, the resolved default, shard-spec propagation, and snapshot
round-trips.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    KSkybandEngine,
    N1N2Skyline,
    NofNSkyline,
    ShardedKSkyband,
    ShardedNofNSkyline,
    TimeWindowSkyline,
)
from repro.accel.batch_prefilter import CHUNK, resolve_batch_chunk
from repro.core.persistence import restore, snapshot
from repro.parallel.shard_engines import (
    ShardKSkybandEngine,
    ShardNofNEngine,
    build_shard_engine,
)

#: The chunk grid the issue pins: degenerate (1), tiny (3), the library
#: default, and far beyond any test stream (one chunk per batch).
CHUNK_SIZES = (1, 3, CHUNK, 10 * CHUNK)

#: Counters only ``append_many`` advances; everything else in a
#: snapshot — records, parents, query counters, rn peaks — must match a
#: per-element twin exactly.
BATCH_ONLY_STATS = (
    "batches", "batch_elements", "prefilter_dropped", "batch_size_peak",
    "batch_seconds_total", "batch_seconds_max",
)

coord = st.integers(0, 7).map(lambda v: v / 7)


def streams(max_dim=4, max_len=60):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


def canon(engine):
    """The engine's snapshot as canonical bytes, batch-only counters
    removed (the per-element twin never records a batch)."""
    snap = snapshot(engine)
    for key in BATCH_ONLY_STATS:
        snap["stats"].pop(key, None)
    return json.dumps(snap, sort_keys=True)


class TestNofNSnapshotParity:
    @settings(max_examples=40, deadline=None)
    @given(
        streams(),
        st.integers(1, 12),
        st.sampled_from(CHUNK_SIZES),
        st.sampled_from(["soa", "pointer"]),
        st.integers(0, 10**6),
    )
    def test_byte_identical_snapshots(
        self, history, capacity, chunk, layout, seed
    ):
        """Batched vs per-element twins with identical knobs: same
        snapshot bytes, same critical parents, same dominance edges —
        with queries interleaved at every batch boundary so stale
        cache / stats divergence cannot hide."""
        dim = len(history[0])
        knobs = dict(
            dim=dim,
            capacity=capacity,
            rtree_layout=layout,
            batch_chunk=chunk,
            sanitize="full",
        )
        batched = NofNSkyline(**knobs)
        twin = NofNSkyline(**knobs)

        import random

        rng = random.Random(seed)
        parents_batched = []
        parents_twin = []
        i = 0
        while i < len(history):
            size = rng.randint(1, len(history) - i)
            batch = history[i:i + size]
            for outcome in batched.append_many(batch):
                parents_batched.append(outcome.parent_kappa)
            for point in batch:
                parents_twin.append(twin.append(point).parent_kappa)
            i += size
            n = rng.randint(1, capacity)
            assert [e.kappa for e in batched.query(n)] == [
                e.kappa for e in twin.query(n)
            ]

        assert parents_batched == parents_twin
        assert sorted(batched.dominance_graph_edges()) == sorted(
            twin.dominance_graph_edges()
        )
        assert canon(batched) == canon(twin)

    def test_chunk_one_degenerates_to_per_element(self):
        """``batch_chunk=1`` runs the whole pipeline one element per
        chunk — prefilter trivial, every flush singular — and must
        still match."""
        points = [(v / 7, (6 - v % 7) / 7) for v in range(25)]
        batched = NofNSkyline(dim=2, capacity=6, batch_chunk=1)
        twin = NofNSkyline(dim=2, capacity=6, batch_chunk=1)
        batched.append_many(points)
        for p in points:
            twin.append(p)
        assert canon(batched) == canon(twin)


class TestTimeWindowSnapshotParity:
    @settings(max_examples=25, deadline=None)
    @given(
        streams(max_dim=3, max_len=40),
        st.lists(st.sampled_from([0.1, 0.4, 1.0, 6.0]), min_size=40,
                 max_size=40),
        st.sampled_from(CHUNK_SIZES),
        st.sampled_from(["soa", "pointer"]),
    )
    def test_byte_identical_snapshots(self, history, gaps, chunk, layout):
        """Bursty timestamps force multi-element expiry inside chunks
        (the deferred-delete/deferred-insert interplay)."""
        dim = len(history[0])
        stamps, now = [], 0.0
        for gap in gaps[:len(history)]:
            now += gap
            stamps.append(now)
        knobs = dict(
            dim=dim, horizon=2.0, rtree_layout=layout, batch_chunk=chunk,
            sanitize="full",
        )
        batched = TimeWindowSkyline(**knobs)
        twin = TimeWindowSkyline(**knobs)
        half = len(history) // 2
        if half:
            batched.append_many(history[:half], stamps[:half])
            for p, t in zip(history[:half], stamps[:half]):
                twin.append(p, t)
            # Interleaved query on both twins (stats must stay equal).
            assert [e.kappa for e in batched.skyline()] == [
                e.kappa for e in twin.skyline()
            ]
        batched.append_many(history[half:], stamps[half:])
        for p, t in zip(history[half:], stamps[half:]):
            twin.append(p, t)
        assert canon(batched) == canon(twin)


class TestN1N2SnapshotParity:
    @settings(max_examples=25, deadline=None)
    @given(
        streams(max_dim=3, max_len=40),
        st.integers(1, 10),
        st.sampled_from(CHUNK_SIZES),
        st.sampled_from(["soa", "pointer"]),
        st.integers(0, 10**6),
    )
    def test_byte_identical_snapshots(
        self, history, capacity, chunk, layout, seed
    ):
        """The CBC graph (both ancestors, demotion targets) must come
        out identical from the frozen-tree path."""
        dim = len(history[0])
        knobs = dict(
            dim=dim, capacity=capacity, rtree_layout=layout,
            batch_chunk=chunk, sanitize="full",
        )
        batched = N1N2Skyline(**knobs)
        twin = N1N2Skyline(**knobs)

        import random

        rng = random.Random(seed)
        i = 0
        while i < len(history):
            size = rng.randint(1, len(history) - i)
            batched.append_many(history[i:i + size])
            for point in history[i:i + size]:
                twin.append(point)
            i += size
            n2 = rng.randint(1, capacity)
            n1 = rng.randint(1, n2)
            assert [e.kappa for e in batched.query(n1, n2)] == [
                e.kappa for e in twin.query(n1, n2)
            ]
        assert canon(batched) == canon(twin)


class TestShardedSnapshotParity:
    @settings(max_examples=15, deadline=None)
    @given(
        streams(max_dim=3, max_len=40),
        st.integers(2, 10),
        st.integers(2, 3),
        st.sampled_from([1, 3, CHUNK]),
    )
    def test_sharded_nofn_byte_identical(self, history, capacity, shards,
                                         chunk):
        dim = len(history[0])
        knobs = dict(
            dim=dim, capacity=capacity, shards=shards, batch_chunk=chunk,
            sanitize="full",
        )
        with ShardedNofNSkyline(**knobs) as batched, \
                ShardedNofNSkyline(**knobs) as twin:
            half = len(history) // 2
            if history[:half]:
                batched.append_many(history[:half])
            for p in history[half:]:
                batched.append(p)
            for p in history:
                twin.append(p)
            assert canon(batched) == canon(twin)

    def test_sharded_skyband_byte_identical(self):
        points = [((v * 3) % 8 / 7, (v * 5) % 8 / 7) for v in range(30)]
        knobs = dict(dim=2, capacity=9, k=2, shards=3, batch_chunk=2,
                     sanitize="full")
        with ShardedKSkyband(**knobs) as batched, \
                ShardedKSkyband(**knobs) as twin:
            batched.append_many(points)
            for p in points:
                twin.append(p)
            assert canon(batched) == canon(twin)


class TestBatchChunkKnob:
    def test_resolve_default_and_validation(self):
        assert resolve_batch_chunk(None) == CHUNK
        assert resolve_batch_chunk(7) == 7
        with pytest.raises(ValueError):
            resolve_batch_chunk(0)
        with pytest.raises(ValueError):
            resolve_batch_chunk(-3)

    @pytest.mark.parametrize("build", [
        lambda c: NofNSkyline(dim=2, capacity=4, batch_chunk=c),
        lambda c: TimeWindowSkyline(dim=2, horizon=1.0, batch_chunk=c),
        lambda c: KSkybandEngine(dim=2, capacity=4, k=2, batch_chunk=c),
        lambda c: N1N2Skyline(dim=2, capacity=4, batch_chunk=c),
        lambda c: ShardedNofNSkyline(dim=2, capacity=4, shards=2,
                                     batch_chunk=c),
        lambda c: ShardedKSkyband(dim=2, capacity=4, k=2, shards=2,
                                  batch_chunk=c),
        lambda c: ShardNofNEngine(dim=2, capacity=4, stride=2,
                                  batch_chunk=c),
        lambda c: ShardKSkybandEngine(dim=2, capacity=4, k=2, stride=2,
                                      batch_chunk=c),
    ])
    def test_every_constructor_validates_and_exposes(self, build):
        with pytest.raises(ValueError):
            build(0)
        assert build(None).batch_chunk == CHUNK
        assert build(5).batch_chunk == 5

    def test_router_forwards_chunk_to_shard_specs(self):
        with ShardedNofNSkyline(dim=2, capacity=6, shards=2,
                                batch_chunk=17) as router:
            assert router.batch_chunk == 17
            assert all(
                spec["batch_chunk"] == 17
                for spec in (router._shard_spec(i) for i in range(2))
            )
        spec = {
            "kind": "skyband", "dim": 2, "capacity": 10, "k": 2,
            "stride": 2, "rtree_max_entries": 12, "rtree_min_entries": 4,
            "rtree_split": "quadratic", "sanitize": "off",
            "query_cache": True, "kernels": "auto", "batch_chunk": 9,
        }
        engine = build_shard_engine(spec)
        assert engine.batch_chunk == 9
        # Pre-knob specs (no key) resolve to the library default.
        del spec["batch_chunk"]
        assert build_shard_engine(spec).batch_chunk == CHUNK

    def test_skyband_shard_clamps_chunk_to_stride_window(self):
        engine = ShardKSkybandEngine(dim=2, capacity=10, k=1, stride=4,
                                     batch_chunk=100)
        # (c - 1) * 4 <= 9  =>  c <= 3
        assert engine._batch_chunk_size() == 3
        small = ShardKSkybandEngine(dim=2, capacity=10, k=1, stride=4,
                                    batch_chunk=2)
        assert small._batch_chunk_size() == 2

    def test_snapshot_records_and_restores_batch_chunk(self):
        for engine in (
            NofNSkyline(dim=2, capacity=4, batch_chunk=13),
            N1N2Skyline(dim=2, capacity=4, batch_chunk=13),
        ):
            engine.append((0.3, 0.4))
            snap = snapshot(engine)
            assert snap["batch_chunk"] == 13
            assert restore(snap).batch_chunk == 13
            # Snapshots from before the knob restore the default.
            del snap["batch_chunk"]
            assert restore(snap).batch_chunk == CHUNK
        with ShardedNofNSkyline(dim=2, capacity=4, shards=2,
                                batch_chunk=13) as router:
            router.append((0.3, 0.4))
            snap = snapshot(router)
        assert snap["batch_chunk"] == 13
        restored = restore(snap)
        try:
            assert restored.batch_chunk == 13
        finally:
            restored.close()
