"""Tests for the epsilon-approximate n-of-N engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import ApproxNofNSkyline
from repro.core.nofn import NofNSkyline


class TestConstruction:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            ApproxNofNSkyline(dim=2, capacity=5, epsilon=0.0)
        with pytest.raises(ValueError, match="epsilon"):
            ApproxNofNSkyline(dim=2, capacity=5, epsilon=-0.1)
        with pytest.raises(ValueError, match="epsilon"):
            ApproxNofNSkyline(dim=2, capacity=5, epsilon=(0.1, 0.0))
        with pytest.raises(ValueError, match="per dimension"):
            ApproxNofNSkyline(dim=3, capacity=5, epsilon=(0.1, 0.1))

    def test_scalar_epsilon_broadcasts(self):
        engine = ApproxNofNSkyline(dim=3, capacity=5, epsilon=0.2)
        assert engine.epsilon == (0.2, 0.2, 0.2)

    def test_per_axis_epsilon_for_mixed_units(self):
        # Price axis on a $50 grid, duration axis on a 0.5h grid: the
        # fine axis keeps resolving trade-offs the coarse one collapses.
        engine = ApproxNofNSkyline(dim=2, capacity=10, epsilon=(50.0, 0.5))
        engine.append((420.0, 3.0))
        engine.append((410.0, 8.0))  # same $-cell, much longer: pruned?
        # (410, 8) snaps to (400, 8.0) and (420, 3) to (400, 3.0):
        # the first dominates on the fine axis, so both coexist only if
        # neither snapped point dominates the other.
        assert [e.kappa for e in engine.skyline()] == [1]

    def test_accessors_delegate(self):
        engine = ApproxNofNSkyline(dim=3, capacity=7, epsilon=0.1)
        assert engine.dim == 3
        assert engine.capacity == 7
        assert engine.seen_so_far == 0
        assert engine.rn_size == 0


class TestResults:
    def test_results_carry_original_vectors(self):
        engine = ApproxNofNSkyline(dim=2, capacity=5, epsilon=0.25)
        engine.append((0.13, 0.87), payload="x")
        [element] = engine.skyline()
        assert element.values == (0.13, 0.87)  # not the snapped grid point
        assert element.payload == "x"

    def test_near_duplicates_collapse(self):
        engine = ApproxNofNSkyline(dim=2, capacity=10, epsilon=0.5)
        engine.append((0.10, 0.10))
        engine.append((0.12, 0.11))  # same grid cell: prunes the elder
        assert engine.rn_size == 1
        assert [e.kappa for e in engine.skyline()] == [2]

    def test_exact_skyline_retained_for_coarse_separation(self):
        """Points far apart relative to epsilon behave exactly."""
        engine = ApproxNofNSkyline(dim=2, capacity=10, epsilon=0.01)
        exact = NofNSkyline(dim=2, capacity=10)
        points = [(0.9, 0.1), (0.5, 0.5), (0.1, 0.9), (0.7, 0.7)]
        for point in points:
            engine.append(point)
            exact.append(point)
        assert [e.kappa for e in engine.skyline()] == [
            e.kappa for e in exact.skyline()
        ]

    def test_rn_shrinks_with_epsilon(self):
        from repro.streams import materialize

        points = materialize("anticorrelated", 3, 400, seed=7)
        sizes = []
        for epsilon in (0.001, 0.05, 0.25):
            engine = ApproxNofNSkyline(dim=3, capacity=200, epsilon=epsilon)
            for point in points:
                engine.append(point)
            sizes.append(engine.rn_size)
        assert sizes[0] >= sizes[1] >= sizes[2]
        assert sizes[2] < sizes[0]  # coarse grid genuinely compresses


coord = st.integers(0, 40).map(lambda v: v / 40)


class TestCoverageGuarantee:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=50),
        st.integers(1, 12),
        st.sampled_from([0.05, 0.1, 0.3]),
    )
    def test_every_window_element_is_epsilon_covered(
        self, history, capacity, epsilon
    ):
        engine = ApproxNofNSkyline(dim=2, capacity=capacity, epsilon=epsilon)
        for point in history:
            engine.append(point)
        m = len(history)
        for n in (1, capacity):
            reported = engine.query(n)
            window = history[max(0, m - n):]
            assert reported, "a non-empty window always yields a result"
            for p in window:
                assert any(
                    all(qv <= pv + epsilon + 1e-9 for qv, pv in zip(q.values, p))
                    for q in reported
                ), f"{p} not covered within epsilon={epsilon}"

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=40),
        st.integers(1, 10),
    )
    def test_reported_elements_come_from_the_window(self, history, capacity):
        engine = ApproxNofNSkyline(dim=2, capacity=capacity, epsilon=0.1)
        for point in history:
            engine.append(point)
        m = len(history)
        for n in (1, capacity):
            lo = m - min(n, m) + 1
            for element in engine.query(n):
                assert lo <= element.kappa <= m
                assert element.values == history[element.kappa - 1]
        engine.check_invariants()
