"""Sharded router validation: parity, merges, failure, persistence.

The load-bearing property is **byte-identical query parity**: a
:class:`~repro.parallel.ShardedNofNSkyline` (or
:class:`~repro.parallel.ShardedKSkyband`) must answer every query with
exactly the elements — same kappas, same values, same order — that the
single-engine counterpart returns, for every shard count, under any
interleaving of per-element and batched ingestion.  Theorem 1's
containment argument (see :mod:`repro.parallel.merge`) says the merge
can achieve this; these tests say the code does.

The process backend is exercised sparingly (worker startup is slow on
CI): one parity scenario, the failure-surfacing tests, and one
snapshot round-trip.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import KSkybandEngine, NofNSkyline
from repro.core.element import StreamElement
from repro.core.persistence import dumps, loads, restore, snapshot
from repro.exceptions import (
    DimensionMismatchError,
    InvalidWindowError,
    ReproError,
    ShardFailureError,
    StructureCorruptionError,
)
from repro.parallel import ShardedKSkyband, ShardedNofNSkyline

from tests.conftest import random_points

# Coarse coordinates provoke ties/duplicates (youngest-copy rule).
coord = st.integers(0, 6).map(lambda v: v / 6)


def streams(max_dim=3, max_len=50):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


def same_elements(got, expected):
    assert [(e.kappa, e.values) for e in got] == [
        (e.kappa, e.values) for e in expected
    ]


def feed_interleaved(router, reference, points, rng):
    """Feed ``points`` to both through a random mix of ``append`` and
    ``append_many``, querying a random ``n`` after every step."""
    fed = 0
    while fed < len(points):
        if rng.random() < 0.5:
            router.append(points[fed])
            reference.append(points[fed])
            fed += 1
        else:
            size = rng.randint(1, min(7, len(points) - fed))
            router.append_many(points[fed:fed + size])
            reference.append_many(points[fed:fed + size])
            fed += size
        n = rng.randint(1, reference.capacity)
        same_elements(router.query(n), reference.query(n))


class TestSkylineParity:
    @settings(max_examples=25, deadline=None)
    @given(streams(), st.integers(1, 12), st.sampled_from([1, 2, 4, 7]))
    def test_every_query_matches_single_engine(
        self, history, capacity, shards
    ):
        dim = len(history[0])
        reference = NofNSkyline(dim=dim, capacity=capacity)
        with ShardedNofNSkyline(
            dim=dim, capacity=capacity, shards=shards
        ) as router:
            rng = random.Random(capacity * 1000 + shards)
            feed_interleaved(router, reference, history, rng)
            for n in range(1, capacity + 1):
                same_elements(router.query(n), reference.query(n))
            same_elements(router.skyline(), reference.skyline())

    @settings(max_examples=15, deadline=None)
    @given(streams(max_dim=2, max_len=40), st.sampled_from([2, 4]))
    def test_query_all_matches_individual_queries(self, history, shards):
        capacity = 10
        with ShardedNofNSkyline(
            dim=len(history[0]), capacity=capacity, shards=shards
        ) as router:
            router.append_many(history)
            ns = [1, capacity // 2, capacity]
            for batch_answer, n in zip(router.query_all(ns), ns):
                same_elements(batch_answer, router.query(n))

    def test_kappa_sequence_is_global(self, rng):
        """Round-robin sharding must not disturb arrival labelling."""
        with ShardedNofNSkyline(dim=2, capacity=20, shards=3) as router:
            elements = router.append_many(random_points(rng, 2, 10))
            assert [e.kappa for e in elements] == list(range(1, 11))
            eleventh = router.append((0.5, 0.5))
            assert eleventh.kappa == 11
            assert router.seen_so_far == 11
            assert len(router) == sum(
                s["retained"] for s in router.shard_stats()
            )


class TestSkybandParity:
    @settings(max_examples=20, deadline=None)
    @given(
        streams(max_dim=3, max_len=45),
        st.integers(1, 10),
        st.sampled_from([1, 3, 4]),
        st.integers(1, 3),
    )
    def test_every_query_matches_single_engine(
        self, history, capacity, shards, k
    ):
        dim = len(history[0])
        reference = KSkybandEngine(dim=dim, capacity=capacity, k=k)
        with ShardedKSkyband(
            dim=dim, capacity=capacity, k=k, shards=shards
        ) as router:
            rng = random.Random(capacity * 100 + shards * 10 + k)
            feed_interleaved(router, reference, history, rng)
            for n in range(1, capacity + 1):
                same_elements(router.query(n), reference.query(n))
            same_elements(router.skyband(), reference.skyband())


#: Process-backend cases run with the zero-IPC replica read path both
#: enabled (``auto``) and disabled (``off``).  ``REPRO_SHARD_REPLICAS``
#: pins a single mode so CI can split the two into separate matrix
#: legs (``on`` maps to ``auto``: replicas enabled on this backend).
REPLICA_MODES = {"on": ("auto",), "off": ("off",)}.get(
    os.environ.get("REPRO_SHARD_REPLICAS", ""), ("auto", "off")
)


@pytest.mark.parametrize("replicas", REPLICA_MODES)
class TestProcessBackend:
    def test_parity_and_introspection(self, rng, replicas):
        points = random_points(rng, 2, 120, grid=8)
        reference = NofNSkyline(dim=2, capacity=30)
        reference.append_many(points)
        with ShardedNofNSkyline(
            dim=2, capacity=30, shards=3, backend="process", timeout=60.0,
            replicas=replicas,
        ) as router:
            router.append_many(points[:70])
            for p in points[70:]:
                router.append(p)
            for n in (1, 15, 30):
                same_elements(router.query(n), reference.query(n))
            stats = router.shard_stats()
            assert [s["shard"] for s in stats] == [0, 1, 2]
            assert sum(s["retained"] for s in stats) == len(router)
            assert router.structure_version > 0
            cache = router.cache_stats()
            assert cache is not None and cache["misses"] > 0
            replica = router.replica_stats()
            if replicas == "off":
                assert replica is None
            else:
                # The first query fell back (replicas trailed the
                # fire-and-forget ingest), which republished; the later
                # queries must have served with zero IPC.
                assert replica["serves"] >= 1
                assert len(replica["shards"]) == 3
            router.check_invariants()  # includes the shard-replica check

    def test_worker_exception_surfaces_as_shard_failure(self, replicas):
        router = ShardedNofNSkyline(
            dim=2, capacity=10, shards=2, backend="process", timeout=30.0,
            replicas=replicas,
        )
        try:
            router.append((0.1, 0.2))
            # A wrong-dimension element injected past the router's own
            # validation makes the worker's ingest raise and exit.
            router._executor.ingest(0, StreamElement((1.0, 2.0, 3.0), 99))
            with pytest.raises(ShardFailureError) as excinfo:
                # With replicas on, a caught-up replica can legitimately
                # keep answering reads; drain() is an IPC round trip on
                # both configurations, so the shipped error always
                # surfaces here.
                router.drain()
            assert excinfo.value.shard == 0
        finally:
            router.close()

    def test_dead_worker_surfaces_without_hanging(self, replicas):
        router = ShardedNofNSkyline(
            dim=2, capacity=10, shards=2, backend="process", timeout=30.0,
            replicas=replicas,
        )
        try:
            router.append((0.1, 0.2))
            router.query(5)  # workers proven alive (and replicas fresh)
            router._executor._processes[1].terminate()
            router._executor._processes[1].join(timeout=10.0)
            if replicas == "auto":
                # Read availability: the dead shard's replica is still
                # fully caught up, so reads keep answering with zero IPC.
                assert [e.kappa for e in router.query(5)] == [1]
                # Route a new element to the dead shard: its replica now
                # trails and the query must fall back — surfacing the
                # death instead of silently serving stale state.
                router.append((0.2, 0.1))  # kappa 2 -> shard 1
            with pytest.raises(ShardFailureError, match="died"):
                router.query(5)
        finally:
            router.close()

    def test_close_is_idempotent_and_reentrant(self, replicas):
        router = ShardedNofNSkyline(
            dim=2, capacity=10, shards=2, backend="process", timeout=30.0,
            replicas=replicas,
        )
        router.append((0.3, 0.7))
        router.query(5)
        router.close()
        router.close()


class TestValidationAndGuards:
    def test_constructor_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ShardedNofNSkyline(dim=2, capacity=10, shards=0)
        with pytest.raises(ValueError):
            ShardedNofNSkyline(dim=2, capacity=10, backend="threads")
        with pytest.raises(ValueError):
            ShardedKSkyband(dim=2, capacity=10, k=0)
        with pytest.raises(ValueError):
            ShardedNofNSkyline(dim=2, capacity=10, replicas="maybe")
        with pytest.raises(ValueError):
            # Replicas require a process boundary to replicate across.
            ShardedNofNSkyline(
                dim=2, capacity=10, backend="serial", replicas="on"
            )
        with pytest.raises(ValueError):
            ShardedNofNSkyline(dim=2, capacity=10, replica_lag=-1)

    def test_append_many_is_all_or_nothing(self):
        with ShardedNofNSkyline(dim=2, capacity=10, shards=3) as router:
            with pytest.raises(DimensionMismatchError):
                router.append_many([(0.1, 0.2), (0.3, 0.4, 0.5)])
            assert router.seen_so_far == 0
            assert len(router) == 0

    def test_query_validates_n(self):
        with ShardedNofNSkyline(dim=2, capacity=10, shards=2) as router:
            router.append((0.5, 0.5))
            with pytest.raises(InvalidWindowError):
                router.query(0)
            with pytest.raises(InvalidWindowError):
                router.query(11)

    def test_shard_engines_reject_direct_append(self):
        """Shard engines only accept pre-labelled elements from their
        router; the inherited public append surface is sealed off."""
        with ShardedNofNSkyline(dim=2, capacity=10, shards=2) as router:
            engine = router._executor.engines[0]
            with pytest.raises(ReproError):
                engine.append((0.1, 0.2))
            with pytest.raises(ReproError):
                engine.append_many([(0.1, 0.2)])


class TestSanitizer:
    def test_full_mode_runs_clean(self, rng):
        with ShardedNofNSkyline(
            dim=2, capacity=12, shards=3, sanitize="full"
        ) as router:
            for point in random_points(rng, 2, 40, grid=6):
                router.append(point)
            router.append_many(random_points(rng, 2, 20, grid=6))
        with ShardedKSkyband(
            dim=2, capacity=12, k=2, shards=2, sanitize="full"
        ) as band:
            band.append_many(random_points(rng, 2, 40, grid=6))

    def test_shard_merge_check_catches_dropped_element(self, rng):
        with ShardedNofNSkyline(dim=2, capacity=10, shards=2) as router:
            router.append_many(random_points(rng, 2, 30, grid=5))
            healthy = router._merged

            def lossy(stabs):
                return [answer[:-1] for answer in healthy(stabs)]

            router._merged = lossy  # simulate a broken merge
            with pytest.raises(StructureCorruptionError) as excinfo:
                router.check_invariants()
            assert excinfo.value.report.invariant == "shard-merge"


class TestPersistence:
    def test_round_trip_same_shard_count(self, rng):
        with ShardedNofNSkyline(dim=2, capacity=15, shards=3) as router:
            router.append_many(random_points(rng, 2, 60, grid=7))
            snap = snapshot(router)
            with restore(snap) as clone:
                assert clone.shards == 3
                assert clone.seen_so_far == router.seen_so_far
                for n in (1, 8, 15):
                    same_elements(clone.query(n), router.query(n))
                assert snapshot(clone)["records"] == snap["records"]

    @pytest.mark.parametrize("new_shards", [1, 2, 7])
    def test_restore_re_shards(self, rng, new_shards):
        with ShardedNofNSkyline(dim=2, capacity=15, shards=4) as router:
            router.append_many(random_points(rng, 2, 50, grid=7))
            snap = snapshot(router)
            with restore(snap, shards=new_shards) as clone:
                assert clone.shards == new_shards
                for n in (1, 8, 15):
                    same_elements(clone.query(n), router.query(n))

    def test_restore_onto_process_backend(self, rng):
        with ShardedNofNSkyline(dim=2, capacity=12, shards=2) as router:
            router.append_many(random_points(rng, 2, 40, grid=7))
            blob = dumps(router)
            with loads(blob, backend="process", shards=3) as clone:
                assert clone.backend == "process"
                for n in (1, 6, 12):
                    same_elements(clone.query(n), router.query(n))

    def test_skyband_round_trip(self, rng):
        with ShardedKSkyband(dim=2, capacity=12, k=3, shards=3) as band:
            band.append_many(random_points(rng, 2, 45, grid=7))
            snap = snapshot(band)
            assert snap["kind"] == "sharded-skyband"
            with restore(snap, shards=2) as clone:
                assert clone.k == 3
                for n in (1, 6, 12):
                    same_elements(clone.query(n), band.query(n))

    def test_replica_knobs_round_trip(self, rng):
        with ShardedNofNSkyline(
            dim=2, capacity=10, shards=2, backend="process",
            replicas="on", replica_lag=None,
        ) as router:
            router.append_many(random_points(rng, 2, 20, grid=5))
            snap = snapshot(router)
            assert snap["replicas"] == {"mode": "on", "lag": None}
            with restore(snap) as clone:
                assert clone.replica_mode == "on"
                assert clone.replica_lag is None
                for n in (1, 10):
                    same_elements(clone.query(n), router.query(n))
            # Re-targeting the snapshot at the serial backend downgrades
            # "on" to "auto" instead of refusing to restore.
            with restore(snap, backend="serial") as serial_clone:
                assert serial_clone.replica_mode == "auto"
                assert serial_clone.replica_stats() is None

    def test_growth_continues_after_restore(self, rng):
        points = random_points(rng, 2, 60, grid=7)
        reference = NofNSkyline(dim=2, capacity=10)
        reference.append_many(points)
        with ShardedNofNSkyline(dim=2, capacity=10, shards=2) as router:
            router.append_many(points[:40])
            with restore(snapshot(router), shards=3) as clone:
                clone.append_many(points[40:])
                same_elements(clone.skyline(), reference.skyline())


class TestIntrospectionUniformity:
    """Every engine-like object answers the same introspection probes
    (satellite: previously ApproxNofNSkyline and ContinuousQueryManager
    lacked them; TimeWindowSkyline already inherited the full set)."""

    PROBES = ("structure_version", "cache_stats", "kernel_policy",
              "stab_cache")

    def build_all(self, rng):
        from repro import (
            ApproxNofNSkyline,
            ContinuousQueryManager,
            TimeWindowSkyline,
        )

        points = random_points(rng, 2, 30, grid=6)
        engines = [
            NofNSkyline(dim=2, capacity=10),
            KSkybandEngine(dim=2, capacity=10, k=2),
            ApproxNofNSkyline(dim=2, capacity=10, epsilon=0.25),
            ContinuousQueryManager(NofNSkyline(dim=2, capacity=10)),
        ]
        for engine in engines:
            for point in points:
                engine.append(point)
        window = TimeWindowSkyline(dim=2, horizon=5.0)
        for i, point in enumerate(points):
            window.append(point, float(i + 1))
        engines.append(window)
        return engines

    def test_uniform_surface(self, rng):
        for engine in self.build_all(rng):
            for probe in self.PROBES:
                assert hasattr(engine, probe), (type(engine), probe)
            assert engine.structure_version > 0
            stats = engine.cache_stats()
            assert stats is None or "misses" in stats

    def test_sharded_router_aggregates(self, rng):
        with ShardedNofNSkyline(dim=2, capacity=10, shards=3) as router:
            router.append_many(random_points(rng, 2, 30, grid=6))
            router.query(5)
            router.query(5)
            assert router.structure_version > 0
            cache = router.cache_stats()
            assert cache is not None
            assert cache["hits"] > 0  # second query hit every shard memo
            per_shard = router.shard_stats()
            assert len(per_shard) == 3
            for entry in per_shard:
                assert {"shard", "retained", "seen", "structure_version",
                        "cache", "stats"} <= set(entry)
        with ShardedNofNSkyline(
            dim=2, capacity=10, shards=2, query_cache=False
        ) as uncached:
            uncached.append((0.5, 0.5))
            assert uncached.cache_stats() is None
