"""Tests for the windowed k-skyband engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import dominates
from repro.core.nofn import NofNSkyline
from repro.core.skyband import KSkybandEngine
from repro.exceptions import InvalidWindowError


def oracle(history, n, k):
    """Reference: fewer than k in-window elements strictly dominate the
    element or duplicate it more recently (youngest-copy convention)."""
    m = len(history)
    lo = max(0, m - n)
    window = history[lo:]
    out = []
    for i, p in enumerate(window):
        count = 0
        for j, q in enumerate(window):
            if j == i:
                continue
            if dominates(q, p) or (tuple(q) == tuple(p) and j > i):
                count += 1
        if count < k:
            out.append(lo + i + 1)
    return out


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(InvalidWindowError):
            KSkybandEngine(dim=2, capacity=0, k=2)
        with pytest.raises(ValueError, match="dimension"):
            KSkybandEngine(dim=0, capacity=5, k=2)
        with pytest.raises(ValueError, match="k must be"):
            KSkybandEngine(dim=2, capacity=5, k=0)

    def test_fresh_engine(self):
        engine = KSkybandEngine(dim=2, capacity=5, k=2)
        assert engine.seen_so_far == 0
        assert engine.retained_size == 0
        assert engine.query(3) == []


class TestBandSemantics:
    def test_band_depth_controls_reporting(self):
        # A chain: (0.1,..) dominates (0.2,..) dominates (0.3,..)...
        engine = KSkybandEngine(dim=2, capacity=10, k=2)
        for v in (0.1, 0.2, 0.3, 0.4):
            engine.append((v, v))
        # 2-skyband: the top point and its single-dominated successor.
        assert [e.kappa for e in engine.skyband()] == [1, 2]

    def test_k1_band_is_the_skyline(self):
        engine = KSkybandEngine(dim=2, capacity=6, k=1)
        for point in [(0.5, 0.5), (0.2, 0.8), (0.8, 0.2), (0.6, 0.6)]:
            engine.append(point)
        assert [e.kappa for e in engine.skyband()] == [1, 2, 3]

    def test_pruning_at_k_younger_dominators(self):
        engine = KSkybandEngine(dim=2, capacity=10, k=2)
        engine.append((0.9, 0.9))  # will gather younger dominators
        engine.append((0.5, 0.5))
        assert engine.retained_size == 2  # one younger dominator: kept
        engine.append((0.4, 0.4))
        assert engine.retained_size == 2  # kappa 1 hit k=2: pruned
        assert 1 not in [e.kappa for e in engine.skyband()]

    def test_query_validation(self):
        engine = KSkybandEngine(dim=1, capacity=4, k=2)
        with pytest.raises(InvalidWindowError):
            engine.query(0)
        with pytest.raises(InvalidWindowError):
            engine.query(5)

    def test_window_exit_readmits_deeper_points(self):
        engine = KSkybandEngine(dim=2, capacity=3, k=1)
        engine.append((0.1, 0.1))  # dominates everything after
        engine.append((0.5, 0.5))
        engine.append((0.6, 0.6))
        assert [e.kappa for e in engine.query(3)] == [1]
        engine.append((0.7, 0.7))  # kappa 1 leaves the window
        assert [e.kappa for e in engine.query(3)] == [2]

    def test_duplicates_follow_youngest_copy_convention(self):
        engine = KSkybandEngine(dim=2, capacity=10, k=1)
        engine.append((0.5, 0.5))
        engine.append((0.5, 0.5))
        assert [e.kappa for e in engine.skyband()] == [2]

    def test_duplicates_at_k2_keep_two_copies(self):
        engine = KSkybandEngine(dim=2, capacity=10, k=2)
        for _ in range(3):
            engine.append((0.5, 0.5))
        # The two youngest copies are each "dominated" by fewer than 2
        # younger duplicates.
        assert [e.kappa for e in engine.skyband()] == [2, 3]


coord = st.integers(0, 6).map(lambda v: v / 6)


def streams(max_dim=3, max_len=50):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


class TestKSkybandProperties:
    @settings(max_examples=40, deadline=None)
    @given(streams(), st.integers(1, 12), st.integers(1, 4))
    def test_matches_oracle(self, history, capacity, k):
        engine = KSkybandEngine(dim=len(history[0]), capacity=capacity, k=k)
        for point in history:
            engine.append(point)
        for n in (1, max(1, capacity // 2), capacity):
            assert [e.kappa for e in engine.query(n)] == (
                oracle(history, n, k)
            ), f"n={n}, k={k}"

    @settings(max_examples=30, deadline=None)
    @given(streams(max_len=40), st.integers(1, 10))
    def test_k1_equals_nofn_engine(self, history, capacity):
        band = KSkybandEngine(dim=len(history[0]), capacity=capacity, k=1)
        sky = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            band.append(point)
            sky.append(point)
        for n in range(1, capacity + 1):
            assert [e.kappa for e in band.query(n)] == [
                e.kappa for e in sky.query(n)
            ]

    @settings(max_examples=30, deadline=None)
    @given(streams(max_len=40), st.integers(1, 10), st.integers(1, 3))
    def test_bands_nest_in_k(self, history, capacity, k):
        """The k-band is contained in the (k+1)-band, window by window."""
        small = KSkybandEngine(dim=len(history[0]), capacity=capacity, k=k)
        large = KSkybandEngine(dim=len(history[0]), capacity=capacity, k=k + 1)
        for point in history:
            small.append(point)
            large.append(point)
        for n in (1, capacity):
            assert set(e.kappa for e in small.query(n)) <= set(
                e.kappa for e in large.query(n)
            )

    @settings(max_examples=25, deadline=None)
    @given(streams(max_len=40), st.integers(1, 8), st.integers(1, 3))
    def test_invariants_hold_at_every_step(self, history, capacity, k):
        engine = KSkybandEngine(dim=len(history[0]), capacity=capacity, k=k)
        for point in history:
            engine.append(point)
            engine.check_invariants()
