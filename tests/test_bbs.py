"""Tests for the branch-and-bound skyline (BBS) baseline."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import bbs_progressive, bbs_skyline, naive_skyline


class TestBBSBasics:
    def test_hand_checked_instance(self):
        points = [(1.0, 5.0), (2.0, 3.0), (4.0, 1.0), (3.0, 4.0), (5.0, 5.0)]
        assert bbs_skyline(points) == [0, 1, 2]

    def test_empty_and_single(self):
        assert bbs_skyline([]) == []
        assert bbs_skyline([(1.0, 1.0)]) == [0]

    def test_duplicates_all_reported(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert bbs_skyline(points) == [0, 1]

    def test_high_dimensional(self):
        rng = random.Random(1)
        points = [tuple(rng.random() for _ in range(5)) for _ in range(120)]
        assert bbs_skyline(points) == naive_skyline(points)

    def test_small_fanout_tree(self):
        rng = random.Random(2)
        points = [(rng.random(), rng.random()) for _ in range(100)]
        assert bbs_skyline(points, max_entries=4, min_entries=2) == (
            naive_skyline(points)
        )


class TestProgressiveBehaviour:
    def test_emits_in_mindist_order(self):
        rng = random.Random(3)
        points = [tuple(rng.random() for _ in range(3)) for _ in range(80)]
        emitted = list(bbs_progressive(points))
        sums = [sum(p) for p in emitted]
        assert sums == sorted(sums)

    def test_emitted_set_is_the_skyline(self):
        rng = random.Random(4)
        points = [(rng.random(), rng.random()) for _ in range(60)]
        emitted = set(bbs_progressive(points))
        expected = {points[i] for i in naive_skyline(points)}
        assert emitted == expected

    def test_first_result_available_before_exhaustion(self):
        """Progressiveness: the first skyline point arrives without
        consuming the generator fully."""
        rng = random.Random(5)
        points = [(rng.random(), rng.random()) for _ in range(500)]
        gen = bbs_progressive(points)
        first = next(gen)
        assert sum(first) == min(
            sum(points[i]) for i in naive_skyline(points)
        )

    def test_empty_input(self):
        assert list(bbs_progressive([])) == []


coords = st.floats(min_value=0, max_value=1, allow_nan=False, width=32)


class TestBBSProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 4).flatmap(
            lambda d: st.lists(st.tuples(*[coords] * d), max_size=60)
        )
    )
    def test_matches_naive(self, points):
        assert bbs_skyline(points) == naive_skyline(points)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)).map(
                lambda p: (p[0] / 5, p[1] / 5)
            ),
            max_size=40,
        )
    )
    def test_matches_naive_with_ties(self, points):
        assert bbs_skyline(points) == naive_skyline(points)
