"""Public API surface and exception-hierarchy tests."""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import exceptions


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_engines_importable_from_top_level(self):
        assert repro.NofNSkyline is not None
        assert repro.N1N2Skyline is not None
        assert repro.TimeWindowSkyline is not None
        assert repro.ContinuousQueryManager is not None

    def test_subpackage_all_names_resolve(self):
        import repro.baselines as baselines
        import repro.bench as bench
        import repro.core as core
        import repro.streams as streams
        import repro.structures as structures

        for module in (baselines, bench, core, streams, structures):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    f"{module.__name__}.{name}"
                )

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_public_methods_have_docstrings(self):
        for cls in (
            repro.NofNSkyline,
            repro.N1N2Skyline,
            repro.TimeWindowSkyline,
            repro.ContinuousQueryManager,
        ):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member):
                    assert member.__doc__, f"{cls.__name__}.{name}"


class TestExceptionHierarchy:
    ALL_ERRORS = [
        exceptions.DimensionMismatchError,
        exceptions.DuplicateKeyError,
        exceptions.EmptyStructureError,
        exceptions.InvalidIntervalError,
        exceptions.InvalidWindowError,
        exceptions.KeyNotFoundError,
        exceptions.QueryNotRegisteredError,
        exceptions.StreamExhaustedError,
        exceptions.StructureCorruptionError,
    ]

    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, exceptions.ReproError)
        assert issubclass(error_cls, Exception)

    def test_one_except_clause_catches_library_errors(self):
        engine = repro.NofNSkyline(dim=2, capacity=3)
        with pytest.raises(exceptions.ReproError):
            engine.query(99)

    def test_dimension_mismatch_carries_context(self):
        err = exceptions.DimensionMismatchError(3, 2)
        assert err.expected == 3
        assert err.actual == 2
        assert "3" in str(err) and "2" in str(err)

    def test_engine_errors_are_catchable_specifically(self):
        engine = repro.NofNSkyline(dim=2, capacity=3)
        with pytest.raises(exceptions.InvalidWindowError):
            engine.query(0)
