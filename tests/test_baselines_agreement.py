"""Property tests: all four baseline skyline algorithms agree.

The quadratic naive algorithm is the semantic anchor; KLP (divide and
conquer), BNL (with assorted window sizes) and SFS must match it on
every generated input — including inputs engineered to contain ties,
duplicates and degenerate dimensions, which are exactly where
divide-and-conquer split logic and BNL overflow handling go wrong.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import bnl_skyline, klp_skyline, naive_skyline, sfs_skyline

smooth_coord = st.floats(min_value=0, max_value=1, allow_nan=False, width=32)
tied_coord = st.sampled_from([0.0, 0.25, 0.25, 0.5, 0.75, 1.0])


def point_lists(coord, max_dim=5, max_size=60):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), max_size=max_size
        )
    )


class TestAgreement:
    @settings(max_examples=60, deadline=None)
    @given(point_lists(smooth_coord))
    def test_agree_on_smooth_inputs(self, points):
        expected = naive_skyline(points)
        assert klp_skyline(points) == expected
        assert sfs_skyline(points) == expected
        assert bnl_skyline(points) == expected

    @settings(max_examples=60, deadline=None)
    @given(point_lists(tied_coord, max_dim=4, max_size=40))
    def test_agree_on_heavily_tied_inputs(self, points):
        expected = naive_skyline(points)
        assert klp_skyline(points) == expected
        assert sfs_skyline(points) == expected
        assert bnl_skyline(points) == expected

    @settings(max_examples=40, deadline=None)
    @given(
        point_lists(smooth_coord, max_dim=3, max_size=50),
        st.integers(1, 8),
    )
    def test_bnl_window_size_is_semantics_free(self, points, window):
        assert bnl_skyline(points, window_size=window) == naive_skyline(points)

    @settings(max_examples=40, deadline=None)
    @given(point_lists(smooth_coord, max_dim=3, max_size=50))
    def test_skyline_is_idempotent(self, points):
        first = naive_skyline(points)
        survivors = [points[i] for i in first]
        again = klp_skyline(survivors)
        assert again == list(range(len(survivors)))

    @settings(max_examples=40, deadline=None)
    @given(point_lists(smooth_coord, max_dim=4, max_size=40))
    def test_skyline_members_are_undominated(self, points):
        from repro.core.dominance import dominates

        for idx in klp_skyline(points):
            assert not any(
                dominates(other, points[idx])
                for j, other in enumerate(points)
                if j != idx
            )

    @settings(max_examples=40, deadline=None)
    @given(point_lists(smooth_coord, max_dim=4, max_size=40))
    def test_non_members_are_dominated(self, points):
        from repro.core.dominance import dominates

        members = set(klp_skyline(points))
        for idx, point in enumerate(points):
            if idx not in members:
                assert any(
                    dominates(other, point)
                    for j, other in enumerate(points)
                    if j != idx
                )
