"""Tests for the dataflow rule pack (REPRO101-105), the waiver
accounting, the baseline machinery, and the CLI.

Each rule has a golden fixture triple under ``tests/fixtures/lint/``:
a seeded violation, the idiomatic fix, and the violation suppressed by
an inline waiver.  The violation tests pin exact (code, line) pairs so
a rule that silently stops firing — or starts firing somewhere new —
fails loudly.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from tools.lint import UnusedWaiver, analyze_sources
from tools.lint.baseline import (
    BaselineKey,
    load_baseline,
    match_baseline,
    serialize_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def run_fixture(name):
    path = FIXTURES / name
    rel = str(path.relative_to(REPO_ROOT))
    return analyze_sources({rel: path.read_text(encoding="utf-8")})


def hits(name):
    return [(f.code, f.line) for f in run_fixture(name).findings]


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "tools.lint", *args],
        cwd=str(cwd or REPO_ROOT),
        capture_output=True,
        text=True,
    )


class TestRepro101VersionBumps:
    def test_violation(self):
        assert hits("repro101_violation.py") == [("REPRO101", 11)]

    def test_clean(self):
        assert hits("repro101_clean.py") == []

    def test_waived(self):
        result = run_fixture("repro101_waived.py")
        assert result.findings == []
        assert result.unused_waivers == []


class TestRepro101ChangesCounter:
    """The query-group convention: ``changes`` is a version counter
    too, and ``del``-statement mutations are visible to the rule."""

    def test_violation(self):
        assert hits("repro101_changes_violation.py") == [
            ("REPRO101", 13),
            ("REPRO101", 22),
        ]

    def test_clean(self):
        assert hits("repro101_changes_clean.py") == []

    def test_waived(self):
        result = run_fixture("repro101_changes_waived.py")
        assert result.findings == []
        assert result.unused_waivers == []

    def test_plain_changes_attribute_is_not_a_counter(self):
        # `changes` only counts when __init__ binds it to an integer
        # literal; a data attribute of the same name stays untracked.
        src = (
            "class Carrier:\n"
            "    def __init__(self, changes):\n"
            "        self._items = []\n"
            "        self.changes = list(changes)\n"
            "\n"
            "    def push(self, item):\n"
            "        self._items.append(item)\n"
        )
        result = analyze_sources({"carrier.py": src})
        assert result.findings == []


class TestRepro102Seqlock:
    def test_violation(self):
        assert hits("repro102_violation.py") == [
            ("REPRO102", 23),
            ("REPRO102", 37),
        ]

    def test_clean(self):
        assert hits("repro102_clean.py") == []

    def test_waived(self):
        result = run_fixture("repro102_waived.py")
        assert result.findings == []
        assert result.unused_waivers == []


class TestRepro103ShmLifecycle:
    def test_violation(self):
        assert hits("repro103_violation.py") == [("REPRO103", 8)]

    def test_clean(self):
        assert hits("repro103_clean.py") == []

    def test_waived(self):
        result = run_fixture("repro103_waived.py")
        assert result.findings == []
        assert result.unused_waivers == []


class TestRepro104KernelInvalidation:
    def test_violation(self):
        assert hits("repro104_violation.py") == [
            ("REPRO104", 17),
            ("REPRO104", 34),
        ]

    def test_clean(self):
        assert hits("repro104_clean.py") == []

    def test_waived(self):
        result = run_fixture("repro104_waived.py")
        assert result.findings == []
        assert result.unused_waivers == []


class TestRepro104MirrorKernels:
    """The ``X`` / ``X_kernel`` convention: a tracked container with a
    lazily rebuilt flat mirror must drop the mirror on every mutation
    path (the query index's sorted axis is the production instance)."""

    def test_violation(self):
        assert hits("repro104_mirror_violation.py") == [
            ("REPRO104", 14),
        ]

    def test_clean(self):
        assert hits("repro104_mirror_clean.py") == []

    def test_waived(self):
        result = run_fixture("repro104_mirror_waived.py")
        assert result.findings == []
        assert result.unused_waivers == []

    def test_kernel_without_matching_container_is_ignored(self):
        # A cache attr whose stem names no tracked container (plain
        # `kernel`, or an unrelated suffix) never arms the mirror rule.
        src = (
            "class Free:\n"
            "    def __init__(self):\n"
            "        self._rows = []\n"
            "        self._cols_kernel = None\n"
            "\n"
            "    def push(self, row):\n"
            "        self._rows.append(row)\n"
        )
        result = analyze_sources({"free.py": src})
        assert result.findings == []

    # A pooled class's bulk maintenance methods satisfy the rule by
    # *name* (POOLED_MAINTENANCE_METHODS): calling them after a raw
    # pooled write is maintenance even when their own bodies delegate
    # and never touch a summary attribute directly.
    POOLED_BULK_SRC = (
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._points = _np.zeros((8, 2))\n"
        "        self._kappas = _np.zeros(8)\n"
        "        self._dirty = set()\n"
        "\n"
        "    def insert_many(self, points, kappas):\n"
        "        self._bulk_place(points, kappas)\n"
        "\n"
        "    def delete_many(self, kappas):\n"
        "        self._bulk_drop(kappas)\n"
        "\n"
        "    def rewrite(self, rows, pts):\n"
        "        self._points[rows] = pts\n"
        "        self.insert_many(pts, rows)\n"
        "\n"
        "    def erase(self, rows):\n"
        "        self._kappas[rows] = -1\n"
        "        self.delete_many(rows)\n"
    )

    def test_bulk_methods_count_as_maintenance_by_name(self):
        result = analyze_sources({"src/repro/pool.py": self.POOLED_BULK_SRC})
        assert [f.code for f in result.findings] == []

    def test_model_folds_contract_methods_into_pooled_classes(self):
        import ast

        from tools.lint.model import POOLED_MAINTENANCE_METHODS, build_model

        model = build_model(
            {"src/repro/pool.py": ast.parse(self.POOLED_BULK_SRC)}
        )
        cls = model.modules["src/repro/pool.py"].classes["Pool"]
        assert cls.is_pooled
        assert POOLED_MAINTENANCE_METHODS <= cls.maintenance_methods
        # A non-pooled class gets no contract fold: the names only mean
        # "re-summarise" on an SoA pool.
        plain = build_model({
            "src/repro/other.py": ast.parse(
                "class Router:\n"
                "    def insert_many(self, xs):\n"
                "        self.xs = xs\n"
            )
        })
        router = plain.modules["src/repro/other.py"].classes["Router"]
        assert not router.maintenance_methods


class TestRepro105SnapshotParity:
    def test_violation(self):
        assert hits("repro105_violation.py") == [
            ("REPRO105", 10),
            ("REPRO105", 16),
        ]

    def test_clean(self):
        assert hits("repro105_clean.py") == []

    def test_waived(self):
        result = run_fixture("repro105_waived.py")
        assert result.findings == []
        assert result.unused_waivers == []


class TestUnusedWaivers:
    def test_waiver_suppressing_nothing_is_reported(self):
        source = "def f(x):\n    return x  # lint: skip=REPRO001\n"
        result = analyze_sources({"src/repro/demo.py": source})
        assert result.findings == []
        assert result.unused_waivers == [
            UnusedWaiver("src/repro/demo.py", 2, "REPRO001")
        ]

    def test_used_waiver_is_not_reported(self):
        source = "def f(x):\n    assert x  # lint: skip=REPRO001\n"
        result = analyze_sources({"src/repro/demo.py": source})
        assert result.findings == []
        assert result.unused_waivers == []

    def test_render_mentions_the_code(self):
        waiver = UnusedWaiver("a.py", 7, "REPRO104")
        assert "a.py:7" in waiver.render()
        assert "REPRO104" in waiver.render()


class TestBaseline:
    def _findings(self):
        name = "repro104_violation.py"
        return run_fixture(name).findings

    def test_round_trip_matches_everything(self, tmp_path):
        findings = self._findings()
        assert findings, "fixture must produce findings"
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(serialize_baseline(findings))
        baseline = load_baseline(str(baseline_file))
        new, stale = match_baseline(findings, baseline)
        assert new == []
        assert stale == []

    def test_fixed_finding_turns_entry_stale(self, tmp_path):
        findings = self._findings()
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(serialize_baseline(findings))
        baseline = load_baseline(str(baseline_file))
        new, stale = match_baseline(findings[1:], baseline)
        assert new == []
        assert len(stale) == 1
        assert stale[0].code == findings[0].code

    def test_unknown_finding_is_new(self):
        findings = self._findings()
        new, stale = match_baseline(findings, load_counter_empty())
        assert new == findings
        assert stale == []

    def test_scope_anchoring_survives_line_churn(self):
        # Keys carry no line numbers: path|code|scope only.
        findings = self._findings()
        key = serialize_baseline(findings).splitlines()[-1]
        parts = key.split("|")
        assert len(parts) == 3
        assert parts[1].startswith("REPRO")
        assert all(not part.isdigit() for part in parts)

    def test_malformed_line_raises(self, tmp_path):
        bad = tmp_path / "baseline.txt"
        bad.write_text("only-two|fields\n")
        try:
            load_baseline(str(bad))
        except ValueError as exc:
            assert "malformed" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_comments_and_blanks_ignored(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(
            "# a comment\n"
            "\n"
            "a.py|REPRO001|Demo.method  # trailing comment\n"
        )
        baseline = load_baseline(str(baseline_file))
        assert baseline == {BaselineKey("a.py", "REPRO001", "Demo.method"): 1}


def load_counter_empty():
    from collections import Counter

    return Counter()


class TestCli:
    def test_violation_fixture_exits_one(self):
        proc = run_cli("tests/fixtures/lint/repro101_violation.py")
        assert proc.returncode == 1
        assert "REPRO101" in proc.stdout

    def test_clean_fixture_exits_zero(self):
        proc = run_cli("tests/fixtures/lint/repro101_clean.py")
        assert proc.returncode == 0
        assert proc.stdout == ""

    def test_parse_error_exits_two(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        proc = run_cli(str(bad))
        assert proc.returncode == 2
        assert "parse error" in proc.stderr

    def test_github_format(self):
        proc = run_cli(
            "tests/fixtures/lint/repro101_violation.py",
            "--format", "github",
        )
        assert proc.returncode == 1
        line = proc.stdout.splitlines()[0]
        assert line.startswith("::error file=")
        assert "line=11," in line
        assert "title=REPRO101::" in line

    def test_write_then_check_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        target = "tests/fixtures/lint/repro104_violation.py"
        proc = run_cli(target, "--baseline", str(baseline),
                       "--write-baseline")
        assert proc.returncode == 0
        assert baseline.exists()
        proc = run_cli(target, "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_stale_baseline_entry_fails(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        target = "tests/fixtures/lint/repro104_violation.py"
        run_cli(target, "--baseline", str(baseline), "--write-baseline")
        proc = run_cli("tests/fixtures/lint/repro104_clean.py",
                       "--baseline", str(baseline))
        assert proc.returncode == 1
        assert "stale baseline entry" in proc.stderr

    def test_strict_waivers(self, tmp_path):
        src = tmp_path / "demo.py"
        src.write_text("def f(x):\n    return x  # lint: skip=REPRO001\n")
        relaxed = run_cli(str(src))
        assert relaxed.returncode == 0
        assert "unused waiver" in relaxed.stderr
        strict = run_cli(str(src), "--strict-waivers")
        assert strict.returncode == 1

    def test_diff_out_artifact(self, tmp_path):
        diff = tmp_path / "diff.txt"
        proc = run_cli(
            "tests/fixtures/lint/repro101_violation.py",
            "--diff-out", str(diff),
        )
        assert proc.returncode == 1
        content = diff.read_text()
        assert "new findings: 1" in content
        assert "stale baseline entries: 0" in content
        assert "unused waivers: 0" in content


class TestProductionTreeWithBaseline:
    def test_full_ci_invocation_is_clean(self):
        proc = run_cli(
            "src/repro", "tools", "scripts", "benchmarks",
            "--baseline", "tools/lint/baseline.txt",
            "--strict-waivers",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
