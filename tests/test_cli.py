"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import csv
import io

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGenerate:
    def test_emits_requested_shape(self, capsys):
        code, out, _ = run_cli(
            capsys, "generate", "--dim", "3", "--count", "5", "--seed", "1"
        )
        assert code == 0
        rows = list(csv.reader(io.StringIO(out)))
        assert len(rows) == 5
        assert all(len(r) == 3 for r in rows)
        assert all(0.0 <= float(v) <= 1.0 for r in rows for v in r)

    def test_deterministic_by_seed(self, capsys):
        _, first, _ = run_cli(capsys, "generate", "--count", "4", "--seed", "9")
        _, second, _ = run_cli(capsys, "generate", "--count", "4", "--seed", "9")
        assert first == second

    def test_distribution_alias(self, capsys):
        code, out, _ = run_cli(
            capsys, "generate", "-D", "anti", "--count", "3"
        )
        assert code == 0
        assert len(out.strip().splitlines()) == 3

    def test_unknown_distribution_errors(self, capsys):
        code, _, err = run_cli(capsys, "generate", "-D", "zipf")
        assert code == 2
        assert "unknown distribution" in err


class TestSkyline:
    @pytest.fixture
    def csv_file(self, tmp_path):
        path = tmp_path / "points.csv"
        path.write_text("1,5\n2,3\n4,1\n3,4\n5,5\n")
        return str(path)

    @pytest.mark.parametrize("algorithm", ["klp", "bnl", "sfs", "bbs", "naive"])
    def test_algorithms_agree(self, capsys, csv_file, algorithm):
        code, out, _ = run_cli(
            capsys, "skyline", csv_file, "--algorithm", algorithm
        )
        assert code == 0
        assert out.splitlines() == ["1,5", "2,3", "4,1"]

    def test_indices_mode(self, capsys, csv_file):
        code, out, _ = run_cli(capsys, "skyline", csv_file, "--indices")
        assert code == 0
        assert out.splitlines() == ["0", "1", "2"]

    def test_ragged_rows_rejected(self, capsys, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2\n3\n")
        code, _, err = run_cli(capsys, "skyline", str(path))
        assert code == 2
        assert "row 2" in err

    def test_non_numeric_rejected(self, capsys, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,oops\n")
        code, _, err = run_cli(capsys, "skyline", str(path))
        assert code == 2
        assert "row 1" in err

    def test_missing_file_errors(self, capsys):
        code, _, err = run_cli(capsys, "skyline", "/no/such/file.csv")
        assert code == 2
        assert "error" in err


class TestWindow:
    @pytest.fixture
    def stream_file(self, tmp_path):
        path = tmp_path / "stream.csv"
        rows = ["5,5", "3,4", "4,3", "1,6", "2,2", "6,1"]
        path.write_text("\n".join(rows) + "\n")
        return str(path)

    def test_final_query(self, capsys, stream_file):
        code, out, _ = run_cli(
            capsys, "window", stream_file, "--capacity", "4"
        )
        assert code == 0
        [line] = out.splitlines()
        assert line.startswith("final\tn=4")
        # Last 4 = (4,3),(1,6),(2,2),(6,1): (4,3) is dominated by (2,2).
        assert "kappas=4,5,6" in line

    def test_periodic_reporting(self, capsys, stream_file):
        code, out, _ = run_cli(
            capsys, "window", stream_file, "--capacity", "4", "--n", "2",
            "--every", "2",
        )
        assert code == 0
        lines = out.splitlines()
        assert [l.split("\t")[0] for l in lines] == [
            "after 2", "after 4", "after 6", "final",
        ]

    def test_parameter_validation(self, capsys, stream_file):
        code, _, err = run_cli(
            capsys, "window", stream_file, "--capacity", "4", "--n", "9"
        )
        assert code == 2 and "--n" in err
        code, _, err = run_cli(
            capsys, "window", stream_file, "--capacity", "0"
        )
        assert code == 2 and "--capacity" in err
        code, _, err = run_cli(
            capsys, "window", stream_file, "--capacity", "4", "--every", "0"
        )
        assert code == 2 and "--every" in err

    def test_empty_stream(self, capsys, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        code, out, _ = run_cli(capsys, "window", str(path), "--capacity", "3")
        assert code == 0
        assert out == ""

    def test_band_mode_reports_skyband(self, capsys, stream_file):
        code, sky_out, _ = run_cli(
            capsys, "window", stream_file, "--capacity", "6"
        )
        code2, band_out, _ = run_cli(
            capsys, "window", stream_file, "--capacity", "6", "--band", "3"
        )
        assert code == 0 and code2 == 0
        sky_size = int(sky_out.split("size=")[1].split("\t")[0])
        band_size = int(band_out.split("size=")[1].split("\t")[0])
        assert band_size >= sky_size  # the band contains the skyline

    def test_band_validation(self, capsys, stream_file):
        code, _, err = run_cli(
            capsys, "window", stream_file, "--capacity", "4", "--band", "0"
        )
        assert code == 2 and "--band" in err


class TestInfo:
    def test_info_summary(self, capsys):
        code, out, _ = run_cli(capsys, "info")
        assert code == 0
        assert "repro" in out
        assert "NofNSkyline" in out
        assert "anticorrelated" in out


class TestPipelines:
    def test_generate_pipes_into_skyline(self, capsys, tmp_path, monkeypatch):
        _, generated, _ = run_cli(
            capsys, "generate", "--count", "50", "--seed", "3"
        )
        path = tmp_path / "gen.csv"
        path.write_text(generated)
        code, out, _ = run_cli(capsys, "skyline", str(path), "--indices")
        assert code == 0
        indices = [int(line) for line in out.splitlines()]
        assert indices == sorted(indices)
        assert indices  # a skyline always exists for non-empty input
