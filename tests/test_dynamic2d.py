"""Tests for the dynamic 2-d skyline structure (Kapoor-style)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dynamic2d import Dynamic2DSkyline
from repro.baselines.naive import naive_skyline
from repro.exceptions import DuplicateKeyError, KeyNotFoundError


def model_skyline(points: dict) -> set:
    """Reference staircase with the structure's duplicate collapsing."""
    distinct = {}
    for key, (x, y) in sorted(points.items(), key=lambda kv: (kv[1], kv[0])):
        distinct.setdefault((x, y), key)
    vectors = list(distinct)
    winners = naive_skyline(vectors)
    return {distinct[vectors[i]] for i in winners}


class TestBasics:
    def test_insert_and_skyline(self):
        sky = Dynamic2DSkyline()
        sky.insert(1, 5, "a")
        sky.insert(2, 3, "b")
        sky.insert(4, 1, "c")
        sky.insert(3, 4, "d")  # dominated by b
        assert [k for _, _, k in sky.skyline()] == ["a", "b", "c"]

    def test_duplicate_key_rejected(self):
        sky = Dynamic2DSkyline()
        sky.insert(1, 1, "a")
        with pytest.raises(DuplicateKeyError):
            sky.insert(2, 2, "a")

    def test_delete_restores_dominated_points(self):
        sky = Dynamic2DSkyline()
        sky.insert(2, 2, "strong")
        sky.insert(3, 3, "weak")
        assert [k for _, _, k in sky.skyline()] == ["strong"]
        assert sky.delete("strong") == (2.0, 2.0)
        assert [k for _, _, k in sky.skyline()] == ["weak"]

    def test_delete_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            Dynamic2DSkyline().delete("nope")

    def test_len_and_contains(self):
        sky = Dynamic2DSkyline()
        sky.insert(1, 1, 7)
        assert len(sky) == 1 and 7 in sky and 8 not in sky

    def test_points_iteration_in_x_order(self):
        sky = Dynamic2DSkyline()
        sky.insert(3, 1, "c")
        sky.insert(1, 3, "a")
        sky.insert(2, 2, "b")
        assert [k for _, _, k in sky.points()] == ["a", "b", "c"]

    def test_exact_duplicates_collapse_in_skyline(self):
        sky = Dynamic2DSkyline()
        sky.insert(1, 1, "first")
        sky.insert(1, 1, "second")
        assert len(sky.skyline()) == 1
        assert len(sky) == 2  # both stored; one reported


class TestDominatedQuery:
    def test_weak_dominance_boundary(self):
        sky = Dynamic2DSkyline()
        sky.insert(2, 2, "p")
        assert sky.dominated(2, 2)  # the stored point itself
        assert sky.dominated(3, 2)
        assert sky.dominated(2, 5)
        assert not sky.dominated(1.9, 5)
        assert not sky.dominated(5, 1.9)

    def test_empty_structure(self):
        assert not Dynamic2DSkyline().dominated(0, 0)


ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 9),
        st.integers(0, 9),
        st.integers(0, 30),
    ),
    max_size=120,
)


class TestDynamicProperties:
    @settings(max_examples=50, deadline=None)
    @given(ops)
    def test_matches_model_under_churn(self, operations):
        sky = Dynamic2DSkyline()
        model = {}
        next_key = 0
        keys = []
        for op, x, y, pick in operations:
            if op == "insert":
                sky.insert(x / 3, y / 3, next_key)
                model[next_key] = (x / 3, y / 3)
                keys.append(next_key)
                next_key += 1
            elif keys:
                victim = keys.pop(pick % len(keys))
                sky.delete(victim)
                del model[victim]
            got = {k for _, _, k in sky.skyline()}
            assert got == model_skyline(model)
            # dominated() agrees with a scan for a probe point.
            probe = (x / 3, y / 3)
            expected_dom = any(
                px <= probe[0] and py <= probe[1] for px, py in model.values()
            )
            assert sky.dominated(*probe) == expected_dom
        sky.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False, width=32),
                              st.floats(0, 1, allow_nan=False, width=32)),
                    max_size=80))
    def test_skyline_staircase_shape(self, points):
        sky = Dynamic2DSkyline()
        for i, (x, y) in enumerate(points):
            sky.insert(x, y, i)
        staircase = sky.skyline()
        xs = [x for x, _, _ in staircase]
        ys = [y for _, y, _ in staircase]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)
