"""Behavioural tests for :class:`repro.core.nofn.NofNSkyline`.

Covers construction, window mechanics (expiry, re-rooting, domination
pruning), query semantics and edge cases, the arrival outcomes, and the
engine statistics.  Property-based oracle comparisons live in
``test_nofn_property.py``.
"""

from __future__ import annotations

import pytest

from repro import NofNSkyline
from repro.exceptions import InvalidWindowError

from tests.conftest import window_skyline_kappas


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(InvalidWindowError):
            NofNSkyline(dim=2, capacity=0)
        with pytest.raises(ValueError, match="dimension"):
            NofNSkyline(dim=0, capacity=5)

    def test_fresh_engine_is_empty(self):
        engine = NofNSkyline(dim=2, capacity=5)
        assert engine.seen_so_far == 0
        assert engine.rn_size == 0
        assert len(engine) == 0
        assert engine.query(3) == []
        assert engine.skyline() == []


class TestAppend:
    def test_kappa_assignment_is_sequential(self):
        engine = NofNSkyline(dim=1, capacity=10)
        for i in range(3):
            outcome = engine.append((float(i + 10),))
            assert outcome.element.kappa == i + 1
            assert outcome.seen_so_far == i + 1
        assert engine.seen_so_far == 3

    def test_payload_round_trips(self):
        engine = NofNSkyline(dim=1, capacity=3)
        engine.append((1.0,), payload="order-77")
        [element] = engine.skyline()
        assert element.payload == "order-77"

    def test_dominated_newcomer_is_still_kept(self):
        """A newcomer dominated by older elements is never redundant —
        it is the *youngest*, so it answers small-n queries."""
        engine = NofNSkyline(dim=2, capacity=5)
        engine.append((0.1, 0.1))
        outcome = engine.append((0.9, 0.9))
        assert outcome.parent_kappa == 1
        assert engine.rn_size == 2
        assert [e.kappa for e in engine.query(1)] == [2]

    def test_dominating_newcomer_prunes_everything(self):
        engine = NofNSkyline(dim=2, capacity=5)
        engine.append((0.5, 0.5))
        engine.append((0.6, 0.4))
        outcome = engine.append((0.1, 0.1))
        assert {e.kappa for e in outcome.dominated_removed} == {1, 2}
        assert engine.rn_size == 1
        assert [e.kappa for e in engine.skyline()] == [3]

    def test_duplicate_points_keep_youngest(self):
        engine = NofNSkyline(dim=2, capacity=5)
        engine.append((0.5, 0.5))
        outcome = engine.append((0.5, 0.5))
        assert [e.kappa for e in outcome.dominated_removed] == [1]
        assert [e.kappa for e in engine.skyline()] == [2]


class TestExpiry:
    def test_window_slides(self):
        engine = NofNSkyline(dim=1, capacity=2)
        engine.append((3.0,))
        engine.append((2.0,))
        outcome = engine.append((5.0,))
        # kappa 1 (value 3.0) was already redundant (dominated by 2.0),
        # so nothing expires from R_N this arrival.
        assert outcome.expired == ()
        assert [e.kappa for e in engine.skyline()] == [2]

    def test_expiry_reroots_children(self):
        engine = NofNSkyline(dim=2, capacity=3)
        engine.append((0.1, 0.1))  # kappa 1: will critically dominate 2, 3
        engine.append((0.5, 0.5))  # kappa 2: child of 1
        engine.append((0.6, 0.6))  # kappa 3: child of 2 (youngest dominator)
        assert engine.critical_parent(2).kappa == 1
        outcome = engine.append((0.9, 0.9))  # kappa 4: expels kappa 1
        [expired] = outcome.expired
        assert expired.element.kappa == 1
        assert [c.kappa for c in expired.children] == [2]
        # kappa 2 is now a root: it answers the full-window query.
        assert engine.critical_parent(2) is None
        assert [e.kappa for e in engine.skyline()] == [2]

    def test_capacity_one_window(self):
        engine = NofNSkyline(dim=1, capacity=1)
        for i in range(5):
            engine.append((float(10 - i),))
            assert [e.kappa for e in engine.query(1)] == [i + 1]
            assert engine.rn_size == 1

    def test_old_skyline_point_survives_until_expiry(self):
        engine = NofNSkyline(dim=2, capacity=4)
        engine.append((0.0, 0.0))  # unbeatable
        for i in range(3):
            engine.append((0.5 + i / 10, 0.5))
        assert 1 in [e.kappa for e in engine.skyline()]
        engine.append((0.9, 0.9))  # pushes kappa 1 out of the window
        assert 1 not in [e.kappa for e in engine.skyline()]


class TestQueries:
    @pytest.fixture
    def engine(self):
        engine = NofNSkyline(dim=2, capacity=8)
        self.history = [
            (0.7, 0.3), (0.2, 0.9), (0.5, 0.5), (0.3, 0.6),
            (0.9, 0.1), (0.4, 0.4), (0.8, 0.8), (0.1, 0.95),
            (0.6, 0.2), (0.35, 0.55),
        ]
        for point in self.history:
            engine.append(point)
        return engine

    def test_every_n_matches_oracle(self, engine):
        for n in range(1, 9):
            assert [e.kappa for e in engine.query(n)] == (
                window_skyline_kappas(self.history, n)
            )

    def test_query_out_of_range(self, engine):
        with pytest.raises(InvalidWindowError):
            engine.query(0)
        with pytest.raises(InvalidWindowError):
            engine.query(9)

    def test_query_larger_than_stream_clamps(self):
        engine = NofNSkyline(dim=1, capacity=100)
        engine.append((2.0,))
        engine.append((1.0,))
        # Only 2 elements seen; n = 50 degenerates to "skyline so far".
        assert [e.kappa for e in engine.query(50)] == [2]

    def test_results_sorted_by_kappa(self, engine):
        kappas = [e.kappa for e in engine.query(8)]
        assert kappas == sorted(kappas)

    def test_skyline_equals_query_capacity(self, engine):
        assert engine.skyline() == engine.query(8)

    def test_query_does_not_mutate(self, engine):
        before = engine.dominance_graph_edges()
        engine.query(5)
        engine.query(2)
        assert engine.dominance_graph_edges() == before
        engine.check_invariants()


class TestOutcomes:
    def test_outcome_reports_parent(self):
        engine = NofNSkyline(dim=2, capacity=4)
        engine.append((0.5, 0.5))
        outcome = engine.append((0.2, 0.2))
        assert outcome.parent_kappa == 0  # dominates its elder: a root
        outcome = engine.append((0.7, 0.7))
        assert outcome.parent_kappa == 2

    def test_removed_kappas_union(self):
        engine = NofNSkyline(dim=2, capacity=2)
        engine.append((0.9, 0.2))
        engine.append((0.2, 0.9))
        outcome = engine.append((0.1, 0.1))
        # kappa 1 expired AND kappa 2 dominated.
        assert outcome.removed_kappas == frozenset({1, 2})

    def test_expired_record_is_immutable_snapshot(self):
        engine = NofNSkyline(dim=2, capacity=2)
        engine.append((0.1, 0.1))
        engine.append((0.5, 0.5))
        outcome = engine.append((0.6, 0.4))
        [expired] = outcome.expired
        assert expired.element.kappa == 1
        with pytest.raises(AttributeError):
            expired.element = None  # frozen dataclass


class TestStats:
    def test_counters_accumulate(self):
        engine = NofNSkyline(dim=2, capacity=3)
        for point in [(0.5, 0.5), (0.4, 0.6), (0.1, 0.1), (0.9, 0.9)]:
            engine.append(point)
        engine.query(2)
        engine.query(3)
        snap = engine.stats.snapshot()
        assert snap["arrivals"] == 4
        assert snap["queries"] == 2
        assert snap["dominated_removed"] >= 2  # (0.1,0.1) pruned two
        assert snap["rn_size_peak"] >= 2
        assert engine.stats.rn_size_mean > 0

    def test_mean_result_size(self):
        engine = NofNSkyline(dim=1, capacity=4)
        engine.append((1.0,))
        engine.query(1)
        assert engine.stats.mean_result_size == 1.0


class TestInvariants:
    def test_long_adversarial_run(self, rng):
        engine = NofNSkyline(dim=3, capacity=12)
        for step in range(400):
            point = tuple(rng.randrange(6) / 6 for _ in range(3))
            engine.append(point)
            if step % 20 == 0:
                engine.check_invariants()
        engine.check_invariants()
