"""Unit and property tests for the indexed heaps (trigger lists)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DuplicateKeyError, EmptyStructureError, KeyNotFoundError
from repro.structures.heap import IndexedHeap, MaxIndexedHeap, MinIndexedHeap


class TestMinHeapBasics:
    def test_push_pop_orders_ascending(self):
        heap = IndexedHeap()
        for key, pri in [("a", 3), ("b", 1), ("c", 2)]:
            heap.push(key, pri)
        assert [heap.pop() for _ in range(3)] == [("b", 1), ("c", 2), ("a", 3)]

    def test_peek_does_not_remove(self):
        heap = IndexedHeap()
        heap.push("x", 5)
        assert heap.peek() == ("x", 5)
        assert len(heap) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            IndexedHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            IndexedHeap().peek()

    def test_duplicate_key_rejected(self):
        heap = IndexedHeap()
        heap.push("x", 1)
        with pytest.raises(DuplicateKeyError):
            heap.push("x", 2)

    def test_ties_break_by_insertion_order(self):
        heap = IndexedHeap()
        heap.push("first", 1)
        heap.push("second", 1)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"

    def test_contains_and_len(self):
        heap = IndexedHeap()
        heap.push(10, 1)
        assert 10 in heap and 11 not in heap
        assert len(heap) == 1 and bool(heap)
        heap.pop()
        assert not heap


class TestDeletion:
    def test_delete_middle_entry(self):
        heap = IndexedHeap()
        for i, pri in enumerate([5, 1, 4, 2, 3]):
            heap.push(i, pri)
        heap.delete(2)  # priority 4
        assert sorted(p for _, p in iter_drain(heap)) == [1, 2, 3, 5]

    def test_delete_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            IndexedHeap().delete("nope")

    def test_discard_returns_flag(self):
        heap = IndexedHeap()
        heap.push("x", 1)
        assert heap.discard("x") is True
        assert heap.discard("x") is False

    def test_delete_last_slot(self):
        heap = IndexedHeap()
        heap.push("a", 1)
        heap.push("b", 2)
        heap.delete("b")
        assert heap.pop() == ("a", 1)

    def test_delete_root(self):
        heap = IndexedHeap()
        for i in range(6):
            heap.push(i, i)
        heap.delete(0)
        assert heap.peek() == (1, 1)


class TestUpdatePriority:
    def test_decrease_moves_up(self):
        heap = IndexedHeap()
        for i in range(5):
            heap.push(i, i + 10)
        heap.update_priority(4, 0)
        assert heap.peek() == (4, 0)

    def test_increase_moves_down(self):
        heap = IndexedHeap()
        for i in range(5):
            heap.push(i, i)
        heap.update_priority(0, 99)
        assert heap.peek() == (1, 1)
        drained = iter_drain(heap)
        assert drained[-1] == (0, 99)

    def test_priority_of(self):
        heap = IndexedHeap()
        heap.push("k", 7)
        assert heap.priority_of("k") == 7
        with pytest.raises(KeyNotFoundError):
            heap.priority_of("missing")

    def test_update_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            IndexedHeap().update_priority("missing", 1)


class TestMaxHeap:
    def test_pop_orders_descending(self):
        heap = MaxIndexedHeap()
        for key, pri in [("a", 3), ("b", 1), ("c", 2)]:
            heap.push(key, pri)
        assert [p for _, p in iter_drain(heap)] == [3, 2, 1]

    def test_peek_is_maximum(self):
        heap = MaxIndexedHeap()
        heap.push("lo", 1)
        heap.push("hi", 9)
        assert heap.peek() == ("hi", 9)

    def test_priority_round_trips_through_wrapper(self):
        heap = MaxIndexedHeap()
        heap.push("k", 42)
        assert heap.priority_of("k") == 42
        assert heap.pop() == ("k", 42)

    def test_min_alias_is_min_ordered(self):
        heap = MinIndexedHeap()
        heap.push("a", 2)
        heap.push("b", 1)
        assert heap.pop() == ("b", 1)


def iter_drain(heap):
    out = []
    while heap:
        out.append(heap.pop())
    return out


ops = st.lists(
    st.tuples(st.sampled_from(["push", "pop", "delete", "update"]),
              st.integers(0, 20), st.integers(-50, 50)),
    max_size=120,
)


class TestHeapProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops, st.booleans())
    def test_random_operations_keep_invariants(self, operations, use_max):
        heap = MaxIndexedHeap() if use_max else IndexedHeap()
        model = {}
        for op, key, pri in operations:
            if op == "push" and key not in model:
                heap.push(key, pri)
                model[key] = pri
            elif op == "pop" and model:
                popped_key, popped_pri = heap.pop()
                expected = (max if use_max else min)(model.values())
                assert popped_pri == expected
                assert model.pop(popped_key) == popped_pri
            elif op == "delete" and key in model:
                heap.delete(key)
                del model[key]
            elif op == "update" and key in model:
                heap.update_priority(key, pri)
                model[key] = pri
            heap.check_invariants()
            assert len(heap) == len(model)
        # Drain: must come out fully sorted.
        drained = [p for _, p in iter_drain(heap)]
        assert drained == sorted(drained, reverse=use_max)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    def test_heapsort(self, values):
        heap = IndexedHeap()
        for i, v in enumerate(values):
            heap.push(i, v)
        assert [p for _, p in iter_drain(heap)] == sorted(values)
