"""Tests for the R-tree's NumPy leaf kernels and search pruning.

Three concerns:

* parity — with kernels on and off the three dominance searches return
  identical results (property-tested over random point sets);
* caching — leaf kernels are invalidated by every structural mutation,
  and the sanitizer's ``rtree-kernel-cache`` invariant catches a stale
  mirror;
* pruning — ``report_dominated`` expands only subtrees whose candidate
  region contains the probe, pinned by an independent mirror walk over
  ``last_report_visits``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.rtree_kernels import (
    HAVE_NUMPY,
    KERNEL_MIN_LEAF,
    KERNEL_POLICIES,
    resolve_kernel_policy,
)
from repro.exceptions import StructureCorruptionError
from repro.structures.rtree import RTree

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")


def build_pair(points, max_entries=16):
    """The same point set in a kernelised and a pure-Python tree.

    Fan-out 16 keeps leaves above :data:`KERNEL_MIN_LEAF`, so the
    kernelised tree genuinely takes the vectorised path."""
    on = RTree(dim=len(points[0]), max_entries=max_entries,
               min_entries=4, kernels="auto")
    off = RTree(dim=len(points[0]), max_entries=max_entries,
                min_entries=4, kernels="off")
    for kappa, point in enumerate(points, start=1):
        on.insert(point, kappa)
        off.insert(point, kappa)
    return on, off


def all_nodes(tree):
    nodes = []
    stack = [tree._root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if not node.is_leaf:
            stack.extend(node.children)
    return nodes


points_strategy = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)),
    min_size=1,
    max_size=60,
)
probe_strategy = st.tuples(
    st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)
)


class TestPolicies:
    def test_resolve_known_policies(self):
        assert KERNEL_POLICIES == ("auto", "on", "off")
        assert resolve_kernel_policy("off") is False
        assert resolve_kernel_policy("auto") is HAVE_NUMPY
        assert resolve_kernel_policy("on") is HAVE_NUMPY

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_kernel_policy("fast")
        with pytest.raises(ValueError):
            RTree(dim=2, kernels="fast")

    def test_off_never_builds_kernels(self):
        tree = RTree(dim=2, max_entries=4, min_entries=2, kernels="off")
        for kappa in range(1, 40):
            tree.insert(((kappa * 7) % 13, (kappa * 5) % 11), kappa)
        tree.report_dominated((0, 0))
        tree.max_kappa_dominator((12, 10))
        assert all(node.kernel is None for node in all_nodes(tree))

    def test_policy_recorded(self):
        assert RTree(dim=2, kernels="off").kernel_policy == "off"
        assert RTree(dim=2).kernel_policy == "auto"


@needs_numpy
class TestKernelParity:
    @settings(max_examples=60, deadline=None)
    @given(points_strategy, probe_strategy)
    def test_report_dominated_parity(self, points, probe):
        on, off = build_pair(points)
        got = [e.kappa for e in on.report_dominated(probe)]
        expected = [e.kappa for e in off.report_dominated(probe)]
        assert sorted(got) == sorted(expected)
        brute = sorted(
            kappa
            for kappa, point in enumerate(points, start=1)
            if all(a <= b for a, b in zip(probe, point))  # lint: skip=REPRO002
        )
        assert sorted(got) == brute

    @settings(max_examples=60, deadline=None)
    @given(points_strategy, probe_strategy)
    def test_remove_dominated_parity(self, points, probe):
        on, off = build_pair(points)
        # The removal path only *reuses* kernels (building one for a
        # leaf about to mutate would be pure overhead), so seed them
        # with a read-only search first.
        on.report_dominated(probe)
        got = sorted(e.kappa for e in on.remove_dominated(probe))
        expected = sorted(e.kappa for e in off.remove_dominated(probe))
        assert got == expected
        assert sorted(e.kappa for e in on.entries()) == sorted(
            e.kappa for e in off.entries()
        )
        on.check_invariants()
        off.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(points_strategy, probe_strategy, st.one_of(st.none(), st.integers(1, 60)))
    def test_max_kappa_dominator_parity(self, points, probe, kappa_below):
        on, off = build_pair(points)
        got = on.max_kappa_dominator(probe, kappa_below)
        expected = off.max_kappa_dominator(probe, kappa_below)
        if expected is None:
            assert got is None
        else:
            assert got is not None and got.kappa == expected.kappa


@needs_numpy
class TestKernelCache:
    def test_small_leaves_skip_the_kernel(self):
        """Below ``KERNEL_MIN_LEAF`` the searches stay on the Python
        loop — vectorising tiny leaves only pays NumPy call overhead —
        while a big enough leaf builds and caches its kernel."""
        # Anti-diagonal points: a mid-range probe intersects the leaf's
        # MBR without fully dominating it, forcing the per-entry branch.
        small = RTree(dim=2, max_entries=16, min_entries=4, kernels="auto")
        for kappa in range(1, KERNEL_MIN_LEAF):  # one leaf, gate not met
            small.insert((kappa, KERNEL_MIN_LEAF - kappa), kappa)
        assert [e.kappa for e in small.report_dominated((4, 4))]
        small.max_kappa_dominator((20, 20))
        assert all(node.kernel is None for node in all_nodes(small))

        big = RTree(dim=2, max_entries=16, min_entries=4, kernels="auto")
        for kappa in range(1, KERNEL_MIN_LEAF + 2):
            big.insert((kappa, KERNEL_MIN_LEAF + 2 - kappa), kappa)
        assert [e.kappa for e in big.report_dominated((5, 5))]
        assert any(node.kernel is not None for node in all_nodes(big))

    def test_mutations_invalidate_kernels(self):
        tree = RTree(dim=2, max_entries=16, min_entries=4, kernels="auto")
        for kappa in range(1, 60):
            tree.insert(((kappa * 7) % 13, (kappa * 5) % 11), kappa)
            tree.report_dominated((0, 0))  # builds kernels on hot leaves
            if kappa % 3 == 0:
                tree.delete(kappa - 1)
            tree.check_invariants()  # includes the kernel-mirror check

    def test_stale_kernel_is_caught(self):
        tree = RTree(dim=2, max_entries=16, min_entries=4, kernels="auto")
        for kappa in range(1, 30):
            tree.insert(((kappa * 7) % 13, (kappa * 5) % 11), kappa)
        leaf = next(n for n in all_nodes(tree) if n.is_leaf and n.children)
        kernel = tree._leaf_kernel(leaf)
        kernel.points[0, 0] += 1.0  # corrupt the mirror behind its back
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert "rtree-kernel-cache" in str(excinfo.value)


class TestReportPruning:
    def mirror_visits(self, tree, q):
        """Independent re-statement of the pruning contract: a node is
        expanded iff its box passes ``may_contain_dominated`` at push
        time, and a fully dominated box is harvested without pushing
        its children."""
        visits = 0
        root = tree._root
        stack = []
        if root.mbr is not None and root.mbr.may_contain_dominated(q):
            stack.append(root)
        while stack:
            node = stack.pop()
            if node.mbr is None:
                continue
            visits += 1
            if node.mbr.fully_dominated_by(q) or node.is_leaf:
                continue
            for child in node.children:
                if child.mbr is not None and child.mbr.may_contain_dominated(q):
                    stack.append(child)
        return visits

    @pytest.mark.parametrize("kernels", ["auto", "off"])
    def test_visit_counts_match_mirror(self, kernels):
        rng = random.Random(42)
        tree = RTree(dim=3, max_entries=4, min_entries=2, kernels=kernels)
        points = [
            tuple(rng.randint(0, 50) for _ in range(3)) for _ in range(300)
        ]
        for kappa, point in enumerate(points, start=1):
            tree.insert(point, kappa)
        total_nodes = len(all_nodes(tree))
        pruned_somewhere = False
        for _ in range(25):
            q = tuple(rng.randint(0, 50) for _ in range(3))
            got = sorted(e.kappa for e in tree.report_dominated(q))
            assert tree.last_report_visits == self.mirror_visits(tree, q)
            if tree.last_report_visits < total_nodes:
                pruned_somewhere = True
            brute = sorted(
                kappa
                for kappa, point in enumerate(points, start=1)
                if all(a <= b for a, b in zip(q, point))  # lint: skip=REPRO002
            )
            assert got == brute
        assert pruned_somewhere

    def test_high_probe_visits_nothing(self):
        """A probe dominating nothing and outside every candidate region
        must not expand a single node."""
        tree = RTree(dim=2, max_entries=4, min_entries=2)
        for kappa in range(1, 30):
            tree.insert((kappa % 5, kappa % 7), kappa)
        assert tree.report_dominated((100, 100)) == []
        assert tree.last_report_visits == 0

    def test_empty_tree_visits_nothing(self):
        tree = RTree(dim=2)
        assert tree.report_dominated((0, 0)) == []
        assert tree.last_report_visits == 0
