"""Unit and property tests for the in-memory R-tree.

Covers the classic tree mechanics (insert/split/delete/condense) and —
crucially for the paper — the two dominance-oriented searches:
depth-first dominance reporting and the best-first max-kappa dominator
search (section 3.3, Figure 7).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import weakly_dominates
from repro.exceptions import (
    DimensionMismatchError,
    DuplicateKeyError,
    KeyNotFoundError,
)
from repro.structures.rtree import RTree


def brute_dominated(points, q):
    return sorted(k for k, p in points.items() if weakly_dominates(q, p))


def brute_best_dominator(points, q, kappa_below=None):
    eligible = [
        k
        for k, p in points.items()
        if weakly_dominates(p, q)
        and (kappa_below is None or k < kappa_below)
    ]
    return max(eligible) if eligible else None


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="dimension"):
            RTree(0)
        with pytest.raises(ValueError, match="min_entries"):
            RTree(2, max_entries=4, min_entries=3)

    def test_empty_tree(self):
        tree = RTree(2)
        assert len(tree) == 0
        assert not tree
        assert tree.report_dominated((0.0, 0.0)) == []
        assert tree.max_kappa_dominator((0.0, 0.0)) is None
        tree.check_invariants()


class TestInsert:
    def test_insert_and_lookup(self):
        tree = RTree(2)
        entry = tree.insert((0.5, 0.5), kappa=1, data="payload")
        assert tree.entry(1) is entry
        assert entry.data == "payload"
        assert 1 in tree

    def test_duplicate_kappa_rejected(self):
        tree = RTree(2)
        tree.insert((0.1, 0.1), kappa=1)
        with pytest.raises(DuplicateKeyError):
            tree.insert((0.9, 0.9), kappa=1)

    def test_wrong_dimension_rejected(self):
        tree = RTree(2)
        with pytest.raises(DimensionMismatchError):
            tree.insert((0.1,), kappa=1)

    def test_split_grows_height(self):
        tree = RTree(2, max_entries=4, min_entries=2)
        for i in range(30):
            tree.insert((i / 30, (i * 7 % 30) / 30), kappa=i + 1)
        assert tree.height() >= 2
        tree.check_invariants()

    def test_duplicate_points_different_kappas(self):
        tree = RTree(2)
        tree.insert((0.5, 0.5), kappa=1)
        tree.insert((0.5, 0.5), kappa=2)
        assert len(tree) == 2
        assert sorted(e.kappa for e in tree.report_dominated((0.5, 0.5))) == [1, 2]


class TestDelete:
    def test_delete_returns_entry(self):
        tree = RTree(2)
        tree.insert((0.2, 0.2), kappa=1, data="x")
        entry = tree.delete(1)
        assert entry.data == "x"
        assert len(tree) == 0
        tree.check_invariants()

    def test_delete_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            RTree(2).delete(7)

    def test_delete_triggers_condense(self):
        tree = RTree(2, max_entries=4, min_entries=2)
        rng = random.Random(1)
        for i in range(40):
            tree.insert((rng.random(), rng.random()), kappa=i + 1)
        for i in range(1, 36):
            tree.delete(i)
            tree.check_invariants()
        assert len(tree) == 5

    def test_interleaved_insert_delete(self):
        tree = RTree(3, max_entries=6, min_entries=2)
        rng = random.Random(4)
        live = {}
        kappa = 0
        for step in range(500):
            if live and rng.random() < 0.4:
                victim = rng.choice(list(live))
                tree.delete(victim)
                del live[victim]
            else:
                kappa += 1
                point = tuple(rng.random() for _ in range(3))
                tree.insert(point, kappa)
                live[kappa] = point
            if step % 25 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert sorted(e.kappa for e in tree.entries()) == sorted(live)


class TestDominanceReporting:
    def test_reports_weakly_dominated_only(self):
        tree = RTree(2)
        tree.insert((0.5, 0.5), kappa=1)
        tree.insert((0.4, 0.6), kappa=2)
        tree.insert((0.6, 0.6), kappa=3)
        got = sorted(e.kappa for e in tree.report_dominated((0.5, 0.5)))
        assert got == [1, 3]  # (0.4, 0.6) trades off, not dominated

    def test_report_is_non_destructive(self):
        tree = RTree(2)
        tree.insert((0.7, 0.7), kappa=1)
        tree.report_dominated((0.0, 0.0))
        assert len(tree) == 1

    def test_remove_dominated_unlinks_and_rebalances(self):
        tree = RTree(2, max_entries=4, min_entries=2)
        rng = random.Random(8)
        live = {}
        for i in range(60):
            point = (rng.random(), rng.random())
            tree.insert(point, i + 1)
            live[i + 1] = point
        q = (0.3, 0.3)
        removed = sorted(e.kappa for e in tree.remove_dominated(q))
        assert removed == brute_dominated(live, q)
        for kappa in removed:
            assert kappa not in tree
            del live[kappa]
        tree.check_invariants()
        assert len(tree) == len(live)

    def test_l_corner_harvests_whole_subtree(self):
        tree = RTree(2, max_entries=4, min_entries=2)
        # A tight cluster that q dominates entirely.
        for i in range(20):
            tree.insert((0.8 + i * 0.002, 0.8 + i * 0.003), kappa=i + 1)
        removed = tree.remove_dominated((0.0, 0.0))
        assert len(removed) == 20
        assert len(tree) == 0
        tree.check_invariants()


class TestBestFirstDominator:
    def test_returns_youngest_dominator(self):
        tree = RTree(2)
        tree.insert((0.2, 0.2), kappa=1)
        tree.insert((0.3, 0.1), kappa=5)
        tree.insert((0.9, 0.9), kappa=9)  # not a dominator of q
        found = tree.max_kappa_dominator((0.4, 0.4))
        assert found is not None and found.kappa == 5

    def test_none_when_no_dominator(self):
        tree = RTree(2)
        tree.insert((0.5, 0.5), kappa=1)
        assert tree.max_kappa_dominator((0.4, 0.6)) is None

    def test_equal_point_weakly_dominates(self):
        tree = RTree(2)
        tree.insert((0.5, 0.5), kappa=3)
        found = tree.max_kappa_dominator((0.5, 0.5))
        assert found is not None and found.kappa == 3

    def test_kappa_below_excludes_young_entries(self):
        tree = RTree(2)
        tree.insert((0.2, 0.2), kappa=1)
        tree.insert((0.1, 0.1), kappa=8)
        found = tree.max_kappa_dominator((0.5, 0.5), kappa_below=8)
        assert found is not None and found.kappa == 1

    def test_kappa_below_can_empty_the_answer(self):
        tree = RTree(2)
        tree.insert((0.1, 0.1), kappa=8)
        assert tree.max_kappa_dominator((0.5, 0.5), kappa_below=8) is None


coords = st.floats(min_value=0, max_value=1, allow_nan=False, width=32)


class TestSearchProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(coords, coords, coords), max_size=60),
        st.tuples(coords, coords, coords),
    )
    def test_searches_match_brute_force(self, raw_points, q):
        tree = RTree(3, max_entries=5, min_entries=2)
        live = {}
        for i, point in enumerate(raw_points):
            tree.insert(point, i + 1)
            live[i + 1] = point
        got = sorted(e.kappa for e in tree.report_dominated(q))
        assert got == brute_dominated(live, q)
        best = tree.max_kappa_dominator(q)
        assert (best.kappa if best else None) == brute_best_dominator(live, q)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(coords, coords), min_size=1, max_size=50),
        st.tuples(coords, coords),
        st.integers(1, 50),
    )
    def test_constrained_dominator_matches_brute_force(self, raw_points, q, cutoff):
        tree = RTree(2, max_entries=4, min_entries=2)
        live = {}
        for i, point in enumerate(raw_points):
            tree.insert(point, i + 1)
            live[i + 1] = point
        best = tree.max_kappa_dominator(q, kappa_below=cutoff)
        assert (best.kappa if best else None) == brute_best_dominator(
            live, q, kappa_below=cutoff
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(coords, coords), max_size=50),
           st.tuples(coords, coords))
    def test_remove_dominated_equals_report(self, raw_points, q):
        tree = RTree(2, max_entries=4, min_entries=2)
        for i, point in enumerate(raw_points):
            tree.insert(point, i + 1)
        reported = sorted(e.kappa for e in tree.report_dominated(q))
        removed = sorted(e.kappa for e in tree.remove_dominated(q))
        assert reported == removed
        tree.check_invariants()
