"""Tests for the versioned stab cache (the query fast path).

Covers the cache in isolation (memoization, versioned invalidation,
the pure-Python fallback) and through the engines: the property test
required by the issue interleaves ``append`` / ``append_many`` /
expiry and checks every cached answer against the independent
``query_scan`` implementation, and that version bumps track interval
changes exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.accel.stab_cache as stab_cache_module
from repro.accel import DEFAULT_MAX_MEMO, StabCache
from repro.core.continuous import ContinuousQueryManager
from repro.core.n1n2 import N1N2Skyline
from repro.core.nofn import NofNSkyline
from repro.core.skyband import KSkybandEngine
from repro.core.timewindow import TimeWindowSkyline
from repro.structures.interval_tree import IntervalTree


class TestStabCacheUnit:
    def test_matches_tree_stab(self):
        tree = IntervalTree()
        tree.insert(0, 3, "c")
        tree.insert(0, 4, "e")
        tree.insert(3, 7, "h")
        tree.insert(4, 5, "f")
        tree.insert(4, 6, "g")
        cache = StabCache(tree)
        for t in (0, 1, 2, 3.5, 5, 6, 7, 8):
            assert sorted(cache.stab(t)) == sorted(tree.stab(t))

    def test_memo_hit_and_miss_counters(self):
        tree = IntervalTree()
        tree.insert(0, 5, "a")
        tree.insert(3, 8, "b")
        cache = StabCache(tree)
        assert cache.stab(2) == ["a"]
        assert (cache.hits, cache.misses, cache.rebuilds) == (0, 1, 1)
        assert cache.stab(2) == ["a"]
        assert (cache.hits, cache.misses, cache.rebuilds) == (1, 1, 1)
        assert sorted(cache.stab(4)) == ["a", "b"]  # new span: a miss
        assert (cache.hits, cache.misses, cache.rebuilds) == (1, 2, 1)

    def test_equivalent_stab_points_share_one_entry(self):
        """Answers are constant between consecutive endpoints, so
        distinct stab points inside one elementary span are memo hits."""
        tree = IntervalTree()
        tree.insert(0, 10, "a")
        tree.insert(5, 12, "b")
        cache = StabCache(tree)
        assert cache.stab(6) == ["a", "b"]
        for t in (5.5, 7, 8.25, 10):  # all inside the span (5, 10]
            assert cache.stab(t) == ["a", "b"]
        assert cache.misses == 1 and cache.hits == 4
        assert cache.stats()["memo_size"] == 1

    def test_write_invalidates_exactly(self):
        tree = IntervalTree()
        h = tree.insert(0, 5, "a")
        cache = StabCache(tree)
        cache.stab(3)
        assert cache.is_fresh()
        tree.insert(1, 6, "b")
        assert not cache.is_fresh()
        assert sorted(cache.stab(3)) == ["a", "b"]
        assert cache.rebuilds == 2
        tree.remove(h)
        assert cache.stab(3) == ["b"]
        assert cache.rebuilds == 3
        # Reads between writes reuse the snapshot and memo.
        assert cache.stab(3) == ["b"]
        assert cache.rebuilds == 3 and cache.hits == 1

    def test_returns_fresh_list_per_call(self):
        tree = IntervalTree()
        tree.insert(0, 5, "a")
        cache = StabCache(tree)
        first = cache.stab(3)
        first.append("mutated")
        assert cache.stab(3) == ["a"]

    def test_memo_capacity_clears_table(self):
        tree = IntervalTree()
        for i in range(10):
            tree.insert(i, i + 1, i)
        cache = StabCache(tree, max_memo=4)
        for t in (0.5, 1.5, 2.5, 3.5):  # four distinct spans
            assert cache.stab(t) == [int(t)]
        assert cache.stats()["memo_size"] == 4
        cache.stab(4.5)  # table full: cleared, then the new span stored
        assert cache.stats()["memo_size"] == 1
        assert cache.stab(4.5) == [4]

    def test_sort_key_orders_memoized_answers(self):
        tree = IntervalTree()
        tree.insert(0, 9, "b")
        tree.insert(1, 9, "a")
        tree.insert(2, 9, "c")
        plain = StabCache(tree)
        assert plain.stab(5) == ["b", "a", "c"]  # snapshot (low) order
        ordered = StabCache(tree, sort_key=lambda d: d)
        assert ordered.stab(5) == ["a", "b", "c"]
        assert ordered.stab(5) == ["a", "b", "c"]  # the memo hit too

    def test_max_memo_validation(self):
        with pytest.raises(ValueError):
            StabCache(IntervalTree(), max_memo=0)

    def test_invalidate_forces_rebuild(self):
        tree = IntervalTree()
        tree.insert(0, 5, "a")
        cache = StabCache(tree)
        cache.stab(3)
        cache.invalidate()
        assert not cache.is_fresh()
        assert cache.stab(3) == ["a"]
        assert cache.rebuilds == 2

    def test_stats_shape(self):
        cache = StabCache(IntervalTree())
        stats = cache.stats()
        assert set(stats) == {
            "hits", "misses", "rebuilds", "memo_size", "snapshot_size"
        }
        assert DEFAULT_MAX_MEMO >= 1

    def test_empty_tree(self):
        cache = StabCache(IntervalTree())
        assert cache.stab(1) == []
        assert cache.stats()["snapshot_size"] == 0

    def test_pure_python_fallback_matches(self, monkeypatch):
        tree = IntervalTree()
        spans = [(0, 3), (0, 4), (3, 7), (4, 5), (4, 6), (2, 9)]
        for i, (lo, hi) in enumerate(spans):
            tree.insert(lo, hi, i)
        monkeypatch.setattr(stab_cache_module, "_np", None)
        cache = StabCache(tree)
        for t in range(0, 11):
            assert sorted(cache.stab(t)) == sorted(tree.stab(t))
        tree.insert(5, 12, 99)
        assert sorted(cache.stab(6)) == sorted(tree.stab(6))


point2 = st.tuples(st.integers(0, 8), st.integers(0, 8))
operations = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.lists(point2, min_size=1, max_size=1)),
        st.tuples(st.just("batch"), st.lists(point2, min_size=1, max_size=5)),
    ),
    min_size=1,
    max_size=25,
)


class TestCachedQueryProperty:
    @settings(max_examples=60, deadline=None)
    @given(operations, st.integers(2, 10))
    def test_cached_query_matches_scan_under_interleaving(self, ops, capacity):
        """The issue's parity property: interleaved single/batched
        ingestion (expiry happens implicitly once the window fills),
        with every cached ``query(n)`` checked against the independent
        ``query_scan`` implementation, and version bumps tracking
        interval-set changes exactly."""
        engine = NofNSkyline(dim=2, capacity=capacity)
        assert engine.stab_cache is not None
        for kind, points in ops:
            before_version = engine.structure_version
            before_set = sorted(
                (i.low, i.high) for i in engine._intervals.intervals()
            )
            if kind == "append":
                engine.append(points[0])
            else:
                engine.append_many(points)
            after_set = sorted(
                (i.low, i.high) for i in engine._intervals.intervals()
            )
            # Arrivals always insert the newcomer's interval (its high
            # endpoint is the fresh label), so the set changed and the
            # version must have moved with it.
            assert after_set != before_set
            assert engine.structure_version > before_version
            for n in {1, 2, capacity // 2, capacity}:
                if n < 1:
                    continue
                cached = [e.kappa for e in engine.query(n)]
                scanned = [e.kappa for e in engine.query_scan(n)]
                assert cached == scanned
            # Repeat queries between writes are memo hits answering
            # identically.
            stats_before = engine.cache_stats()
            again = [e.kappa for e in engine.query(capacity)]
            stats_after = engine.cache_stats()
            assert again == [e.kappa for e in engine.query_scan(capacity)]
            assert stats_after["hits"] > stats_before["hits"]
            assert stats_after["rebuilds"] == stats_before["rebuilds"]

    @settings(max_examples=25, deadline=None)
    @given(operations, st.integers(2, 8))
    def test_version_stable_iff_no_writes(self, ops, capacity):
        engine = NofNSkyline(dim=2, capacity=capacity)
        for kind, points in ops:
            if kind == "append":
                engine.append(points[0])
            else:
                engine.append_many(points)
        version = engine.structure_version
        interval_set = sorted(
            (i.low, i.high) for i in engine._intervals.intervals()
        )
        engine.query(1)
        engine.query(capacity)
        engine.query_scan(capacity)
        engine.non_redundant()
        assert engine.structure_version == version
        assert interval_set == sorted(
            (i.low, i.high) for i in engine._intervals.intervals()
        )


class TestEngineIntegration:
    def test_query_cache_off_disables_cache(self):
        engine = NofNSkyline(dim=2, capacity=4, query_cache=False)
        assert engine.stab_cache is None
        assert engine.cache_stats() is None
        engine.append((1, 2))
        assert [e.kappa for e in engine.query(4)] == [1]

    def test_sanitize_full_with_cache(self):
        engine = NofNSkyline(dim=2, capacity=6, sanitize="full")
        for i in range(20):
            engine.append(((i * 7) % 11, (i * 3) % 13))
            engine.query(3)  # keep the cache warm so full mode checks it
        engine.check_invariants()

    def test_timewindow_query_last_uses_cache(self):
        engine = TimeWindowSkyline(dim=2, horizon=10.0)
        for i in range(1, 15):
            engine.append(((i * 5) % 7, (i * 2) % 5), timestamp=float(i))
        first = [e.kappa for e in engine.query_last(5.0)]
        stats = engine.cache_stats()
        second = [e.kappa for e in engine.query_last(5.0)]
        assert first == second
        assert engine.cache_stats()["hits"] > stats["hits"]

    def test_skyband_cached_query_matches_uncached(self):
        cached = KSkybandEngine(dim=2, capacity=8, k=2)
        plain = KSkybandEngine(dim=2, capacity=8, k=2, query_cache=False)
        assert plain.stab_cache is None
        for i in range(30):
            point = ((i * 7) % 10, (i * 13) % 9)
            cached.append(point)
            plain.append(point)
            for n in (1, 4, 8):
                assert [e.kappa for e in cached.query(n)] == [
                    e.kappa for e in plain.query(n)
                ]

    def test_n1n2_cached_query_matches_uncached(self):
        cached = N1N2Skyline(dim=2, capacity=8)
        plain = N1N2Skyline(dim=2, capacity=8, query_cache=False)
        for i in range(30):
            point = ((i * 7) % 10, (i * 13) % 9)
            cached.append(point)
            plain.append(point)
            for n1, n2 in ((1, 8), (2, 8), (4, 6)):
                assert [e.kappa for e in cached.query(n1, n2)] == [
                    e.kappa for e in plain.query(n1, n2)
                ]
        stats = cached.cache_stats()
        assert stats is not None and stats["rebuilds"] > 0
        assert plain.cache_stats() is None

    def test_continuous_manager_rides_the_cache(self):
        engine = NofNSkyline(dim=2, capacity=10)
        manager = ContinuousQueryManager(engine)
        for i in range(10):
            manager.append(((i * 3) % 7, (i * 5) % 11))
        # Registering several queries between arrivals costs one
        # rebuild, then memo traffic.
        rebuilds_before = engine.cache_stats()["rebuilds"]
        handles = [manager.register(n=n) for n in (2, 4, 6, 8, 10)]
        assert engine.cache_stats()["rebuilds"] <= rebuilds_before + 1
        for i in range(10, 30):
            manager.append(((i * 3) % 7, (i * 5) % 11))
            for handle in handles:
                expected = [e.kappa for e in engine.query(handle.n)]
                assert sorted(m.kappa for m in handle.result()) == expected
