"""Unit tests for :class:`repro.core.element.StreamElement`."""

from __future__ import annotations

import pytest

from repro.core.element import StreamElement


class TestConstruction:
    def test_values_are_frozen_as_float_tuple(self):
        element = StreamElement([1, 2], kappa=3)
        assert element.values == (1.0, 2.0)
        assert isinstance(element.values, tuple)

    def test_payload_is_carried_verbatim(self):
        payload = {"deal": 42}
        element = StreamElement((1.0,), kappa=1, payload=payload)
        assert element.payload is payload

    def test_default_payload_is_none(self):
        assert StreamElement((1.0,), kappa=1).payload is None

    def test_dim(self):
        assert StreamElement((1.0, 2.0, 3.0), kappa=1).dim == 3

    def test_kappa_must_be_positive(self):
        with pytest.raises(ValueError, match="1-based"):
            StreamElement((1.0,), kappa=0)

    def test_needs_at_least_one_coordinate(self):
        with pytest.raises(ValueError, match="at least one coordinate"):
            StreamElement((), kappa=1)

    def test_nan_coordinates_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            StreamElement((0.5, float("nan")), kappa=1)

    def test_infinities_are_allowed(self):
        # Infinite coordinates order consistently (sentinel use-cases).
        element = StreamElement((float("inf"), 0.0), kappa=1)
        assert element.values[0] == float("inf")


class TestRecency:
    def test_age_of_newest_is_one(self):
        element = StreamElement((1.0,), kappa=10)
        assert element.age(seen_so_far=10) == 1

    def test_age_grows_with_stream(self):
        element = StreamElement((1.0,), kappa=10)
        assert element.age(seen_so_far=15) == 6

    def test_expiry_boundary(self):
        element = StreamElement((1.0,), kappa=5)
        # window of 6 with M=10 covers kappas 5..10: still inside.
        assert not element.is_expired(seen_so_far=10, window=6)
        # window of 5 covers kappas 6..10: expired.
        assert element.is_expired(seen_so_far=10, window=5)


class TestIdentity:
    def test_equality_by_kappa_and_values(self):
        a = StreamElement((1.0, 2.0), kappa=3)
        b = StreamElement((1.0, 2.0), kappa=3, payload="x")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_kappa_differs(self):
        a = StreamElement((1.0, 2.0), kappa=3)
        b = StreamElement((1.0, 2.0), kappa=4)
        assert a != b

    def test_not_equal_to_other_types(self):
        assert StreamElement((1.0,), kappa=1) != (1.0,)

    def test_repr_mentions_kappa_and_values(self):
        text = repr(StreamElement((1.0, 2.5), kappa=7))
        assert "kappa=7" in text
        assert "2.5" in text
