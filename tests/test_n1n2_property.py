"""Property-based validation of the (n1,n2)-of-N engine.

Checks Theorem 4's query characterisation against the quadratic oracle
over all slices, the CBC-graph ancestor definitions (Equations 1-2),
and the structural invariants after arbitrary streams.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import N1N2Skyline
from repro.core.dominance import weakly_dominates

from tests.conftest import slice_skyline_kappas

coord = st.integers(0, 6).map(lambda v: v / 6)


def streams(max_dim=3, max_len=45):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


class TestSliceOracle:
    @settings(max_examples=40, deadline=None)
    @given(streams(), st.integers(1, 12))
    def test_all_slices_match_oracle(self, history, capacity):
        engine = N1N2Skyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        for n1 in range(1, capacity + 1):
            for n2 in range(n1, capacity + 1):
                got = [e.kappa for e in engine.query(n1, n2)]
                assert got == slice_skyline_kappas(history, n1, n2), (
                    f"(n1, n2) = ({n1}, {n2})"
                )

    @settings(max_examples=20, deadline=None)
    @given(streams(max_len=30), st.integers(1, 8))
    def test_slices_match_at_every_step(self, history, capacity):
        engine = N1N2Skyline(dim=len(history[0]), capacity=capacity)
        prefix = []
        probes = [(1, capacity), (max(1, capacity // 2), capacity),
                  (capacity, capacity)]
        for point in history:
            prefix.append(point)
            engine.append(point)
            for n1, n2 in probes:
                got = [e.kappa for e in engine.query(n1, n2)]
                assert got == slice_skyline_kappas(prefix, n1, n2)


class TestCBCGraph:
    @settings(max_examples=40, deadline=None)
    @given(streams(), st.integers(1, 10))
    def test_ancestors_match_equations(self, history, capacity):
        """a_e / b_e follow Equations (1)-(2) restricted to P_N, with
        the youngest-copy refinement for exact duplicates (a_e skips
        copies of e itself — DESIGN.md §7)."""
        engine = N1N2Skyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        m = len(history)
        start = max(0, m - capacity)
        window = {pos + 1: history[pos] for pos in range(start, m)}
        for kappa, values in window.items():
            a_got, b_got = engine.ancestors(kappa)
            a_candidates = [
                k for k, v in window.items()
                if k < kappa and weakly_dominates(v, values)
                and tuple(v) != tuple(values)
            ]
            duplicate_successors = [
                k for k, v in window.items()
                if k > kappa and tuple(v) == tuple(values)
            ]
            b_candidates = [
                k for k, v in window.items()
                if k > kappa and weakly_dominates(v, values)
            ]
            if a_candidates:
                # The recorded ancestor may have been computed against a
                # window that has since slid; it must still be *a*
                # dominator and at least as young as any survivor.
                assert a_got == max(a_candidates), f"kappa={kappa}"
            else:
                assert a_got == 0, f"kappa={kappa}"
            if b_candidates:
                assert b_got == min(b_candidates), f"kappa={kappa}"
            else:
                assert b_got is None, f"kappa={kappa}"

    @settings(max_examples=25, deadline=None)
    @given(streams(max_len=35), st.integers(1, 8))
    def test_invariants_hold_at_every_step(self, history, capacity):
        engine = N1N2Skyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
            engine.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(streams(max_len=40), st.integers(1, 10))
    def test_rn_agrees_with_nofn_engine(self, history, capacity):
        """Both engines maintain the same non-redundant set."""
        from repro import NofNSkyline

        a = N1N2Skyline(dim=len(history[0]), capacity=capacity)
        b = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            a.append(point)
            b.append(point)
        assert a.rn_size == b.rn_size
        for n in (1, capacity):
            assert [e.kappa for e in a.query_nofn(n)] == [
                e.kappa for e in b.query(n)
            ]
