"""Bounded soak tests: long mixed workloads with full validation.

These run longer streams than the unit tests (still a few seconds
total) and validate *everything simultaneously* — engine agreement,
invariants, continuous-query tracking — the way a production deployment
would exercise the library.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ContinuousQueryManager,
    KSkybandEngine,
    LinearScanNofNSkyline,
    N1N2Skyline,
    NofNSkyline,
)
from repro.core.persistence import restore, snapshot
from repro.streams import materialize


class TestMixedSoak:
    @pytest.mark.parametrize("dist", ["independent", "anticorrelated"])
    def test_all_engines_agree_over_long_stream(self, dist):
        dim, capacity, length = 3, 60, 900
        points = materialize(dist, dim, length, seed=211)
        rng = random.Random(31)

        nofn = NofNSkyline(dim, capacity)
        linear = LinearScanNofNSkyline(dim, capacity)
        n1n2 = N1N2Skyline(dim, capacity)
        band1 = KSkybandEngine(dim, capacity, k=1)
        manager = ContinuousQueryManager(nofn)
        handles = [manager.register(n) for n in (7, 30, capacity)]

        for i, point in enumerate(points):
            manager.append(point)
            linear.append(point)
            n1n2.append(point)
            band1.append(point)
            if i % 60 == 0:
                n = rng.randint(1, capacity)
                reference = [e.kappa for e in nofn.query(n)]
                assert [e.kappa for e in linear.query(n)] == reference
                assert [e.kappa for e in n1n2.query_nofn(n)] == reference
                assert [e.kappa for e in band1.query(n)] == reference
                for handle in handles:
                    assert handle.result_kappas() == [
                        e.kappa for e in nofn.query(handle.n)
                    ]
        nofn.check_invariants()
        linear.check_invariants()
        n1n2.check_invariants()
        band1.check_invariants()

    def test_snapshot_mid_soak_then_diverge_free(self):
        dim, capacity = 2, 50
        points = materialize("anticorrelated", dim, 600, seed=223)
        engine = NofNSkyline(dim, capacity)
        clone = None
        for i, point in enumerate(points):
            engine.append(point)
            if i == 299:
                clone = restore(snapshot(engine))
            elif clone is not None:
                clone.append(point)
        assert clone is not None
        assert clone.dominance_graph_edges() == engine.dominance_graph_edges()
        for n in (1, 25, capacity):
            assert [e.kappa for e in clone.query(n)] == [
                e.kappa for e in engine.query(n)
            ]

    def test_tiny_windows_under_churn(self):
        """Degenerate window sizes shake out off-by-one expiry bugs."""
        rng = random.Random(41)
        for capacity in (1, 2, 3):
            engine = NofNSkyline(2, capacity)
            for step in range(300):
                engine.append((rng.random(), rng.random()))
                assert engine.rn_size <= capacity
                result = engine.query(capacity)
                assert 1 <= len(result) <= capacity
                assert result[-1].kappa <= engine.seen_so_far
            engine.check_invariants()

    def test_adversarial_monotone_streams(self):
        """Strictly improving and strictly worsening streams hit the
        two extreme dominance-graph shapes (all-roots vs one chain)."""
        capacity = 40
        improving = NofNSkyline(1, capacity)
        worsening = NofNSkyline(1, capacity)
        for i in range(200):
            improving.append((float(1000 - i),))  # each dominates all before
            worsening.append((float(i),))  # each dominated by all before
        assert improving.rn_size == 1  # only the newest survives
        assert worsening.rn_size == capacity  # nothing can be pruned
        assert len(worsening.query(capacity)) == 1  # chain: single skyline
        assert len(worsening.query(1)) == 1
        improving.check_invariants()
        worsening.check_invariants()

    def test_constant_stream(self):
        """An all-identical stream: youngest-copy convention throughout."""
        engine = NofNSkyline(2, 10)
        for _ in range(50):
            engine.append((0.5, 0.5))
        assert engine.rn_size == 1
        assert [e.kappa for e in engine.query(10)] == [50]
        engine.check_invariants()
