"""Tests for time-based sliding windows (paper section 6 remark)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TimeWindowSkyline
from repro.baselines.naive import naive_skyline_youngest
from repro.exceptions import InvalidWindowError


class TestConstruction:
    def test_horizon_validation(self):
        with pytest.raises(InvalidWindowError):
            TimeWindowSkyline(dim=2, horizon=0)
        with pytest.raises(InvalidWindowError):
            TimeWindowSkyline(dim=2, horizon=-1.0)

    def test_fresh_engine(self):
        engine = TimeWindowSkyline(dim=2, horizon=10.0)
        assert engine.now == 0.0
        assert engine.query_last(5.0) == []


class TestAppend:
    def test_timestamps_must_increase(self):
        engine = TimeWindowSkyline(dim=1, horizon=10.0)
        engine.append((1.0,), timestamp=5.0)
        with pytest.raises(ValueError, match="strictly increasing"):
            engine.append((1.0,), timestamp=5.0)
        with pytest.raises(ValueError, match="strictly increasing"):
            engine.append((1.0,), timestamp=4.0)

    def test_timestamps_must_be_positive(self):
        engine = TimeWindowSkyline(dim=1, horizon=10.0)
        with pytest.raises(ValueError, match="positive"):
            engine.append((1.0,), timestamp=0.0)

    def test_now_tracks_latest(self):
        engine = TimeWindowSkyline(dim=1, horizon=10.0)
        engine.append((1.0,), timestamp=3.5)
        assert engine.now == 3.5

    def test_burst_after_quiet_expires_many_at_once(self):
        engine = TimeWindowSkyline(dim=1, horizon=2.0)
        engine.append((5.0,), timestamp=1.0)
        engine.append((6.0,), timestamp=1.5)
        engine.append((7.0,), timestamp=1.8)
        outcome = engine.append((8.0,), timestamp=10.0)
        # All three earlier samples left the 2-unit horizon together.
        assert len(outcome.expired) == 3
        assert engine.rn_size == 1


class TestQueries:
    def test_duration_validation(self):
        engine = TimeWindowSkyline(dim=1, horizon=5.0)
        with pytest.raises(InvalidWindowError):
            engine.query_last(0.0)
        with pytest.raises(InvalidWindowError):
            engine.query_last(5.1)

    def test_count_query_is_rejected(self):
        engine = TimeWindowSkyline(dim=1, horizon=5.0)
        with pytest.raises(InvalidWindowError, match="query_last"):
            engine.query(3)

    def test_window_boundary_is_closed(self):
        engine = TimeWindowSkyline(dim=1, horizon=10.0)
        engine.append((1.0,), timestamp=2.0)
        engine.append((5.0,), timestamp=6.0)
        # now = 6; last 4 units = [2, 6]: the t=2 sample is included.
        assert [e.kappa for e in engine.query_last(4.0)] == [1]

    def test_skyline_covers_horizon(self):
        engine = TimeWindowSkyline(dim=2, horizon=100.0)
        engine.append((0.5, 0.5), timestamp=1.0)
        engine.append((0.2, 0.8), timestamp=2.0)
        got = {e.kappa for e in engine.skyline()}
        assert got == {1, 2}

    def test_period_longer_than_history(self):
        engine = TimeWindowSkyline(dim=1, horizon=50.0)
        engine.append((3.0,), timestamp=1.0)
        engine.append((4.0,), timestamp=2.0)
        # 40 time units dwarf the 2 units of history: behaves like
        # "everything so far".
        assert [e.kappa for e in engine.query_last(40.0)] == [1]

    def test_payloads_round_trip(self):
        engine = TimeWindowSkyline(dim=1, horizon=5.0)
        engine.append((1.0,), timestamp=1.0, payload="sensor-9")
        [element] = engine.skyline()
        assert element.payload == "sensor-9"


timestamps = st.lists(
    st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    min_size=1,
    max_size=40,
)
coord = st.integers(0, 6).map(lambda v: v / 6)


class TestTimeWindowProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        timestamps,
        st.data(),
        st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
    )
    def test_matches_oracle_at_every_step(self, gaps, data, horizon):
        engine = TimeWindowSkyline(dim=2, horizon=horizon)
        history = []  # (timestamp, point)
        t = 0.0
        for gap in gaps:
            t += gap
            point = (data.draw(coord), data.draw(coord))
            history.append((t, point))
            engine.append(point, t)
            duration = data.draw(
                st.floats(min_value=0.01, max_value=horizon, allow_nan=False)
            )
            in_window = [
                (i, p) for i, (ts, p) in enumerate(history)
                if ts >= t - duration
            ]
            expected = [
                in_window[j][0] + 1
                for j in naive_skyline_youngest([p for _, p in in_window])
            ]
            got = [e.kappa for e in engine.query_last(duration)]
            assert got == expected
            engine.check_invariants()
