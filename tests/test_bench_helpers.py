"""Tests for the benchmark harness helpers (measure/reporting/workloads)."""

from __future__ import annotations

import pytest

from repro.bench.measure import (
    PerElementCost,
    average_query_time,
    bucketed_query_times,
    feed_timed,
    time_batch,
    time_each,
)
from repro.bench.reporting import (
    format_count,
    format_rate,
    format_seconds,
    render_series,
    render_table,
)
from repro.bench.workloads import (
    DISTRIBUTIONS,
    bench_scale,
    build_n1n2,
    build_nofn,
    scaled,
    stream_points,
)
from repro.core.nofn import NofNSkyline


class TestPerElementCost:
    def test_derived_statistics(self):
        cost = PerElementCost(count=4, total_seconds=2.0, max_seconds=1.0)
        assert cost.avg_seconds == 0.5
        assert cost.throughput == 2.0

    def test_empty_measurement(self):
        cost = PerElementCost(count=0, total_seconds=0.0, max_seconds=0.0)
        assert cost.avg_seconds == 0.0
        assert cost.throughput == float("inf")


class TestFeedTimed:
    def test_counts_post_warmup_only(self):
        engine = NofNSkyline(dim=2, capacity=10)
        points = stream_points("independent", 2, 20, seed=1)
        cost = feed_timed(engine, points, warmup=5)
        assert cost.count == 15
        assert engine.seen_so_far == 20
        assert cost.total_seconds > 0
        assert cost.max_seconds >= cost.avg_seconds

    def test_per_element_callback_runs_inside_timing(self):
        engine = NofNSkyline(dim=2, capacity=10)
        seen = []
        feed_timed(
            engine,
            stream_points("independent", 2, 8, seed=1),
            warmup=3,
            per_element=seen.append,
        )
        assert seen == list(range(3, 8))


class TestQueryTiming:
    def test_average_query_time_runs_each_param(self):
        calls = []
        avg = average_query_time(calls.append, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert avg >= 0.0

    def test_average_needs_params(self):
        with pytest.raises(ValueError):
            average_query_time(lambda p: p, [])

    def test_bucketed_query_times_shape(self):
        buckets = bucketed_query_times(lambda n: n, list(range(100)), 10)
        assert len(buckets) == 10
        representatives = [rep for rep, _ in buckets]
        assert representatives == sorted(representatives)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            bucketed_query_times(lambda n: n, [1], 0)

    def test_time_batch_and_each(self):
        assert time_batch(lambda: None, repeats=3) >= 0.0
        with pytest.raises(ValueError):
            time_batch(lambda: None, repeats=0)
        assert len(time_each([lambda: None, lambda: None])) == 2


class TestReporting:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5e-6).endswith("us")
        assert format_seconds(3.2e-3).endswith("ms")
        assert format_seconds(4.0) == "4s"
        assert format_seconds(float("inf")) == "inf"

    def test_format_rate_scales(self):
        assert format_rate(2_500_000).endswith("M/s")
        assert format_rate(1_500).endswith("K/s")
        assert format_rate(12.0) == "12/s"
        assert format_rate(float("inf")) == "inf"

    def test_format_count_matches_paper_style(self):
        assert format_count(47_000) == "47K"
        assert format_count(1_300) == "1.3K"
        assert format_count(65) == "65"
        assert format_count(2_000_000) == "2M"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6  # title, rule, header, rule, 2 rows

    def test_render_series_aligns_columns(self):
        text = render_series("S", "x", [1, 2], [("y", [10, 20]), ("z", [3, 4])])
        assert "10" in text and "4" in text
        assert text.splitlines()[2].startswith("x")


class TestWorkloads:
    def test_scale_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        assert scaled(100) == 250

    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_scale_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()

    def test_scaled_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        assert scaled(100, minimum=5) == 5

    def test_build_nofn_prefills(self):
        engine, points = build_nofn("independent", 2, capacity=20)
        assert engine.seen_so_far == 20
        assert len(points) == 20

    def test_build_n1n2_prefills(self):
        engine, points = build_n1n2("independent", 2, capacity=15, prefill=30)
        assert engine.seen_so_far == 30
        assert engine.window_size == 15

    def test_distribution_roster(self):
        assert set(DISTRIBUTIONS) == {
            "correlated", "independent", "anticorrelated",
        }
