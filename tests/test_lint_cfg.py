"""Unit tests for the per-function CFG behind the dataflow lint rules.

These pin down the path-sensitivity that REPRO101 and REPRO103 rely on:
exception edges from may-raise fragments, the ``count_exceptional``
switch on both path queries, branch/loop zero-iteration edges, and the
try/finally cleanup modelling.
"""

from __future__ import annotations

import ast
import textwrap

from tools.lint.cfg import CFGNode, build_cfg


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(fn)


def _calls(name):
    """Predicate: the node's fragment contains a call to ``name``."""

    def pred(node: CFGNode) -> bool:
        if node.frag is None:
            return False
        for sub in ast.walk(node.frag):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name) and func.id == name:
                return True
            if isinstance(func, ast.Attribute) and func.attr == name:
                return True
        return False

    return pred


def _writes_attr(name):
    """Predicate: the node's fragment assigns to ``<anything>.name`` or
    ``<anything>.name[...]``."""

    def pred(node: CFGNode) -> bool:
        if not isinstance(node.frag, ast.Assign):
            return False
        for target in node.frag.targets:
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute) and target.attr == name:
                return True
        return False

    return pred


def only_node(cfg, pred):
    matches = [node.index for node in cfg.real_nodes() if pred(node)]
    assert len(matches) == 1, f"expected exactly one match, got {matches}"
    return matches[0]


class TestExceptionEdges:
    def test_call_fragment_gets_exception_edge(self):
        cfg = cfg_of(
            """
            def f(self, x):
                self.items.append(x)
                return x
            """
        )
        target = only_node(cfg, _calls("append"))
        assert cfg.raise_exit in cfg.nodes[target].exc_succ

    def test_pure_assignment_has_no_exception_edge(self):
        cfg = cfg_of(
            """
            def f(self, x):
                self.value = x
            """
        )
        target = only_node(cfg, _writes_attr("value"))
        assert cfg.nodes[target].exc_succ == []


class TestMustPassThrough:
    # The REPRO101 shape: a mutation whose version bump must dominate
    # every outgoing path, including the exceptional ones.

    def test_straight_line_is_satisfied(self):
        cfg = cfg_of(
            """
            def push(self, x):
                self.items.append(x)
                self._version += 1
            """
        )
        target = only_node(cfg, _calls("append"))

        def bumps(node: CFGNode) -> bool:
            return isinstance(node.frag, ast.AugAssign)

        assert cfg.must_pass_through(target, bumps, count_exceptional=True)

    def test_may_raise_call_before_bump_escapes_exceptionally(self):
        # append → notify() → bump: notify's exception edge reaches the
        # raise exit before the bump, so the obligation fails when
        # exceptional paths count and holds when they do not.
        cfg = cfg_of(
            """
            def push(self, x):
                self.items.append(x)
                self.notify(x)
                self._version += 1
            """
        )
        target = only_node(cfg, _calls("append"))

        def bumps(node: CFGNode) -> bool:
            return isinstance(node.frag, ast.AugAssign)

        assert not cfg.must_pass_through(target, bumps, count_exceptional=True)
        assert cfg.must_pass_through(target, bumps, count_exceptional=False)

    def test_targets_own_exception_edge_is_excluded(self):
        # If the mutation *itself* raises, it never happened — that path
        # carries no obligation even with count_exceptional=True.
        cfg = cfg_of(
            """
            def push(self, x):
                self.items.append(x)
                self._version = self._version + 1
            """
        )
        target = only_node(cfg, _calls("append"))
        bump = _writes_attr("_version")
        assert cfg.must_pass_through(target, bump, count_exceptional=True)

    def test_one_unbumped_branch_fails(self):
        cfg = cfg_of(
            """
            def push(self, x, fast):
                self.items.append(x)
                if fast:
                    return x
                self._version = self._version + 1
                return x
            """
        )
        target = only_node(cfg, _calls("append"))
        bump = _writes_attr("_version")
        assert not cfg.must_pass_through(target, bump, count_exceptional=False)

    def test_bump_on_both_branches_passes(self):
        cfg = cfg_of(
            """
            def push(self, x, fast):
                self.items.append(x)
                if fast:
                    self._version = self._version + 1
                    return x
                self._version = self._version + 2
                return x
            """
        )
        target = only_node(cfg, _calls("append"))
        bump = _writes_attr("_version")
        assert cfg.must_pass_through(target, bump, count_exceptional=False)

    def test_loop_zero_iteration_edge(self):
        # A bump only inside a for body does not dominate: the loop may
        # run zero times.
        cfg = cfg_of(
            """
            def push(self, x, batches):
                self.items.append(x)
                for batch in batches:
                    self._version = self._version + 1
                return x
            """
        )
        target = only_node(cfg, _calls("append"))
        bump = _writes_attr("_version")
        assert not cfg.must_pass_through(target, bump, count_exceptional=False)


class TestCanEscape:
    # The REPRO103 shape: from a SharedMemory creation, is there a path
    # to any exit that skips every close/unlink/ownership transfer?

    def test_straight_line_close_blocks_normal_exit(self):
        cfg = cfg_of(
            """
            def f(name):
                seg = SharedMemory(name=name, create=True, size=16)
                seg.close()
            """
        )
        start = only_node(cfg, _calls("SharedMemory"))
        assert not cfg.can_escape(start, _calls("close"), count_exceptional=False)

    def test_intervening_call_leaks_on_exception_path(self):
        cfg = cfg_of(
            """
            def f(name, payload, codec):
                seg = SharedMemory(name=name, create=True, size=16)
                encoded = codec.encode(payload)
                seg.buf[: len(encoded)] = encoded
                seg.close()
            """
        )
        start = only_node(cfg, _calls("SharedMemory"))
        assert cfg.can_escape(start, _calls("close"), count_exceptional=True)
        assert not cfg.can_escape(start, _calls("close"), count_exceptional=False)

    def test_try_finally_close_blocks_exception_path(self):
        cfg = cfg_of(
            """
            def f(name, payload, codec):
                seg = SharedMemory(name=name, create=True, size=16)
                try:
                    encoded = codec.encode(payload)
                    seg.buf[: len(encoded)] = encoded
                finally:
                    seg.close()
            """
        )
        start = only_node(cfg, _calls("SharedMemory"))
        assert not cfg.can_escape(start, _calls("close"), count_exceptional=True)

    def test_except_handler_without_cleanup_still_escapes(self):
        cfg = cfg_of(
            """
            def f(name, payload, codec):
                seg = SharedMemory(name=name, create=True, size=16)
                try:
                    encoded = codec.encode(payload)
                except ValueError:
                    return None
                seg.buf[: len(encoded)] = encoded
                seg.close()
            """
        )
        start = only_node(cfg, _calls("SharedMemory"))
        # The handler returns without closing — a satisfier-free path to
        # the normal exit exists even ignoring exceptional edges.
        assert cfg.can_escape(start, _calls("close"), count_exceptional=False)

    def test_starts_own_exception_edge_is_excluded(self):
        # If the creation call itself raises, nothing was allocated.
        cfg = cfg_of(
            """
            def f(name):
                seg = SharedMemory(name=name, create=True, size=16)
                seg.close()
            """
        )
        start = only_node(cfg, _calls("SharedMemory"))
        assert not cfg.can_escape(start, _calls("close"), count_exceptional=True)


class TestBracketedBy:
    # The REPRO102 writer shape: seq-word flip, data writes, flip back.

    def _marker(self):
        return _calls("pack_into")

    def test_properly_bracketed_write(self):
        cfg = cfg_of(
            """
            def publish(self, payload):
                SEQ.pack_into(self.control.buf, 0, 1)
                self.data[: len(payload)] = payload
                SEQ.pack_into(self.control.buf, 0, 2)
            """
        )
        target = only_node(cfg, _writes_attr("data"))
        assert cfg.bracketed_by(target, self._marker())

    def test_missing_opening_marker(self):
        cfg = cfg_of(
            """
            def publish(self, payload):
                self.data[: len(payload)] = payload
                SEQ.pack_into(self.control.buf, 0, 2)
            """
        )
        target = only_node(cfg, _writes_attr("data"))
        assert not cfg.bracketed_by(target, self._marker())

    def test_early_return_skips_closing_marker(self):
        cfg = cfg_of(
            """
            def publish(self, payload, dry_run):
                SEQ.pack_into(self.control.buf, 0, 1)
                self.data[: len(payload)] = payload
                if dry_run:
                    return 0
                SEQ.pack_into(self.control.buf, 0, 2)
                return 1
            """
        )
        target = only_node(cfg, _writes_attr("data"))
        assert not cfg.bracketed_by(target, self._marker())


class TestCompoundFragments:
    def test_if_node_carries_only_its_test(self):
        cfg = cfg_of(
            """
            def f(self, flag, x):
                if flag:
                    self.items.append(x)
            """
        )
        if_nodes = [n for n in cfg.real_nodes() if n.label == "If"]
        assert len(if_nodes) == 1
        # The test expression alone — no Call from the body leaks in.
        assert not any(
            isinstance(sub, ast.Call) for sub in ast.walk(if_nodes[0].frag)
        )

    def test_for_node_carries_only_its_iterable(self):
        cfg = cfg_of(
            """
            def f(self, rows):
                for row in iter_rows(rows):
                    self.items.append(row)
            """
        )
        for_nodes = [n for n in cfg.real_nodes() if n.label == "For"]
        assert len(for_nodes) == 1
        assert _calls("iter_rows")(for_nodes[0])
        assert not _calls("append")(for_nodes[0])
