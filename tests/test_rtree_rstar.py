"""Tests for the R*-style split policy (the paper's citation [2])."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import weakly_dominates
from repro.core.nofn import NofNSkyline
from repro.structures.mbr import MBR
from repro.structures.rtree import RTree


class TestPolicySelection:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="split"):
            RTree(2, split="linear")

    def test_policy_recorded(self):
        assert RTree(2, split="rstar").split_policy == "rstar"
        assert RTree(2).split_policy == "quadratic"


class TestOverlapArea:
    def test_disjoint_boxes(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((2, 2), (3, 3))
        assert RTree._overlap_area(a, b) == 0.0

    def test_touching_boxes_have_zero_overlap(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((1, 0), (2, 1))
        assert RTree._overlap_area(a, b) == 0.0

    def test_partial_overlap(self):
        a = MBR((0, 0), (2, 2))
        b = MBR((1, 1), (3, 3))
        assert RTree._overlap_area(a, b) == 1.0

    def test_containment(self):
        a = MBR((0, 0), (4, 4))
        b = MBR((1, 1), (2, 3))
        assert RTree._overlap_area(a, b) == 2.0


class TestRStarBehaviour:
    def test_invariants_under_heavy_churn(self):
        tree = RTree(3, max_entries=6, min_entries=2, split="rstar")
        rng = random.Random(13)
        live = {}
        kappa = 0
        for step in range(600):
            if live and rng.random() < 0.4:
                victim = rng.choice(list(live))
                tree.delete(victim)
                del live[victim]
            else:
                kappa += 1
                point = tuple(rng.random() for _ in range(3))
                tree.insert(point, kappa)
                live[kappa] = point
            if step % 30 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert sorted(e.kappa for e in tree.entries()) == sorted(live)

    def test_searches_match_quadratic_tree(self):
        rng = random.Random(17)
        quad = RTree(2, max_entries=4, min_entries=2, split="quadratic")
        rstar = RTree(2, max_entries=4, min_entries=2, split="rstar")
        points = {}
        for i in range(200):
            point = (rng.random(), rng.random())
            quad.insert(point, i + 1)
            rstar.insert(point, i + 1)
            points[i + 1] = point
        for _ in range(30):
            q = (rng.random(), rng.random())
            expect = sorted(
                k for k, p in points.items() if weakly_dominates(q, p)
            )
            assert sorted(e.kappa for e in quad.report_dominated(q)) == expect
            assert sorted(e.kappa for e in rstar.report_dominated(q)) == expect
            a = quad.max_kappa_dominator(q)
            b = rstar.max_kappa_dominator(q)
            assert (a.kappa if a else None) == (b.kappa if b else None)

    def test_engine_accepts_rstar_policy(self):
        from repro.streams import materialize

        reference = NofNSkyline(2, 50)
        rstar = NofNSkyline(2, 50, rtree_split="rstar")
        for point in materialize("anticorrelated", 2, 150, seed=19):
            reference.append(point)
            rstar.append(point)
        for n in (5, 25, 50):
            assert [e.kappa for e in rstar.query(n)] == [
                e.kappa for e in reference.query(n)
            ]
        rstar.check_invariants()


coords = st.floats(min_value=0, max_value=1, allow_nan=False, width=32)


class TestRStarProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(coords, coords, coords), max_size=60),
        st.tuples(coords, coords, coords),
    )
    def test_searches_match_brute_force(self, raw_points, q):
        tree = RTree(3, max_entries=4, min_entries=2, split="rstar")
        live = {}
        for i, point in enumerate(raw_points):
            tree.insert(point, i + 1)
            live[i + 1] = point
        got = sorted(e.kappa for e in tree.report_dominated(q))
        expect = sorted(k for k, p in live.items() if weakly_dominates(q, p))
        assert got == expect
        best = tree.max_kappa_dominator(q)
        eligible = [k for k, p in live.items() if weakly_dominates(p, q)]
        assert (best.kappa if best else None) == (
            max(eligible) if eligible else None
        )
        tree.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=60),
           st.tuples(coords, coords))
    def test_remove_dominated_keeps_invariants(self, raw_points, q):
        tree = RTree(2, max_entries=4, min_entries=2, split="rstar")
        for i, point in enumerate(raw_points):
            tree.insert(point, i + 1)
        removed = tree.remove_dominated(q)
        tree.check_invariants()
        assert len(tree) == len(raw_points) - len(removed)
