"""Tests for the NumPy-accelerated skyline and the k-skyband baselines."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import numpy_skyline, pareto_mask
from repro.baselines import naive_skyline
from repro.baselines.skyband import k_skyband, k_skyband_sorted


class TestNumpySkyline:
    def test_hand_checked_instance(self):
        points = [(1.0, 5.0), (2.0, 3.0), (4.0, 1.0), (3.0, 4.0)]
        assert numpy_skyline(points) == [0, 1, 2]

    def test_empty_input(self):
        assert numpy_skyline([]) == []
        assert pareto_mask([]).shape == (0,)

    def test_accepts_ndarray(self):
        arr = np.array([[0.1, 0.9], [0.9, 0.1], [0.5, 0.5], [0.9, 0.9]])
        assert numpy_skyline(arr) == [0, 1, 2]

    def test_mask_shape_and_dtype(self):
        mask = pareto_mask([(1.0, 1.0), (2.0, 2.0)])
        assert mask.dtype == bool
        assert mask.tolist() == [True, False]

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            pareto_mask([1.0, 2.0, 3.0])

    def test_duplicates_all_reported(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert numpy_skyline(points) == [0, 1]

    def test_large_instance_matches_naive(self):
        rng = random.Random(5)
        points = [tuple(rng.random() for _ in range(4)) for _ in range(800)]
        assert numpy_skyline(points) == naive_skyline(points)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 4).flatmap(
            lambda d: st.lists(
                st.tuples(*[st.integers(0, 8).map(lambda v: v / 8)] * d),
                max_size=60,
            )
        )
    )
    def test_matches_naive_property(self, points):
        assert numpy_skyline(points) == naive_skyline(points)


class TestKSkyband:
    POINTS = [(1.0, 5.0), (2.0, 3.0), (4.0, 1.0), (3.0, 4.0), (5.0, 5.0)]

    def test_k1_is_the_skyline(self):
        assert k_skyband(self.POINTS, 1) == naive_skyline(self.POINTS)

    def test_band_grows_with_k(self):
        band1 = set(k_skyband(self.POINTS, 1))
        band2 = set(k_skyband(self.POINTS, 2))
        band3 = set(k_skyband(self.POINTS, 3))
        assert band1 <= band2 <= band3

    def test_large_k_returns_everything(self):
        assert k_skyband(self.POINTS, len(self.POINTS)) == list(
            range(len(self.POINTS))
        )

    def test_hand_checked_second_band(self):
        # (3,4) is dominated only by (2,3): in the 2-skyband.
        # (5,5) is dominated by four points: out even at k=3.
        assert 3 in k_skyband(self.POINTS, 2)
        assert 4 not in k_skyband(self.POINTS, 3)

    @pytest.mark.parametrize("func", [k_skyband, k_skyband_sorted])
    def test_k_validation(self, func):
        with pytest.raises(ValueError, match="k must be"):
            func(self.POINTS, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)),
            max_size=40,
        ),
        st.integers(1, 5),
    )
    def test_sorted_variant_matches_oracle(self, points, k):
        assert k_skyband_sorted(points, k) == k_skyband(points, k)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=40)
    )
    def test_skyband_nesting_property(self, points):
        previous = set()
        for k in (1, 2, 3):
            band = set(k_skyband(points, k))
            assert previous <= band
            previous = band
