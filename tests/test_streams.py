"""Tests for the stream harness and snapshot sampling utilities."""

from __future__ import annotations

import pytest

from repro import NofNSkyline
from repro.exceptions import StreamExhaustedError
from repro.streams import (
    DataStream,
    feed,
    random_n1n2_pairs,
    random_n_values,
    snapshot_positions,
)


class TestDataStream:
    def test_synthetic_stream_reads_points(self):
        stream = DataStream.synthetic("independent", dim=2, count=5, seed=1)
        points = stream.take(5)
        assert len(points) == 5
        assert stream.position == 5

    def test_exhaustion_raises(self):
        stream = DataStream.synthetic("independent", dim=2, count=2, seed=1)
        stream.take(2)
        with pytest.raises(StreamExhaustedError):
            stream.next()

    def test_restart_replays_identically(self):
        stream = DataStream.synthetic("correlated", dim=3, count=10, seed=2)
        first = stream.take(10)
        stream.restart()
        assert stream.take(10) == first
        assert stream.position == 10

    def test_from_points(self):
        stream = DataStream.from_points([(1, 2), (3, 4)])
        assert stream.dim == 2
        assert stream.take(2) == [(1.0, 2.0), (3.0, 4.0)]

    def test_from_points_needs_dim_for_empty(self):
        with pytest.raises(ValueError, match="empty"):
            DataStream.from_points([])
        stream = DataStream.from_points([], dim=3)
        assert list(stream) == []

    def test_dimension_checked_on_read(self):
        stream = DataStream(lambda: iter([(1.0, 2.0, 3.0)]), dim=2)
        with pytest.raises(ValueError, match="2"):
            stream.next()

    def test_iteration_stops_at_exhaustion(self):
        stream = DataStream.synthetic("independent", dim=1, count=4, seed=3)
        assert len(list(stream)) == 4

    def test_take_validation(self):
        stream = DataStream.from_points([(1.0,)])
        with pytest.raises(ValueError):
            stream.take(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="dimension"):
            DataStream(lambda: iter([]), dim=0)


class TestFeed:
    def test_feeds_whole_stream(self):
        engine = NofNSkyline(dim=2, capacity=10)
        stream = DataStream.synthetic("independent", dim=2, count=7, seed=4)
        assert feed(engine, stream) == 7
        assert engine.seen_so_far == 7

    def test_limit_respected(self):
        engine = NofNSkyline(dim=2, capacity=10)
        stream = DataStream.synthetic("independent", dim=2, count=10, seed=4)
        assert feed(engine, stream, limit=3) == 3
        assert engine.seen_so_far == 3


class TestSnapshotPositions:
    def test_positions_within_bounds_and_sorted(self):
        positions = snapshot_positions(1000, window=100, count=50, seed=1)
        assert len(positions) == 50
        assert positions == sorted(positions)
        assert all(100 <= p <= 1000 for p in positions)

    def test_without_replacement_when_range_allows(self):
        positions = snapshot_positions(200, window=100, count=50, seed=2)
        assert len(set(positions)) == 50

    def test_with_replacement_when_count_exceeds_span(self):
        positions = snapshot_positions(105, window=100, count=20, seed=3)
        assert len(positions) == 20  # only 6 candidate slots

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            snapshot_positions(50, window=100, count=5)
        with pytest.raises(ValueError, match="count"):
            snapshot_positions(100, window=10, count=0)

    def test_deterministic(self):
        a = snapshot_positions(1000, 100, 10, seed=7)
        b = snapshot_positions(1000, 100, 10, seed=7)
        assert a == b


class TestQueryParameterSampling:
    def test_n_values_in_range(self):
        values = random_n_values(1000, 100, seed=1, minimum=10)
        assert len(values) == 100
        assert all(10 <= v <= 1000 for v in values)

    def test_n_values_validation(self):
        with pytest.raises(ValueError):
            random_n_values(10, 5, minimum=0)
        with pytest.raises(ValueError):
            random_n_values(10, 5, minimum=11)

    def test_n1n2_pairs_respect_gap(self):
        pairs = random_n1n2_pairs(1000, 100, min_gap=50, seed=2)
        assert len(pairs) == 100
        for n1, n2 in pairs:
            assert 1 <= n1 <= n2 <= 1000
            assert n2 - n1 >= 50

    def test_n1n2_validation(self):
        with pytest.raises(ValueError):
            random_n1n2_pairs(100, 5, min_gap=100)
        with pytest.raises(ValueError):
            random_n1n2_pairs(100, 5, min_gap=-1)

    def test_pairs_deterministic(self):
        assert random_n1n2_pairs(100, 10, 5, seed=3) == (
            random_n1n2_pairs(100, 10, 5, seed=3)
        )
