"""Direct unit tests for the arrival-event records and engine stats."""

from __future__ import annotations

import pytest

from repro.core.element import StreamElement
from repro.core.events import ArrivalOutcome, ExpiredRecord
from repro.core.stats import EngineStats


def element(kappa, *values):
    return StreamElement(values or (1.0,), kappa)


class TestArrivalOutcome:
    def test_defaults_describe_a_quiet_arrival(self):
        outcome = ArrivalOutcome(element=element(1), seen_so_far=1)
        assert outcome.dominated_removed == ()
        assert outcome.parent_kappa == 0
        assert outcome.expired == ()
        assert outcome.removed_kappas == frozenset()

    def test_removed_kappas_unions_both_sources(self):
        outcome = ArrivalOutcome(
            element=element(5),
            seen_so_far=5,
            dominated_removed=(element(3), element(4)),
            expired=(ExpiredRecord(element(1), children=(element(2),)),),
        )
        assert outcome.removed_kappas == frozenset({1, 3, 4})

    def test_outcome_is_frozen(self):
        outcome = ArrivalOutcome(element=element(1), seen_so_far=1)
        with pytest.raises(AttributeError):
            outcome.seen_so_far = 2

    def test_expired_record_children_are_a_tuple_snapshot(self):
        record = ExpiredRecord(element(1), children=(element(2), element(3)))
        assert isinstance(record.children, tuple)
        assert [c.kappa for c in record.children] == [2, 3]


class TestEngineStats:
    def test_fresh_stats_are_zero(self):
        stats = EngineStats()
        assert stats.rn_size_mean == 0.0
        assert stats.mean_result_size == 0.0
        assert stats.snapshot()["arrivals"] == 0

    def test_arrival_accounting(self):
        stats = EngineStats()
        stats.record_arrival(expired=1, dominated=2, rn_size=5)
        stats.record_arrival(expired=0, dominated=0, rn_size=7)
        assert stats.arrivals == 2
        assert stats.expiries == 1
        assert stats.dominated_removed == 2
        assert stats.rn_size_peak == 7
        assert stats.rn_size_mean == 6.0

    def test_query_accounting(self):
        stats = EngineStats()
        stats.record_query(3)
        stats.record_query(5)
        assert stats.queries == 2
        assert stats.mean_result_size == 4.0

    def test_snapshot_raw_round_trips_every_counter(self):
        stats = EngineStats()
        stats.record_arrival(expired=1, dominated=4, rn_size=9)
        stats.record_query(2)
        raw = stats.snapshot_raw()
        clone = EngineStats(**raw)
        assert clone.snapshot() == stats.snapshot()

    def test_snapshot_contains_derived_metrics(self):
        stats = EngineStats()
        stats.record_arrival(expired=0, dominated=0, rn_size=4)
        snap = stats.snapshot()
        assert snap["rn_size_mean"] == 4.0
        assert "rn_size_peak" in snap and "mean_result_size" in snap
