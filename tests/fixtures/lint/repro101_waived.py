"""REPRO101 waived variant: same violation, explicitly suppressed."""


class DemoWindow:
    def __init__(self):
        self._items = []
        self._version = 0

    def insert(self, item, fast):
        self._items.append(item)  # lint: skip=REPRO101
        if fast:
            return True
        self._version += 1
        return False
