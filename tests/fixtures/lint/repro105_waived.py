"""REPRO105 waived variant: the parity violations, suppressed."""


def to_snapshot(engine):
    return {
        "dim": engine.dim,
        "capacity": engine.capacity,
        "horizon": engine.horizon,  # lint: skip=REPRO105
        "records": list(engine.records),
    }


def from_snapshot(snap, factory):
    engine = factory(snap["dim"], snap["capacity"], snap["seed"])  # lint: skip=REPRO105
    for record in snap["records"]:
        engine.push(record)
    return engine
