"""REPRO104 waived variant (axis mirror): the seeded violation,
explicitly suppressed."""


class DemoAxis:
    def __init__(self):
        self._axis = []
        self._axis_kernel = None

    def insert_fast(self, value):
        self._axis.append(value)  # lint: skip=REPRO104
        return len(self._axis)
