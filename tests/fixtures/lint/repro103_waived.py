"""REPRO103 waived variant: the leaking creation, suppressed."""

from multiprocessing.shared_memory import SharedMemory


def risky_blob(name, payload, codec):
    segment = SharedMemory(name=name, create=True, size=len(payload))  # lint: skip=REPRO103
    encoded = codec.encode(payload)
    segment.buf[: len(encoded)] = encoded
    return segment


def remove_blob(name):
    segment = SharedMemory(name=name)
    segment.close()
    segment.unlink()
