"""REPRO104 seeded violation (axis mirror): a class keeping a sorted
container beside its lazily rebuilt ``*_kernel`` flat mirror mutates
the container without dropping the mirror."""


class DemoAxis:
    def __init__(self):
        self._axis = []
        self._axis_kernel = None

    def insert_fast(self, value):
        # The kernel mirror still reflects the pre-insert axis, so
        # vectorised routing will stab stale positions.
        self._axis.append(value)
        return len(self._axis)
