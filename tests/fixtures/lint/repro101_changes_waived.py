"""REPRO101 waived variant (``changes`` counter): the seeded
violations, explicitly suppressed."""


class DemoGroup:
    def __init__(self):
        self._members = {}
        self.changes = 0

    def add(self, kappa, element, quiet):
        self._members[kappa] = element  # lint: skip=REPRO101
        if quiet:
            return None
        self.changes += 1
        return element

    def drop_fast(self, kappa):
        del self._members[kappa]  # lint: skip=REPRO101
