"""REPRO104 clean variant (axis mirror): every container mutation —
inserts and ``del`` alike — drops the kernel mirror before returning."""


class DemoAxis:
    def __init__(self):
        self._axis = []
        self._axis_kernel = None

    def insert(self, value):
        self._axis.append(value)
        self._axis_kernel = None
        return len(self._axis)

    def drop(self, slot):
        del self._axis[slot]
        self._axis_kernel = None
