"""REPRO102 seeded violations: a data write landing *after* the closing
seq flip (writer side), and a reader that trusts a copied payload
without re-reading the header (reader side)."""

import struct

_SEQ = struct.Struct("<Q")
_HDR = struct.Struct("<QQ")


class DemoPublisher:
    def __init__(self, control):
        self._control = control
        self._seq = 0

    def flip(self, version, seen):
        buf = self._control.buf
        _SEQ.pack_into(buf, 0, self._seq + 1)
        _SEQ.pack_into(buf, 0, self._seq + 2)
        self._seq += 2
        # Torn: the header lands after the even word, so a reader can
        # see a stable seq over a half-written header.
        _HDR.pack_into(buf, 8, version, seen)
        return self._seq


class DemoReader:
    def __init__(self, control, slot):
        self._control = control
        self._slot = slot

    def _read_header(self):
        return _HDR.unpack_from(self._control.buf, 8)

    def read(self):
        header = self._read_header()
        data = bytes(self._slot.buf[: header[1]])
        # No header re-read after the copy: the bytes may be torn.
        return data
