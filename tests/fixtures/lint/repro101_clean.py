"""REPRO101 clean variant: the bump may come before or after the
mutation — the rule only demands it on every path through it."""


class DemoWindow:
    def __init__(self):
        self._items = []
        self._version = 0

    def insert(self, item, fast):
        self._version += 1
        self._items.append(item)
        return fast

    def remove(self, item):
        self._items.remove(item)
        self._version += 1
        return True
