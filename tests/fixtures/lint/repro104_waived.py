"""REPRO104 waived variant: both violations, suppressed."""


class DemoLeaf:
    def __init__(self):
        self.children = []
        self.kernel = None

    def recompute(self):
        self.kernel = None

    def adopt_fast(self, child):
        self.children.append(child)  # lint: skip=REPRO104
        return len(self.children)


class DemoPool:
    def __init__(self):
        self._points = [[0.0]]
        self._kappas = [0]
        self._dirty = set()
        self._blk_lower = [0.0]

    def _recompute_block(self, block):
        self._blk_lower[block] = 0.0

    def move_row(self, src, dst):
        self._points[dst] = self._points[src]  # lint: skip=REPRO104
        return dst
