"""REPRO104 seeded violations: a pointer-tree child mutation with no
kernel invalidation, and a raw SoA pooled-array write with no
block-summary maintenance."""


class DemoLeaf:
    def __init__(self):
        self.children = []
        self.kernel = None

    def recompute(self):
        self.kernel = None

    def adopt_fast(self, child):
        # Mutates the child list but leaves the cached kernel mirroring
        # the *old* children alive.
        self.children.append(child)
        return len(self.children)


class DemoPool:
    def __init__(self):
        self._points = [[0.0]]
        self._kappas = [0]
        self._dirty = set()
        self._blk_lower = [0.0]

    def _recompute_block(self, block):
        self._blk_lower[block] = 0.0

    def move_row(self, src, dst):
        # Raw pooled write: the block summaries still describe the old
        # occupant of `dst`.
        self._points[dst] = self._points[src]
        return dst
