"""REPRO105 seeded violations: one key persisted but never restored
(``horizon``), one key required by restore but never produced
(``seed``)."""


def to_snapshot(engine):
    return {
        "dim": engine.dim,
        "capacity": engine.capacity,
        "horizon": engine.horizon,
        "records": list(engine.records),
    }


def from_snapshot(snap, factory):
    engine = factory(snap["dim"], snap["capacity"], snap["seed"])
    for record in snap["records"]:
        engine.push(record)
    return engine
