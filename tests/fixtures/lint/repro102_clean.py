"""REPRO102 clean variant: odd seq word, data writes, even seq word;
reader copies, re-reads the header, and compares ``.seq``."""

import collections
import struct

_SEQ = struct.Struct("<Q")
_HDR = struct.Struct("<QQ")

Header = collections.namedtuple("Header", ["seq", "used"])


class DemoPublisher:
    def __init__(self, control):
        self._control = control
        self._seq = 0

    def flip(self, version, seen):
        buf = self._control.buf
        odd = self._seq + 1
        _SEQ.pack_into(buf, 0, odd)
        _HDR.pack_into(buf, 8, version, seen)
        self._seq = odd + 1
        _SEQ.pack_into(buf, 0, self._seq)
        return self._seq


class DemoReader:
    def __init__(self, control, slot):
        self._control = control
        self._slot = slot

    def _read_header(self):
        seq, used = _HDR.unpack_from(self._control.buf, 8)
        return Header(seq, used)

    def read(self):
        header = self._read_header()
        data = bytes(self._slot.buf[: header.used])
        confirm = self._read_header()
        if confirm.seq != header.seq:
            return None
        return data
