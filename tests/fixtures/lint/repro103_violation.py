"""REPRO103 seeded violation: a created segment can leak down the
exception edge of a call that runs before ownership is taken."""

from multiprocessing.shared_memory import SharedMemory


def risky_blob(name, payload, codec):
    segment = SharedMemory(name=name, create=True, size=len(payload))
    # codec.encode can raise; at that point nothing owns `segment`,
    # so neither close() nor unlink() will ever run.
    encoded = codec.encode(payload)
    segment.buf[: len(encoded)] = encoded
    return segment


def remove_blob(name):
    segment = SharedMemory(name=name)
    segment.close()
    segment.unlink()
