"""REPRO104 clean variants: invalidate on every mutation path — by
direct kernel drop, by recompute(), via an aliased local, or by marking
the SoA block dirty / recomputing its summary."""


class DemoLeaf:
    def __init__(self):
        self.children = []
        self.kernel = None

    def recompute(self):
        self.kernel = None

    def adopt(self, child):
        self.children.append(child)
        self.kernel = None
        return len(self.children)

    def prune(self, survivors):
        self.children = survivors
        self.recompute()


class DemoTree:
    def __init__(self):
        self.root = DemoLeaf()

    def condense(self, node):
        while node is not None:
            parent = node.parent
            if parent is not None:
                parent.children.remove(node)
                # `node = parent` aliases the two names; recompute()
                # through the alias still satisfies the obligation.
                node = parent
                node.recompute()
            else:
                node = None


class DemoPool:
    def __init__(self):
        self._points = [[0.0]]
        self._kappas = [0]
        self._dirty = set()
        self._blk_lower = [0.0]

    def _recompute_block(self, block):
        self._blk_lower[block] = 0.0

    def move_row(self, src, dst, block):
        self._points[dst] = self._points[src]
        self._dirty.add(block)
        return dst

    def rewrite_row(self, row, point, block):
        self._points[row] = point
        self._recompute_block(block)
