"""REPRO101 seeded violations (``changes`` counter): a query-group
style class whose memoised views key on ``changes`` mutates a tracked
container without bumping it — via a skipping branch and via a bare
``del`` statement."""


class DemoGroup:
    def __init__(self):
        self._members = {}
        self.changes = 0

    def add(self, kappa, element, quiet):
        self._members[kappa] = element
        if quiet:
            # Skipping the bump leaves the memoised sorted view stale.
            return None
        self.changes += 1
        return element

    def drop_fast(self, kappa):
        # ``del`` mutates the container too; no path ever bumps.
        del self._members[kappa]
