"""REPRO102 waived variant: the torn writer, explicitly suppressed."""

import struct

_SEQ = struct.Struct("<Q")
_HDR = struct.Struct("<QQ")


class DemoPublisher:
    def __init__(self, control):
        self._control = control
        self._seq = 0

    def flip(self, version, seen):
        buf = self._control.buf
        _SEQ.pack_into(buf, 0, self._seq + 1)
        _SEQ.pack_into(buf, 0, self._seq + 2)
        self._seq += 2
        _HDR.pack_into(buf, 8, version, seen)  # lint: skip=REPRO102
        return self._seq
