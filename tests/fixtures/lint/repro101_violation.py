"""REPRO101 seeded violation: a ``_version``-bearing class mutates a
tracked container on one branch without bumping the counter there."""


class DemoWindow:
    def __init__(self):
        self._items = []
        self._version = 0

    def insert(self, item, fast):
        self._items.append(item)
        if fast:
            # Early exit skips the bump: caches keyed on _version will
            # keep serving the pre-insert answer.
            return True
        self._version += 1
        return False
