"""REPRO101 clean variant (``changes`` counter): the bump covers every
path through each mutation, ``del`` statements included."""


class DemoGroup:
    def __init__(self):
        self._members = {}
        self.changes = 0

    def add(self, kappa, element):
        self.changes += 1
        self._members[kappa] = element
        return element

    def remove(self, kappa):
        self.changes += 1
        del self._members[kappa]
