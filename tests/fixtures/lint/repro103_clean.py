"""REPRO103 clean variants: ownership taken before anything can raise
(stored on self with a close(), returned immediately, or released in an
exception handler), plus the module-level unlink janitor."""

from multiprocessing.shared_memory import SharedMemory


class SegmentOwner:
    def __init__(self, name, size):
        self._segment = SharedMemory(name=name, create=True, size=size)

    def close(self):
        self._segment.close()


def make_blob(name, payload):
    segment = SharedMemory(name=name, create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
    except Exception:
        segment.close()
        raise
    return segment


def remove_blob(name):
    segment = SharedMemory(name=name)
    segment.close()
    segment.unlink()
