"""REPRO105 clean variant: every persisted key is restored; optional
keys are read with ``.get`` (backward-compatible, never flagged)."""


def to_snapshot(engine):
    return {
        "dim": engine.dim,
        "capacity": engine.capacity,
        "horizon": engine.horizon,
        "records": list(engine.records),
    }


def from_snapshot(snap, factory):
    engine = factory(snap["dim"], snap["capacity"])
    engine.horizon = snap["horizon"]
    engine.legacy = snap.get("legacy_mode", False)
    for record in snap["records"]:
        engine.push(record)
    return engine
