"""Unit tests for the ordered label set (Figure 6 wiring)."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import EmptyStructureError, KeyNotFoundError
from repro.structures.labelset import LabelSet


class TestAppend:
    def test_append_and_lookup(self):
        labels = LabelSet()
        labels.append(1, "a")
        labels.append(5, "b")
        assert labels.payload(1) == "a"
        assert labels.payload(5) == "b"
        assert len(labels) == 2

    def test_append_must_be_increasing(self):
        labels = LabelSet()
        labels.append(5, None)
        with pytest.raises(ValueError, match="increasing order"):
            labels.append(5, None)
        with pytest.raises(ValueError, match="increasing order"):
            labels.append(3, None)

    def test_reappending_current_label_rejected(self):
        labels = LabelSet()
        labels.append(1, None)
        with pytest.raises(ValueError):
            labels.append(1, None)

    def test_float_labels_supported(self):
        labels = LabelSet()
        labels.append(0.5, "t0")
        labels.append(1.25, "t1")
        assert list(labels) == [0.5, 1.25]


class TestRemove:
    def test_remove_returns_payload(self):
        labels = LabelSet()
        labels.append(1, "a")
        assert labels.remove(1) == "a"
        assert 1 not in labels
        assert len(labels) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            LabelSet().remove(9)

    def test_remove_head_updates_oldest(self):
        labels = LabelSet()
        for k in (1, 2, 3):
            labels.append(k, k)
        labels.remove(1)
        assert labels.oldest() == (2, 2)

    def test_remove_tail_allows_no_smaller_reappend(self):
        labels = LabelSet()
        labels.append(1, None)
        labels.append(2, None)
        labels.remove(2)
        # Monotonicity is against all labels ever seen via the current
        # tail; after removing the tail, appending above the new tail
        # is allowed.
        labels.append(3, None)
        assert list(labels) == [1, 3]

    def test_remove_middle_keeps_order(self):
        labels = LabelSet()
        for k in range(1, 6):
            labels.append(k, None)
        labels.remove(3)
        assert list(labels) == [1, 2, 4, 5]
        labels.check_invariants()


class TestEnds:
    def test_oldest_and_youngest(self):
        labels = LabelSet()
        labels.append(2, "a")
        labels.append(7, "b")
        assert labels.oldest() == (2, "a")
        assert labels.youngest() == (7, "b")

    def test_ends_empty_raise(self):
        with pytest.raises(EmptyStructureError):
            LabelSet().oldest()
        with pytest.raises(EmptyStructureError):
            LabelSet().youngest()

    def test_get_with_default(self):
        labels = LabelSet()
        labels.append(1, "x")
        assert labels.get(1) == "x"
        assert labels.get(2) is None
        assert labels.get(2, "fallback") == "fallback"


class TestIteration:
    def test_items_in_order(self):
        labels = LabelSet()
        for k in (1, 4, 9):
            labels.append(k, k * k)
        assert list(labels.items()) == [(1, 1), (4, 16), (9, 81)]

    def test_random_churn_keeps_invariants(self):
        labels = LabelSet()
        rng = random.Random(2)
        next_label = 1
        present = []
        for _ in range(500):
            if present and rng.random() < 0.5:
                victim = present.pop(rng.randrange(len(present)))
                labels.remove(victim)
            else:
                labels.append(next_label, None)
                present.append(next_label)
                next_label += rng.randint(1, 3)
            labels.check_invariants()
            assert list(labels) == sorted(present)
