"""Smoke tests: every shipped example runs to completion.

Each example ends with internal assertions about its own output, so a
clean exit is a meaningful check, not just an import test.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3, "the library ships at least three examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
