"""Tests for the struct-of-arrays R-tree (``structures/rtree_soa.py``).

Four concerns:

* *layout resolution* — the ``rtree_layout`` knob, its env override,
  and the ``make_rtree`` factory stamping requested vs effective
  layout;
* *parity* — the SoA index answers every dominance search identically
  to the pointer tree and to brute force over random interleavings of
  insert/delete/remove_dominated;
* *seeded corruption* — one deliberate tamper per invariant id,
  mirroring ``tests/test_sanitizer.py``: the pooled arrays must be as
  auditable as the pointer nodes, under the same names;
* *engine equivalence* (hypothesis) — n-of-N engines built on either
  layout return identical ``query``/``query_scan`` answers and
  identical snapshot round-trips at every step of an interleaved
  ``append``/``append_many``/expiry history.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NofNSkyline
from repro.accel.rtree_kernels import HAVE_NUMPY
from repro.core.dominance import weakly_dominates
from repro.core.persistence import loads, dumps
from repro.exceptions import (
    DimensionMismatchError,
    DuplicateKeyError,
    StructureCorruptionError,
)
from repro.structures.rtree import RTree
from repro.structures.rtree_soa import (
    RTREE_LAYOUTS,
    LAYOUT_ENV,
    SoARTree,
    make_rtree,
    resolve_rtree_layout,
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")


def fed_tree(count=60, dim=2, seed=3, **kwargs):
    tree = SoARTree(dim, **kwargs)
    rng = random.Random(seed)
    for kappa in range(1, count + 1):
        tree.insert(tuple(rng.random() for _ in range(dim)), kappa)
    return tree


def invariant_of(excinfo):
    report = excinfo.value.report
    assert report is not None, "corruption error must carry a report"
    return report.invariant


# ----------------------------------------------------------------------
# Layout resolution and factory
# ----------------------------------------------------------------------


class TestLayoutResolution:
    def test_layouts_tuple(self):
        assert RTREE_LAYOUTS == ("auto", "soa", "pointer")

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            resolve_rtree_layout("vectorised")

    def test_pointer_always_resolves(self):
        assert resolve_rtree_layout("pointer") == "pointer"

    @needs_numpy
    def test_auto_prefers_soa(self, monkeypatch):
        monkeypatch.delenv(LAYOUT_ENV, raising=False)
        assert resolve_rtree_layout("auto") == "soa"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(LAYOUT_ENV, "pointer")
        assert resolve_rtree_layout("auto") == "pointer"

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(LAYOUT_ENV, "nonsense")
        with pytest.raises(ValueError):
            resolve_rtree_layout("auto")

    def test_env_does_not_override_explicit(self, monkeypatch):
        monkeypatch.setenv(LAYOUT_ENV, "pointer")
        resolved = resolve_rtree_layout("soa")
        assert resolved == ("soa" if HAVE_NUMPY else "pointer")

    @needs_numpy
    def test_factory_stamps_policies(self, monkeypatch):
        monkeypatch.delenv(LAYOUT_ENV, raising=False)
        index = make_rtree(2, layout="auto")
        assert isinstance(index, SoARTree)
        assert index.layout == "soa"
        assert index.layout_policy == "auto"
        pointer = make_rtree(2, layout="pointer")
        assert isinstance(pointer, RTree)
        assert pointer.layout == "pointer"
        assert pointer.layout_policy == "pointer"

    @needs_numpy
    def test_factory_forwards_tuning(self):
        index = make_rtree(3, max_entries=16, min_entries=4, layout="soa")
        assert index.dim == 3
        assert index.max_entries == 16


# ----------------------------------------------------------------------
# Construction / basic mechanics
# ----------------------------------------------------------------------


@needs_numpy
class TestSoAMechanics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SoARTree(0)
        with pytest.raises(ValueError):
            SoARTree(2, max_entries=3)
        with pytest.raises(ValueError):
            SoARTree(2, max_entries=12, min_entries=7)

    def test_duplicate_kappa_rejected(self):
        tree = SoARTree(2)
        tree.insert((0.5, 0.5), 1)
        with pytest.raises(DuplicateKeyError):
            tree.insert((0.2, 0.2), 1)

    def test_wrong_dimension_rejected(self):
        tree = SoARTree(2)
        with pytest.raises(DimensionMismatchError):
            tree.insert((0.1, 0.2, 0.3), 1)

    def test_insert_delete_roundtrip(self):
        tree = fed_tree(count=100)
        assert len(tree) == 100
        for kappa in range(1, 101):
            assert kappa in tree
            tree.delete(kappa)
        assert len(tree) == 0
        tree.check_invariants()

    def test_entry_points_stay_tuples(self):
        # Engine duplicate checks compare ``entry.point != values``
        # against tuples; an ndarray row here would silently break them.
        tree = fed_tree(count=5)
        for entry in tree.entries():
            assert type(entry.point) is tuple

    def test_growth_past_initial_blocks(self):
        tree = fed_tree(count=2000, block_capacity=32)
        assert len(tree) == 2000
        tree.check_invariants()


# ----------------------------------------------------------------------
# Parity with the pointer tree and brute force
# ----------------------------------------------------------------------


@needs_numpy
class TestSoAParity:
    @pytest.mark.parametrize("dim", [2, 3, 5])
    def test_random_interleaving_matches_pointer_tree(self, dim):
        rng = random.Random(100 + dim)
        soa = SoARTree(dim, block_capacity=32)
        pointer = RTree(dim)
        live = {}
        kappa = 0
        for _ in range(1200):
            op = rng.random()
            q = tuple(rng.random() for _ in range(dim))
            if op < 0.55 or not live:
                kappa += 1
                soa.insert(q, kappa)
                pointer.insert(q, kappa)
                live[kappa] = q
            elif op < 0.70:
                victim = rng.choice(list(live))
                soa.delete(victim)
                pointer.delete(victim)
                del live[victim]
            elif op < 0.80:
                # The pointer tree reports in DFS order (no ordering
                # contract); the SoA index happens to sort by kappa.
                got = [e.kappa for e in soa.remove_dominated(q)]
                want = sorted(
                    e.kappa for e in pointer.remove_dominated(q)
                )
                assert got == want
                for k in got:
                    del live[k]
            elif op < 0.90:
                got = [e.kappa for e in soa.report_dominated(q)]
                want = sorted(
                    e.kappa for e in pointer.report_dominated(q)
                )
                brute = sorted(
                    k for k, p in live.items() if weakly_dominates(q, p)
                )
                assert got == want == brute
            else:
                cutoff = rng.choice([None, kappa // 2 + 1])
                got = soa.max_kappa_dominator(q, cutoff)
                want = pointer.max_kappa_dominator(q, cutoff)
                assert (got is None) == (want is None)
                if got is not None:
                    assert got.kappa == want.kappa
            soa.check_invariants()
        pointer.check_invariants()

    def test_top_kappa_dominators_matches_pointer(self):
        rng = random.Random(9)
        soa = fed_tree(count=200, dim=3, seed=9)
        pointer = RTree(3)
        for entry in soa.entries():
            pointer.insert(entry.point, entry.kappa)
        for _ in range(50):
            q = tuple(rng.random() for _ in range(3))
            for k in (1, 3, 10):
                got = [e.kappa for e in soa.top_kappa_dominators(q, k)]
                want = [e.kappa for e in pointer.top_kappa_dominators(q, k)]
                assert got == want


# ----------------------------------------------------------------------
# Seeded corruption: one tamper per invariant id
# ----------------------------------------------------------------------


@needs_numpy
class TestSoACorruption:
    def _live_block(self, tree):
        return next(
            b for b in range(len(tree._blk_len)) if tree._blk_len[b]
        )

    def test_point_matrix_tamper_is_kernel_cache(self):
        tree = fed_tree()
        b = self._live_block(tree)
        tree._points[b * tree.block_capacity][0] += 0.125
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert invariant_of(excinfo) == "rtree-kernel-cache"

    def test_kappa_matrix_tamper_is_kernel_cache(self):
        tree = fed_tree()
        b = self._live_block(tree)
        tree._kappas[b * tree.block_capacity] += 1000
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert invariant_of(excinfo) == "rtree-kernel-cache"

    def test_summary_box_tamper_is_mbr(self):
        tree = fed_tree()
        b = self._live_block(tree)
        # Raising the lower corner breaks tight AND conservative
        # summaries, so the tamper is caught whether or not the block
        # happens to be dirty.
        tree._blk_lower[b] += 0.25
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert invariant_of(excinfo) == "rtree-mbr"

    def test_max_kappa_tamper_is_augmentation(self):
        tree = fed_tree()
        b = self._live_block(tree)
        tree._blk_maxk[b] = -5
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert invariant_of(excinfo) == "rtree-augmentation"

    def test_dropped_index_entry_is_count(self):
        tree = fed_tree()
        del tree._entries[next(iter(tree._entries))]
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert invariant_of(excinfo) == "rtree-count"

    def test_row_link_tamper_is_links(self):
        tree = fed_tree()
        entry = next(iter(tree._entries.values()))
        entry.row += 1 if entry.row % tree.block_capacity == 0 else -1
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert invariant_of(excinfo) == "rtree-links"

    def test_overfull_block_length_is_fanout(self):
        tree = fed_tree(count=100, block_capacity=32)
        b1, b2 = [
            b for b in range(len(tree._blk_len)) if tree._blk_len[b]
        ][:2]
        # Move the surplus to a later block so the total row count
        # stays honest: the overfull length itself must be what fires,
        # not the count mismatch it would otherwise cause.
        surplus = tree.block_capacity + 1 - int(tree._blk_len[b1])
        tree._blk_len[b1] = tree.block_capacity + 1
        tree._blk_len[b2] -= surplus
        with pytest.raises(StructureCorruptionError) as excinfo:
            tree.check_invariants()
        assert invariant_of(excinfo) == "rtree-fanout"

    def test_engine_sanitizer_sees_soa_tampering(self):
        # The full n-of-N verifier must surface SoA corruption exactly
        # like pointer corruption (same invariant id, same exception).
        engine = NofNSkyline(2, 12, rtree_layout="soa")
        rng = random.Random(4)
        for _ in range(40):
            engine.append((rng.random(), rng.random()))
        tree = engine._rtree
        tree._kappas[self._live_block(tree) * tree.block_capacity] += 99
        with pytest.raises(StructureCorruptionError) as excinfo:
            engine.check_invariants()
        assert invariant_of(excinfo) == "rtree-kernel-cache"


# ----------------------------------------------------------------------
# Engine equivalence across layouts (hypothesis)
# ----------------------------------------------------------------------

coord = st.integers(0, 7).map(lambda v: v / 7)


def histories(max_dim=3, max_batches=14):
    """Interleaved single/batched arrivals: each step is one point
    (``append``) or a small batch (``append_many``)."""
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.lists(
                st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=5
            ),
            min_size=1,
            max_size=max_batches,
        )
    )


@needs_numpy
class TestEngineLayoutEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(histories(), st.integers(1, 8))
    def test_layouts_agree_at_every_step(self, batches, capacity):
        dim = len(batches[0][0])
        soa = NofNSkyline(dim=dim, capacity=capacity, rtree_layout="soa")
        pointer = NofNSkyline(
            dim=dim, capacity=capacity, rtree_layout="pointer"
        )
        for step, batch in enumerate(batches):
            if len(batch) == 1 and step % 2 == 0:
                soa.append(batch[0])
                pointer.append(batch[0])
            else:
                soa.append_many(batch)
                pointer.append_many(batch)
            for n in (1, max(1, capacity // 2), capacity):
                got = [e.kappa for e in soa.query(n)]
                assert got == [e.kappa for e in pointer.query(n)]
                assert got == [e.kappa for e in soa.query_scan(n)]
                assert got == [e.kappa for e in pointer.query_scan(n)]
            restored_soa = loads(dumps(soa))
            restored_pointer = loads(dumps(pointer))
            assert restored_soa.rtree_layout == "soa"
            assert restored_pointer.rtree_layout == "pointer"
            for n in (1, capacity):
                want = [e.kappa for e in soa.query(n)]
                assert [e.kappa for e in restored_soa.query(n)] == want
                assert [e.kappa for e in restored_pointer.query(n)] == want

    @settings(max_examples=15, deadline=None)
    @given(histories(max_dim=2, max_batches=10), st.integers(1, 6))
    def test_layouts_agree_under_full_sanitize(self, batches, capacity):
        dim = len(batches[0][0])
        soa = NofNSkyline(
            dim=dim, capacity=capacity, rtree_layout="soa", sanitize="full"
        )
        pointer = NofNSkyline(
            dim=dim, capacity=capacity, rtree_layout="pointer",
            sanitize="full",
        )
        for batch in batches:
            soa.append_many(batch)
            pointer.append_many(batch)
            assert [e.kappa for e in soa.query(capacity)] == [
                e.kappa for e in pointer.query(capacity)
            ]
