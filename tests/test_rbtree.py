"""Unit and property tests for the red-black tree substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DuplicateKeyError, EmptyStructureError, KeyNotFoundError
from repro.structures.rbtree import NIL, RedBlackTree


class TestBasics:
    def test_empty_tree(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert not tree
        assert tree.root is NIL
        assert 5 not in tree

    def test_insert_and_find(self):
        tree = RedBlackTree()
        tree.insert(2, "two")
        tree.insert(1, "one")
        tree.insert(3, "three")
        assert tree.find(2).value == "two"
        assert tree.find(99).is_nil()
        assert 1 in tree and 99 not in tree
        assert len(tree) == 3

    def test_duplicate_insert_rejected(self):
        tree = RedBlackTree()
        tree.insert(1, "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, "b")

    def test_items_in_sorted_order(self):
        tree = RedBlackTree()
        for key in [5, 3, 8, 1, 4, 7, 9, 2, 6]:
            tree.insert(key, key * 10)
        assert list(tree.keys()) == list(range(1, 10))
        assert list(tree.items())[0] == (1, 10)

    def test_min_and_max(self):
        tree = RedBlackTree()
        for key in [5, 1, 9]:
            tree.insert(key, None)
        assert tree.min_node().key == 1
        assert tree.max_node().key == 9

    def test_min_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            RedBlackTree().min_node()
        with pytest.raises(EmptyStructureError):
            RedBlackTree().max_node()

    def test_successor_walk(self):
        tree = RedBlackTree()
        for key in [4, 2, 6, 1, 3, 5, 7]:
            tree.insert(key, None)
        node = tree.min_node()
        seen = []
        while not node.is_nil():
            seen.append(node.key)
            node = tree.successor(node)
        assert seen == [1, 2, 3, 4, 5, 6, 7]


class TestDeletion:
    def test_delete_returns_value(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        assert tree.delete(1) == "one"
        assert len(tree) == 0

    def test_delete_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            RedBlackTree().delete(1)

    def test_delete_leaf_internal_and_root(self):
        tree = RedBlackTree()
        for key in range(1, 8):
            tree.insert(key, None)
        tree.check_invariants()
        tree.delete(7)  # leaf-ish
        tree.delete(4)  # likely internal / root area
        tree.delete(1)
        tree.check_invariants()
        assert list(tree.keys()) == [2, 3, 5, 6]

    def test_delete_node_with_two_children_preserves_handles(self):
        tree = RedBlackTree()
        nodes = {k: tree.insert(k, f"v{k}") for k in [10, 5, 15, 3, 7, 12, 20]}
        # Deleting 10 splices its successor (12); the 12 handle must
        # still reference a live node with its own key/value.
        tree.delete_node(nodes[10])
        assert tree.find(12) is nodes[12]
        assert nodes[12].value == "v12"
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        tree = RedBlackTree()
        rng = random.Random(5)
        present = set()
        for step in range(800):
            key = rng.randrange(100)
            if key in present:
                tree.delete(key)
                present.discard(key)
            else:
                tree.insert(key, step)
                present.add(key)
            if step % 50 == 0:
                tree.check_invariants()
        assert sorted(present) == list(tree.keys())
        tree.check_invariants()


class TestAugmentation:
    @staticmethod
    def _size_augment(node):
        node.aggregate = 1
        if not node.left.is_nil():
            node.aggregate += node.left.aggregate
        if not node.right.is_nil():
            node.aggregate += node.right.aggregate

    def test_subtree_size_augmentation_tracks_membership(self):
        tree = RedBlackTree(augment=self._size_augment)
        rng = random.Random(9)
        present = set()
        for step in range(400):
            key = rng.randrange(60)
            if key in present:
                tree.delete(key)
                present.discard(key)
            else:
                tree.insert(key, None)
                present.add(key)
            if present:
                assert tree.root.aggregate == len(present)
            self._assert_sizes(tree.root)

    def _assert_sizes(self, node):
        if node.is_nil():
            return 0
        left = self._assert_sizes(node.left)
        right = self._assert_sizes(node.right)
        assert node.aggregate == left + right + 1
        return node.aggregate


keys = st.lists(st.integers(-200, 200), max_size=150)


class TestTreeProperties:
    @settings(max_examples=50, deadline=None)
    @given(keys, keys)
    def test_matches_dict_model(self, inserts, deletes):
        tree = RedBlackTree()
        model = {}
        for key in inserts:
            if key not in model:
                tree.insert(key, -key)
                model[key] = -key
        for key in deletes:
            if key in model:
                assert tree.delete(key) == model.pop(key)
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 10_000), min_size=1, unique=True))
    def test_sorted_iteration(self, values):
        tree = RedBlackTree()
        for v in values:
            tree.insert(v, None)
        assert list(tree.keys()) == sorted(values)
        tree.check_invariants()
