"""Batched ingestion (``append_many``) parity with per-element ``append``.

The batched fast path skips index maintenance for batch members that a
younger same-batch element weakly dominates, so these tests pin the
contract that makes the shortcut safe: against a per-element twin fed
the same stream, every engine must produce identical query results,
identical per-arrival :class:`ArrivalOutcome` sequences, identical
stats counters, and identical continuous-query trigger sequences —
for any batch split, including batches larger than the window.

``dominated_removed`` order is explicitly unspecified (it follows the
R-tree traversal), so outcomes are compared with that field as a set.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BatchOutcome,
    ContinuousQueryManager,
    KSkybandEngine,
    N1N2Skyline,
    NofNSkyline,
    TimeWindowSkyline,
)
from repro.core.nofn_linear import LinearScanNofNSkyline
from repro.exceptions import DimensionMismatchError, StructureCorruptionError

# Coarse coordinates provoke ties, duplicates and dominance on purpose.
coord = st.integers(0, 7).map(lambda v: v / 7)


def streams(max_dim=4, max_len=60, min_size=1):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple),
            min_size=min_size,
            max_size=max_len,
        )
    )


def split_batches(history, seed):
    """A reproducible random partition of ``history`` into batches."""
    rng = random.Random(seed)
    batches = []
    i = 0
    while i < len(history):
        size = rng.randint(1, max(1, len(history) - i))
        batches.append(history[i:i + size])
        i += size
    return batches


def outcome_key(outcome):
    """An outcome as comparable data, ``dominated_removed`` as a set."""
    return (
        outcome.element.kappa,
        tuple(outcome.element.values),
        outcome.seen_so_far,
        outcome.parent_kappa,
        frozenset(e.kappa for e in outcome.dominated_removed),
        tuple(
            (rec.element.kappa, frozenset(c.kappa for c in rec.children))
            for rec in outcome.expired
        ),
    )


def counter_key(stats):
    """The deterministic stats counters (timings excluded)."""
    raw = stats.snapshot_raw()
    for timing in ("batch_seconds_total", "batch_seconds_max"):
        raw.pop(timing)
    return raw


def batch_free_counter_key(stats):
    """Counters that must match a per-element twin (no batch counters)."""
    raw = counter_key(stats)
    for field in ("batches", "batch_elements", "prefilter_dropped",
                  "batch_size_peak"):
        raw.pop(field)
    return raw


class TestNofNParity:
    @settings(max_examples=60, deadline=None)
    @given(streams(), st.integers(1, 20), st.integers(0, 10**6))
    def test_matches_per_element_twin(self, history, capacity, seed):
        dim = len(history[0])
        elem = NofNSkyline(dim=dim, capacity=capacity)
        elem_outcomes = [elem.append(p) for p in history]

        batched = NofNSkyline(dim=dim, capacity=capacity)
        batch_outcomes = []
        for batch in split_batches(history, seed):
            result = batched.append_many(batch)
            assert isinstance(result, BatchOutcome)
            assert result.batch_size == len(batch)
            batch_outcomes.extend(result.outcomes)

        assert [outcome_key(o) for o in batch_outcomes] == [
            outcome_key(o) for o in elem_outcomes
        ]
        for n in range(1, capacity + 1):
            assert [e.kappa for e in batched.query(n)] == [
                e.kappa for e in elem.query(n)
            ], f"n={n}"
        assert sorted(batched.dominance_graph_edges()) == sorted(
            elem.dominance_graph_edges()
        )
        assert batch_free_counter_key(batched.stats) == batch_free_counter_key(
            elem.stats
        )
        batched.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(streams(max_dim=3, max_len=80), st.integers(1, 4))
    def test_one_batch_larger_than_window(self, history, capacity):
        """A single batch spanning many window turnovers (B >> N) forces
        in-chunk expiry of both indexed and pending members."""
        dim = len(history[0])
        elem = NofNSkyline(dim=dim, capacity=capacity)
        for p in history:
            elem.append(p)
        batched = NofNSkyline(dim=dim, capacity=capacity)
        batched.append_many(history)
        for n in range(1, capacity + 1):
            assert [e.kappa for e in batched.query(n)] == [
                e.kappa for e in elem.query(n)
            ]
        batched.check_invariants()

    def test_linear_scan_engine_inherits_batch_path(self):
        rng = random.Random(11)
        points = [(rng.random(), rng.random()) for _ in range(60)]
        elem = LinearScanNofNSkyline(dim=2, capacity=20)
        for p in points:
            elem.append(p)
        batched = LinearScanNofNSkyline(dim=2, capacity=20)
        batched.append_many(points[:25])
        batched.append_many(points[25:])
        for n in (1, 10, 20):
            assert [e.kappa for e in batched.query(n)] == [
                e.kappa for e in elem.query(n)
            ]


class TestTimeWindowParity:
    @settings(max_examples=50, deadline=None)
    @given(
        streams(max_dim=3, max_len=50),
        st.lists(st.sampled_from([0.1, 0.4, 1.0, 6.0]), min_size=50,
                 max_size=50),
        st.integers(0, 10**6),
    )
    def test_matches_per_element_twin(self, history, gaps, seed):
        """Bursty timestamps (including horizon-sized jumps) exercise
        expiry of pending batch members mid-chunk."""
        dim = len(history[0])
        stamps = []
        now = 0.0
        for gap in gaps[:len(history)]:
            now += gap
            stamps.append(now)

        elem = TimeWindowSkyline(dim=dim, horizon=2.0)
        elem_outcomes = [
            elem.append(p, t) for p, t in zip(history, stamps)
        ]

        batched = TimeWindowSkyline(dim=dim, horizon=2.0)
        batch_outcomes = []
        i = 0
        for batch in split_batches(history, seed):
            result = batched.append_many(batch, stamps[i:i + len(batch)])
            batch_outcomes.extend(result.outcomes)
            i += len(batch)

        assert [outcome_key(o) for o in batch_outcomes] == [
            outcome_key(o) for o in elem_outcomes
        ]
        assert batched.now == elem.now
        assert [e.kappa for e in batched.skyline()] == [
            e.kappa for e in elem.skyline()
        ]
        for tau in (0.1, 0.5, 1.0, 2.0):
            assert [e.kappa for e in batched.query_last(tau)] == [
                e.kappa for e in elem.query_last(tau)
            ], f"tau={tau}"
        assert batch_free_counter_key(batched.stats) == batch_free_counter_key(
            elem.stats
        )

    def test_bad_timestamp_leaves_engine_untouched(self):
        engine = TimeWindowSkyline(dim=2, horizon=5.0)
        engine.append((0.5, 0.5), 1.0)
        with pytest.raises(ValueError):
            engine.append_many([(0.1, 0.1), (0.2, 0.2)], [2.0, 1.5])
        with pytest.raises(ValueError):
            engine.append_many([(0.1, 0.1)], [0.5])  # before previous
        with pytest.raises(ValueError):
            engine.append_many([(0.1, 0.1)], [2.0, 3.0])  # length mismatch
        assert engine.seen_so_far == 1
        assert [e.kappa for e in engine.skyline()] == [1]


class TestN1N2Parity:
    @settings(max_examples=50, deadline=None)
    @given(streams(max_dim=3, max_len=50), st.integers(1, 12),
           st.integers(0, 10**6))
    def test_matches_per_element_twin(self, history, capacity, seed):
        dim = len(history[0])
        elem = N1N2Skyline(dim=dim, capacity=capacity)
        for p in history:
            elem.append(p)
        batched = N1N2Skyline(dim=dim, capacity=capacity)
        for batch in split_batches(history, seed):
            returned = batched.append_many(batch)
            assert [e.values for e in returned] == [tuple(p) for p in batch]

        assert [e.kappa for e in batched.window_elements()] == [
            e.kappa for e in elem.window_elements()
        ]
        for element in elem.window_elements():
            assert batched.ancestors(element.kappa) == elem.ancestors(
                element.kappa
            )
        for n1 in range(1, capacity + 1):
            for n2 in range(n1, capacity + 1):
                assert [e.kappa for e in batched.query(n1, n2)] == [
                    e.kappa for e in elem.query(n1, n2)
                ], f"(n1,n2)=({n1},{n2})"
        assert batch_free_counter_key(batched.stats) == batch_free_counter_key(
            elem.stats
        )
        batched.check_invariants()


class TestKSkybandParity:
    @settings(max_examples=50, deadline=None)
    @given(streams(max_dim=3, max_len=50), st.integers(1, 10),
           st.integers(1, 4), st.integers(0, 10**6))
    def test_matches_per_element_twin(self, history, capacity, k, seed):
        dim = len(history[0])
        elem = KSkybandEngine(dim=dim, capacity=capacity, k=k)
        for p in history:
            elem.append(p)
        batched = KSkybandEngine(dim=dim, capacity=capacity, k=k)
        for batch in split_batches(history, seed):
            batched.append_many(batch)

        assert [e.kappa for e in batched.skyband()] == [
            e.kappa for e in elem.skyband()
        ]
        for n in range(1, capacity + 1):
            assert [e.kappa for e in batched.query(n)] == [
                e.kappa for e in elem.query(n)
            ], f"n={n}"
        assert batch_free_counter_key(batched.stats) == batch_free_counter_key(
            elem.stats
        )
        batched.check_invariants()


class TestContinuousTriggerParity:
    @settings(max_examples=40, deadline=None)
    @given(streams(max_dim=3, max_len=40), st.integers(2, 15),
           st.integers(0, 10**6))
    def test_trigger_sequences_match(self, history, capacity, seed):
        """Every registered query must see the same result set AND the
        same cumulative change count (= same trigger sequence) after
        each batch as its per-element twin sees at the same position."""
        dim = len(history[0])
        ns = sorted({1, capacity, max(1, capacity // 2)})

        elem_manager = ContinuousQueryManager(
            NofNSkyline(dim=dim, capacity=capacity)
        )
        elem_handles = [elem_manager.register(n) for n in ns]
        batch_manager = ContinuousQueryManager(
            NofNSkyline(dim=dim, capacity=capacity)
        )
        batch_handles = [batch_manager.register(n) for n in ns]

        for batch in split_batches(history, seed):
            for p in batch:
                elem_manager.append(p)
            batch_manager.append_many(batch)
            for eh, bh in zip(elem_handles, batch_handles):
                assert bh.result_kappas() == eh.result_kappas()
                assert bh.changes == eh.changes

    def test_registration_mid_stream_sees_engine_state(self):
        """A manager built over an engine already fed through
        append_many must keep answering correctly afterwards."""
        rng = random.Random(7)
        points = [(rng.random(), rng.random()) for _ in range(40)]
        engine = NofNSkyline(dim=2, capacity=15)
        engine.append_many(points[:25])
        manager = ContinuousQueryManager(engine)
        handle = manager.register(10)
        reference = NofNSkyline(dim=2, capacity=15)
        for p in points[:25]:
            reference.append(p)
        for p in points[25:]:
            manager.append_many([p])
            reference.append(p)
            assert handle.result_kappas() == [
                e.kappa for e in reference.query(10)
            ]


class TestBatchOutcomeSurface:
    def test_empty_batch_is_a_no_op(self):
        engine = NofNSkyline(dim=2, capacity=5)
        engine.append((0.5, 0.5))
        result = engine.append_many([])
        assert isinstance(result, BatchOutcome)
        assert len(result) == 0
        assert list(result) == []
        assert result.batch_size == 0
        assert result.prefilter_dropped == 0
        assert engine.seen_so_far == 1

    def test_aggregates_and_iteration(self):
        engine = NofNSkyline(dim=2, capacity=2)
        engine.append((0.9, 0.1))
        result = engine.append_many([(0.8, 0.2), (0.7, 0.15), (0.1, 0.9)])
        assert result.batch_size == 3
        assert result.seen_so_far == 4
        assert [o.element.kappa for o in result] == [2, 3, 4]
        # (0.8, 0.2) is dominated in-batch by the younger (0.7, 0.15).
        assert result.prefilter_dropped == 1
        assert result.dominated_total >= 1
        # (0.9, 0.1) is incomparable to the rest and falls out of the
        # two-element window during the batch.
        assert result.expired_total >= 1

    def test_payloads_attach_to_elements(self):
        engine = NofNSkyline(dim=1, capacity=4)
        result = engine.append_many(
            [(0.3,), (0.1,)], payloads=["a", {"b": 2}]
        )
        assert [o.element.payload for o in result] == ["a", {"b": 2}]

    def test_validation_is_all_or_nothing(self):
        engine = NofNSkyline(dim=2, capacity=5)
        engine.append((0.5, 0.5))
        with pytest.raises(DimensionMismatchError):
            engine.append_many([(0.1, 0.1), (0.2, 0.2, 0.2)])
        with pytest.raises(ValueError):
            engine.append_many([(0.1, 0.1)], payloads=["x", "y"])
        assert engine.seen_so_far == 1
        assert [e.kappa for e in engine.skyline()] == [1]


class TestBatchStats:
    def test_counters_accumulate(self):
        engine = NofNSkyline(dim=2, capacity=10)
        engine.append_many([(0.9, 0.9), (0.1, 0.1)])  # first point doomed
        engine.append_many([(0.5, 0.6)])
        stats = engine.stats
        assert stats.batches == 2
        assert stats.batch_elements == 3
        assert stats.batch_size_peak == 2
        assert stats.prefilter_dropped == 1
        assert stats.batch_size_mean == pytest.approx(1.5)
        assert stats.prefilter_kill_rate == pytest.approx(1 / 3)
        assert stats.batch_seconds_total >= 0.0
        assert stats.batch_seconds_max <= stats.batch_seconds_total

    def test_snapshot_exposes_batch_fields(self):
        engine = NofNSkyline(dim=2, capacity=10)
        engine.append_many([(0.4, 0.4)])
        snap = engine.stats.snapshot()
        for key in ("batches", "batch_size_mean", "prefilter_kill_rate",
                    "batch_seconds_mean", "batch_seconds_max"):
            assert key in snap
        raw = engine.stats.snapshot_raw()
        for key in ("batches", "batch_elements", "prefilter_dropped",
                    "batch_size_peak", "batch_seconds_total",
                    "batch_seconds_max"):
            assert key in raw


class TestRootExpiryCheck:
    def test_corrupted_root_raises_not_asserts(self):
        """The oldest-element-is-a-root safety check must survive
        ``python -O`` — a corrupted parent link raises a catchable
        :class:`StructureCorruptionError` instead of an ``assert``."""
        engine = NofNSkyline(dim=2, capacity=2)
        engine.append((0.2, 0.8))
        engine.append((0.8, 0.2))  # incomparable: both stay roots
        engine._records[1].parent_kappa = 99  # simulate corruption
        with pytest.raises(StructureCorruptionError):
            engine.append((0.9, 0.9))  # forces expiry of kappa 1
