"""Property tests: Algorithm 2 tracks fresh stabbing queries exactly.

The trigger-based continuous result must equal ``engine.query(n)``
after *every* arrival, for several simultaneously registered window
sizes — the defining correctness statement of Proposition 1.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ContinuousQueryManager, NofNSkyline

coord = st.integers(0, 6).map(lambda v: v / 6)


def streams(max_dim=3, max_len=50):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


class TestContinuousEqualsFreshQuery:
    @settings(max_examples=40, deadline=None)
    @given(streams(), st.integers(1, 12))
    def test_all_window_sizes_tracked(self, history, capacity):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        manager = ContinuousQueryManager(engine)
        handles = [manager.register(n) for n in range(1, capacity + 1)]
        for point in history:
            manager.append(point)
            for handle in handles:
                assert handle.result_kappas() == [
                    e.kappa for e in engine.query(handle.n)
                ], f"n={handle.n} diverged"

    @settings(max_examples=30, deadline=None)
    @given(streams(max_len=40), st.integers(2, 10), st.integers(0, 30))
    def test_late_registration_converges(self, history, capacity, split):
        """A query registered mid-stream behaves as if present from the
        start (its result is a pure function of the window)."""
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        manager = ContinuousQueryManager(engine)
        split = min(split, len(history))
        for point in history[:split]:
            engine_outcome = engine.append(point)
            manager.process(engine_outcome)
        handle = manager.register(max(1, capacity // 2))
        for point in history[split:]:
            manager.append(point)
            assert handle.result_kappas() == [
                e.kappa for e in engine.query(handle.n)
            ]

    @settings(max_examples=30, deadline=None)
    @given(streams(max_len=40), st.integers(1, 10))
    def test_change_counter_is_delta_sum(self, history, capacity):
        """``changes`` accumulates exactly the symmetric differences of
        consecutive results (the paper's delta)."""
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        manager = ContinuousQueryManager(engine)
        n = max(1, capacity // 2)
        handle = manager.register(n)
        previous: set = set()
        expected_changes = 0
        for point in history:
            manager.append(point)
            current = set(handle.result_kappas())
            expected_changes += len(current ^ previous)
            previous = current
        assert handle.changes == expected_changes
