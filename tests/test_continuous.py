"""Behavioural tests for continuous n-of-N queries (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro import ContinuousQueryManager, NofNSkyline
from repro.exceptions import InvalidWindowError, QueryNotRegisteredError


def make_manager(capacity=6, dim=2):
    engine = NofNSkyline(dim=dim, capacity=capacity)
    return engine, ContinuousQueryManager(engine)


class TestRegistration:
    def test_register_validates_n(self):
        _, manager = make_manager(capacity=6)
        with pytest.raises(InvalidWindowError):
            manager.register(0)
        with pytest.raises(InvalidWindowError):
            manager.register(7)

    def test_register_on_empty_engine(self):
        _, manager = make_manager()
        handle = manager.register(3)
        assert handle.result() == []
        assert len(handle) == 0

    def test_register_mid_stream_seeds_from_query(self):
        engine, manager = make_manager(capacity=4)
        for point in [(0.5, 0.5), (0.2, 0.8), (0.8, 0.2)]:
            engine.append(point)
        handle = manager.register(3)
        assert handle.result_kappas() == [e.kappa for e in engine.query(3)]
        assert handle.changes == 0  # seeding does not count as churn

    def test_unregister_stops_updates(self):
        _, manager = make_manager()
        handle = manager.register(2)
        manager.unregister(handle)
        manager.append((0.1, 0.1))
        assert handle.result() == []  # never saw the arrival

    def test_unregister_twice_raises(self):
        _, manager = make_manager()
        handle = manager.register(2)
        manager.unregister(handle)
        with pytest.raises(QueryNotRegisteredError):
            manager.unregister(handle)

    def test_manager_iteration_and_len(self):
        _, manager = make_manager()
        h1, h2 = manager.register(2), manager.register(3)
        assert len(manager) == 2
        assert {h.query_id for h in manager} == {h1.query_id, h2.query_id}


class TestIncrementalMaintenance:
    def test_newcomer_joins_when_undominated(self):
        _, manager = make_manager(capacity=4)
        handle = manager.register(2)
        manager.append((0.5, 0.5))
        assert handle.result_kappas() == [1]

    def test_newcomer_dominates_and_replaces(self):
        _, manager = make_manager(capacity=4)
        handle = manager.register(4)
        manager.append((0.5, 0.5))
        manager.append((0.1, 0.1))
        assert handle.result_kappas() == [2]
        assert handle.changes == 3  # +1, -1, +2

    def test_dominated_newcomer_stays_out(self):
        _, manager = make_manager(capacity=4)
        handle = manager.register(4)
        manager.append((0.1, 0.1))
        manager.append((0.9, 0.9))
        assert handle.result_kappas() == [1]

    def test_expiry_promotes_children(self):
        _, manager = make_manager(capacity=8)
        handle = manager.register(2)  # only the last two arrivals
        manager.append((0.1, 0.1))  # kappa 1 dominates both followers
        manager.append((0.3, 0.5))  # kappa 2, child of 1
        manager.append((0.5, 0.3))  # kappa 3, child of 1
        # Window of 2 = {2, 3}: kappa 1 just slid out of the n-window
        # and both children are promoted.
        assert handle.result_kappas() == [2, 3]

    def test_cascading_promotion(self):
        _, manager = make_manager(capacity=10)
        handle = manager.register(1)  # the most recent element only
        manager.append((0.1, 0.1))
        manager.append((0.2, 0.2))
        manager.append((0.3, 0.3))
        # n = 1: each arrival instantly replaces the previous result.
        assert handle.result_kappas() == [3]
        assert handle.changes == 5  # +1 | -1 +2 | -2 +3

    def test_multiple_queries_update_independently(self):
        engine, manager = make_manager(capacity=6)
        short = manager.register(2)
        long = manager.register(6)
        for point in [(0.4, 0.4), (0.6, 0.2), (0.2, 0.6), (0.5, 0.5)]:
            manager.append(point)
        assert short.result_kappas() == [e.kappa for e in engine.query(2)]
        assert long.result_kappas() == [e.kappa for e in engine.query(6)]

    def test_contains_protocol(self):
        _, manager = make_manager()
        handle = manager.register(3)
        manager.append((0.5, 0.5))
        assert 1 in handle and 2 not in handle


class TestProcessDirectly:
    def test_external_engine_driving(self):
        """Applications may drive the engine and hand outcomes over."""
        engine, manager = make_manager(capacity=4)
        handle = manager.register(3)
        outcome = engine.append((0.5, 0.5))
        manager.process(outcome)
        assert handle.result_kappas() == [1]

    def test_payloads_visible_in_results(self):
        _, manager = make_manager()
        handle = manager.register(2)
        manager.append((0.3, 0.3), payload={"id": "abc"})
        [element] = handle.result()
        assert element.payload == {"id": "abc"}
