"""Unit and property tests for the stabbing-query interval tree."""

from __future__ import annotations

import math
import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidIntervalError
from repro.structures.interval_tree import Interval, IntervalTree


class TestInterval:
    def test_half_open_membership(self):
        interval = Interval(2.0, 5.0, "x")
        assert not interval.contains(2.0)  # open at the low end
        assert interval.contains(2.0001)
        assert interval.contains(5.0)  # closed at the high end
        assert not interval.contains(5.0001)

    def test_degenerate_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(3.0, 3.0, None)
        with pytest.raises(InvalidIntervalError):
            Interval(4.0, 3.0, None)

    def test_infinite_high_allowed(self):
        interval = Interval(0.0, math.inf, "live")
        assert interval.contains(1e12)

    def test_repr(self):
        assert "(1.0, 2.0]" in repr(Interval(1.0, 2.0, "p"))


class TestStabbing:
    def test_empty_tree_stabs_nothing(self):
        assert IntervalTree().stab(1.0) == []

    def test_paper_example_encoding(self):
        """Example 3 of the paper: intervals (0,3], (0,4], (3,7],
        (4,5], (4,6]; stabbing with M-n+1 = 2 returns c and e."""
        tree = IntervalTree()
        tree.insert(0, 3, "c")
        tree.insert(0, 4, "e")
        tree.insert(3, 7, "h")
        tree.insert(4, 5, "f")
        tree.insert(4, 6, "g")
        assert sorted(tree.stab(2)) == ["c", "e"]
        # n = 3 -> stab 5: f (4,5], g (4,6] and h (3,7] are all stabbed.
        assert sorted(tree.stab(5)) == ["f", "g", "h"]
        # n = 7 -> stab 1: only the roots.
        assert sorted(tree.stab(1)) == ["c", "e"]

    def test_duplicate_endpoints_coexist(self):
        tree = IntervalTree()
        a = tree.insert(1, 5, "a")
        b = tree.insert(1, 5, "b")
        assert sorted(tree.stab(3)) == ["a", "b"]
        tree.remove(a)
        assert tree.stab(3) == ["b"]
        assert b.interval.data == "b"

    def test_stab_intervals_returns_objects(self):
        tree = IntervalTree()
        tree.insert(0, 2, "x")
        [interval] = tree.stab_intervals(1)
        assert isinstance(interval, Interval)
        assert interval.high == 2

    def test_infinite_intervals_always_stabbed_above_low(self):
        tree = IntervalTree()
        tree.insert(10, math.inf, "live")
        assert tree.stab(11) == ["live"]
        assert tree.stab(10) == []


class TestUpdates:
    def test_remove_by_handle(self):
        tree = IntervalTree()
        h = tree.insert(0, 10, "x")
        tree.insert(5, 15, "y")
        tree.remove(h)
        assert tree.stab(7) == ["y"]
        assert len(tree) == 1

    def test_replace_rewrites_endpoints_keeps_payload(self):
        tree = IntervalTree()
        h = tree.insert(4, 9, "child")
        h2 = tree.replace(h, 0, 9)
        assert tree.stab(2) == ["child"]
        assert h2.interval.data == "child"
        assert len(tree) == 1

    def test_len_and_iteration(self):
        tree = IntervalTree()
        tree.insert(0, 1, "a")
        tree.insert(0, 2, "b")
        assert len(tree) == 2 and bool(tree)
        assert [i.data for i in tree.intervals()] == ["a", "b"]

    def test_many_updates_keep_invariants(self):
        tree = IntervalTree()
        rng = random.Random(3)
        handles = []
        for step in range(600):
            if handles and rng.random() < 0.45:
                handles.pop(rng.randrange(len(handles)))
                # removal via replace half the time exercises both paths
                continue
            lo = rng.randint(0, 50)
            hi = lo + rng.randint(1, 50)
            handles.append(tree.insert(lo, hi, step))
        # The tree only grew here; now remove all and re-check.
        tree.check_invariants()


class TestVersioning:
    def test_insert_and_remove_each_bump(self):
        tree = IntervalTree()
        v0 = tree.version
        h = tree.insert(0, 5, "a")
        assert tree.version == v0 + 1
        tree.insert(1, 6, "b")
        assert tree.version == v0 + 2
        tree.remove(h)
        assert tree.version == v0 + 3

    def test_replace_bumps_twice(self):
        tree = IntervalTree()
        h = tree.insert(4, 9, "child")
        v = tree.version
        tree.replace(h, 0, 9)
        assert tree.version == v + 2

    def test_reads_do_not_bump(self):
        tree = IntervalTree()
        tree.insert(0, 5, "a")
        v = tree.version
        tree.stab(3)
        tree.stab_intervals(3)
        list(tree.intervals())
        len(tree)
        tree.check_invariants()
        assert tree.version == v


class TestIterativeStab:
    def test_stab_survives_tight_recursion_limit(self):
        """Pins the stab walk as iterative: a per-node recursion over a
        tree this deep would blow a recursion limit set just above the
        current frame depth."""
        tree = IntervalTree()
        for i in range(4096):
            tree.insert(i, i + 0.5, i)

        # Tree height, measured iteratively via the internals.
        from repro.structures.rbtree import NIL

        depth = 0
        stack = [(tree._tree.root, 1)]
        while stack:
            node, d = stack.pop()
            if node is NIL:
                continue
            depth = max(depth, d)
            stack.append((node.left, d + 1))
            stack.append((node.right, d + 1))
        assert depth >= 12  # recursion would need at least this many frames

        frames = 0
        frame = sys._getframe()
        while frame is not None:
            frames += 1
            frame = frame.f_back
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(frames + 10)
            hits = tree.stab(1000.25)
            objects = tree.stab_intervals(1000.25)
        finally:
            sys.setrecursionlimit(limit)
        assert hits == [1000]
        assert [i.data for i in objects] == [1000]


intervals_strategy = st.lists(
    st.tuples(st.integers(0, 60), st.integers(1, 40)), max_size=80
)


class TestStabbingProperties:
    @settings(max_examples=60, deadline=None)
    @given(intervals_strategy, st.lists(st.integers(0, 100), max_size=10),
           st.integers(0, 100))
    def test_matches_linear_scan(self, spans, removals, stab_at):
        tree = IntervalTree()
        live = {}
        handles = {}
        for i, (lo, width) in enumerate(spans):
            live[i] = (lo, lo + width)
            handles[i] = tree.insert(lo, lo + width, i)
        for r in removals:
            if r in handles:
                tree.remove(handles.pop(r))
                del live[r]
        got = sorted(tree.stab(stab_at))
        expected = sorted(
            i for i, (lo, hi) in live.items() if lo < stab_at <= hi
        )
        assert got == expected
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(intervals_strategy)
    def test_insert_remove_all_leaves_empty(self, spans):
        tree = IntervalTree()
        handles = [tree.insert(lo, lo + w, i) for i, (lo, w) in enumerate(spans)]
        random.Random(1).shuffle(handles)
        for h in handles:
            tree.remove(h)
            tree.check_invariants()
        assert len(tree) == 0
        assert tree.stab(5) == []
