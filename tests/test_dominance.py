"""Unit tests for the dominance predicates."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dominance import (
    dominance_count,
    dominates,
    incomparable,
    weakly_dominates,
)


class TestWeaklyDominates:
    def test_strictly_smaller_everywhere(self):
        assert weakly_dominates((1.0, 2.0), (3.0, 4.0))

    def test_equal_points_weakly_dominate_each_other(self):
        assert weakly_dominates((1.0, 2.0), (1.0, 2.0))

    def test_tie_on_one_axis(self):
        assert weakly_dominates((1.0, 2.0), (1.0, 5.0))

    def test_worse_on_one_axis_fails(self):
        assert not weakly_dominates((1.0, 6.0), (2.0, 5.0))

    def test_single_dimension(self):
        assert weakly_dominates((3.0,), (3.0,))
        assert not weakly_dominates((4.0,), (3.0,))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            weakly_dominates((1.0,), (1.0, 2.0))


class TestDominates:
    def test_strict_requires_improvement_somewhere(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_not_antisymmetric_violation(self):
        assert dominates((0.0, 0.0), (1.0, 1.0))
        assert not dominates((1.0, 1.0), (0.0, 0.0))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            dominates((1.0, 2.0, 3.0), (1.0, 2.0))


class TestIncomparable:
    def test_trade_off_points(self):
        assert incomparable((1.0, 5.0), (5.0, 1.0))

    def test_dominated_pair_is_comparable(self):
        assert not incomparable((1.0, 1.0), (2.0, 2.0))

    def test_equal_points_are_comparable(self):
        # Weak dominance holds both ways for equal points.
        assert not incomparable((2.0, 2.0), (2.0, 2.0))


class TestDominanceCount:
    def test_counts_strict_dominators_only(self):
        others = [(0.0, 0.0), (1.0, 1.0), (2.0, 0.5), (1.0, 2.0)]
        assert dominance_count((1.0, 1.0), others) == 1

    def test_empty_others(self):
        assert dominance_count((1.0,), []) == 0


points = st.lists(
    st.floats(min_value=0, max_value=1, allow_nan=False, width=32),
    min_size=3,
    max_size=3,
).map(tuple)


class TestDominanceProperties:
    @given(points, points)
    def test_strict_implies_weak(self, x, y):
        if dominates(x, y):
            assert weakly_dominates(x, y)

    @given(points, points)
    def test_strict_is_asymmetric(self, x, y):
        assert not (dominates(x, y) and dominates(y, x))

    @given(points, points, points)
    def test_weak_is_transitive(self, x, y, z):
        if weakly_dominates(x, y) and weakly_dominates(y, z):
            assert weakly_dominates(x, z)

    @given(points)
    def test_weak_is_reflexive(self, x):
        assert weakly_dominates(x, x)

    @given(points, points)
    def test_trichotomy_of_predicates(self, x, y):
        # Exactly one of: x weakly dominates y, y strictly dominates x,
        # or the two are incomparable... unless equal, where only the
        # first applies both ways.
        if incomparable(x, y):
            assert not weakly_dominates(x, y)
            assert not weakly_dominates(y, x)
        else:
            assert weakly_dominates(x, y) or weakly_dominates(y, x)
