"""Shared helpers and oracles for the test suite.

Most engine tests validate against brute-force reference computations:

* :func:`window_skyline_kappas` — the expected n-of-N result, computed
  by scanning the raw history with the quadratic oracle;
* :func:`slice_skyline_kappas` — the expected (n1,n2)-of-N result;
* :func:`reference_rn_kappas` — the expected non-redundant set ``R_N``,
  both directly from the definition and via the paper's Theorem 2
  mapping into (d+1)-dimensional space.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import pytest

from repro.baselines.naive import naive_skyline, naive_skyline_youngest
from repro.core.dominance import weakly_dominates

Point = Tuple[float, ...]


def window_skyline_kappas(history: Sequence[Point], n: int) -> List[int]:
    """Expected n-of-N result (1-based kappas, ascending).

    Uses the engines' youngest-copy duplicate convention.
    """
    m = len(history)
    window = history[max(0, m - n):]
    offset = m - len(window)
    return [offset + 1 + i for i in naive_skyline_youngest(window)]


def slice_skyline_kappas(
    history: Sequence[Point], n1: int, n2: int
) -> List[int]:
    """Expected (n1,n2)-of-N result (1-based kappas, ascending)."""
    m = len(history)
    hi = m - n1 + 1  # kappa of the n1-th most recent element
    if hi < 1:
        return []
    lo = max(0, m - n2)  # 0-based slice start
    window = history[lo:hi]
    return [lo + 1 + i for i in naive_skyline_youngest(window)]


def reference_rn_kappas(history: Sequence[Point], capacity: int) -> List[int]:
    """Expected ``R_N`` from the definition: in-window elements not
    weakly dominated by any younger in-window element."""
    m = len(history)
    start = max(0, m - capacity)
    window = list(enumerate(history))[start:]
    result = []
    for pos, point in window:
        younger_dominates = any(
            weakly_dominates(other, point)
            for later_pos, other in window
            if later_pos > pos
        )
        if not younger_dominates:
            result.append(pos + 1)
    return result


def reference_rn_via_mapping(history: Sequence[Point], capacity: int) -> List[int]:
    """Expected ``R_N`` via the Theorem 2 proof mapping.

    Map each window element ``e`` to ``(x_1..x_d, M - kappa(e))``; the
    skyline of the mapped set (weak dominance / youngest-copy rules) is
    exactly ``R_N``.
    """
    m = len(history)
    start = max(0, m - capacity)
    window = list(enumerate(history))[start:]
    mapped = [tuple(point) + (float(m - (pos + 1)),) for pos, point in window]
    winners = naive_skyline_youngest(mapped)
    return [window[i][0] + 1 for i in winners]


def random_points(
    rng: random.Random, dim: int, count: int, grid: int = 0
) -> List[Point]:
    """Random test points; ``grid > 0`` snaps coordinates to a lattice,
    deliberately provoking ties and duplicates."""
    points = []
    for _ in range(count):
        if grid:
            point = tuple(rng.randrange(grid) / grid for _ in range(dim))
        else:
            point = tuple(rng.random() for _ in range(dim))
        points.append(point)
    return points


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)
