"""The paper's running examples, reproduced exactly.

Two hand-constructed 2-d streams realise the dominance patterns of the
paper's figures:

* ``FIGURE2_STREAM`` — section 2.3's stream (Figure 2): skylines
  ``S_6 = {a, c}`` and ``S_4 = {c, g}``, becoming ``{c, h}`` and
  ``{e, h}`` once ``h`` arrives.
* ``FIGURE5_STREAM`` — Example 2/3's stream (Figure 5): after all of
  ``a..h`` arrive with ``N = 7``, the non-redundant set is
  ``{c, e, f, g, h}`` and the dominance graph encodes to the intervals
  ``(0,3], (0,4], (3,7], (4,5], (4,6]``; Example 4 then runs the
  continuous query of Algorithm 2 over the same stream with ``N = 5``,
  ``n = 4``.
"""

from __future__ import annotations

import pytest

from repro import ContinuousQueryManager, NofNSkyline

# Arrival order a, b, c, e, f, g (, h); kappas 1..7.
FIGURE2_STREAM = {
    "a": (1.0, 9.0),
    "b": (6.0, 3.0),
    "c": (5.0, 2.0),
    "e": (6.0, 4.0),
    "f": (3.0, 11.0),
    "g": (2.0, 10.0),
    "h": (2.0, 8.0),
}

FIGURE5_STREAM = {
    "a": (6.0, 6.0),
    "b": (5.0, 5.0),
    "c": (2.0, 2.0),
    "e": (1.0, 4.0),
    "f": (3.0, 4.5),
    "g": (2.0, 5.0),
    "h": (4.0, 3.0),
}

NAMES = ["a", "b", "c", "e", "f", "g", "h"]
KAPPA = {name: i + 1 for i, name in enumerate(NAMES)}


def names_of(elements):
    by_kappa = {v: k for k, v in KAPPA.items()}
    return [by_kappa[e.kappa] for e in elements]


class TestFigure2Walkthrough:
    """Section 2.3: S_n is not a subset of S_N, and both evolve."""

    def test_skylines_before_h(self):
        engine = NofNSkyline(dim=2, capacity=6)
        for name in NAMES[:6]:
            engine.append(FIGURE2_STREAM[name])
        assert names_of(engine.query(6)) == ["a", "c"]
        assert names_of(engine.query(4)) == ["c", "g"]

    def test_skylines_after_h(self):
        engine = NofNSkyline(dim=2, capacity=6)
        for name in NAMES:
            engine.append(FIGURE2_STREAM[name])
        assert names_of(engine.query(6)) == ["c", "h"]
        assert names_of(engine.query(4)) == ["e", "h"]

    def test_s_n_is_not_subset_of_s_big_n(self):
        """The paper's key observation motivating n-of-N machinery."""
        engine = NofNSkyline(dim=2, capacity=6)
        for name in NAMES[:6]:
            engine.append(FIGURE2_STREAM[name])
        s6 = set(names_of(engine.query(6)))
        s4 = set(names_of(engine.query(4)))
        assert not s4 <= s6  # g is in S_4 but not in S_6


class TestFigure5DominanceGraph:
    """Examples 2 and 3: R_N, the critical edges, and the encoding."""

    @pytest.fixture
    def engine(self):
        engine = NofNSkyline(dim=2, capacity=7)
        for name in NAMES:
            engine.append(FIGURE5_STREAM[name])
        return engine

    def test_redundant_elements_pruned(self, engine):
        # a and b are dominated by the younger c: gone from R_N.
        assert names_of(engine.non_redundant()) == ["c", "e", "f", "g", "h"]
        assert engine.rn_size == 5

    def test_critical_dominance_edges(self, engine):
        # Figure 5(b): c and e are roots; e -> f, e -> g, c -> h.
        assert engine.critical_parent(KAPPA["c"]) is None
        assert engine.critical_parent(KAPPA["e"]) is None
        assert engine.critical_parent(KAPPA["f"]).kappa == KAPPA["e"]
        assert engine.critical_parent(KAPPA["g"]).kappa == KAPPA["e"]
        assert engine.critical_parent(KAPPA["h"]).kappa == KAPPA["c"]

    def test_children_links(self, engine):
        assert names_of(engine.children_of(KAPPA["e"])) == ["f", "g"]
        assert names_of(engine.children_of(KAPPA["c"])) == ["h"]
        assert engine.children_of(KAPPA["h"]) == []

    def test_interval_encoding(self, engine):
        """Example 3's interval list: (0,3], (0,4], (3,7], (4,5], (4,6]."""
        edges = engine.dominance_graph_edges()
        assert edges == [
            (0, 3), (0, 4), (3, 7), (4, 5), (4, 6),
        ]

    def test_example3_query(self, engine):
        # n = 6 -> stab point M - n + 1 = 2 -> skyline {c, e}.
        assert names_of(engine.query(6)) == ["c", "e"]

    def test_full_window_skyline(self, engine):
        # n = 7 includes a's and b's slots but both are redundant;
        # roots c and e are the skyline.
        assert names_of(engine.query(7)) == ["c", "e"]


class TestExample4Continuous:
    """Algorithm 2's walkthrough: N = 5, n = 4 over the Figure 5 stream."""

    def test_trigger_based_evolution(self):
        engine = NofNSkyline(dim=2, capacity=5)
        manager = ContinuousQueryManager(engine)
        handle = manager.register(4)

        for name in NAMES[:5]:  # a, b, c, e, f
            manager.append(FIGURE5_STREAM[name])
        assert names_of(handle.result()) == ["c", "e"]

        manager.append(FIGURE5_STREAM["g"])
        assert names_of(handle.result()) == ["c", "e"]  # unchanged

        manager.append(FIGURE5_STREAM["h"])
        # kappa(c) = 3 < 7 - 4 + 1: c expires from the n-window and h
        # joins -> {e, h}, exactly as the paper narrates.
        assert names_of(handle.result()) == ["e", "h"]

    def test_oldest_rn_element_need_not_expire(self):
        """Section 3.3's remark: the oldest element of R_N (c here, for
        N = 6) is *not* expired when the next element arrives."""
        engine = NofNSkyline(dim=2, capacity=6)
        for name in NAMES:  # 7 arrivals, window of 6
            engine.append(FIGURE5_STREAM[name])
        # a (kappa 1) left the window; c (kappa 3) is still in R_N.
        assert KAPPA["c"] in [e.kappa for e in engine.non_redundant()]
