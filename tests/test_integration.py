"""End-to-end integration tests across modules.

These exercise the flows a downstream user actually runs: engines fed
from the synthetic generators, mixed ad-hoc + continuous query loads,
both engines side by side over the same stream, and consistency between
the engines and every baseline algorithm.
"""

from __future__ import annotations

import pytest

from repro import (
    ContinuousQueryManager,
    N1N2Skyline,
    NofNSkyline,
    TimeWindowSkyline,
)
from repro.baselines import bnl_skyline, klp_skyline, naive_skyline, sfs_skyline
from repro.streams import DataStream, feed, materialize, random_n_values


class TestEngineAgainstBaselinesOnBenchmarkData:
    @pytest.mark.parametrize("dist", ["correlated", "independent", "anticorrelated"])
    @pytest.mark.parametrize("dim", [2, 4])
    def test_window_skyline_matches_klp(self, dist, dim):
        capacity = 150
        points = materialize(dist, dim, 2 * capacity, seed=11)
        engine = NofNSkyline(dim, capacity)
        for point in points:
            engine.append(point)
        window = points[-capacity:]
        # Generators can emit exact duplicates after clamping, where the
        # engine keeps only the youngest copy while KLP (strict
        # dominance) keeps all copies — so compare the value sets.
        expected_values = {window[i] for i in klp_skyline(window)}
        got_values = {e.values for e in engine.skyline()}
        assert got_values == expected_values

    def test_nofn_queries_match_all_baselines(self):
        points = materialize("independent", 3, 300, seed=13)
        engine = NofNSkyline(3, 200)
        for point in points:
            engine.append(point)
        for n in random_n_values(200, 10, seed=14):
            window = points[-n:] if n <= len(points) else points
            expected = sorted(
                len(points) - len(window) + 1 + i for i in naive_skyline(window)
            )
            assert [e.kappa for e in engine.query(n)] == expected
            assert sorted(i for i in klp_skyline(window)) == (
                sorted(i for i in bnl_skyline(window))
            ) == sorted(i for i in sfs_skyline(window))


class TestEnginesSideBySide:
    def test_nofn_and_n1n2_agree_over_stream(self):
        points = materialize("anticorrelated", 2, 400, seed=17)
        nofn = NofNSkyline(2, 100)
        n1n2 = N1N2Skyline(2, 100)
        for i, point in enumerate(points):
            nofn.append(point)
            n1n2.append(point)
            if i % 40 == 0:
                for n in (10, 50, 100):
                    assert [e.kappa for e in nofn.query(n)] == [
                        e.kappa for e in n1n2.query_nofn(n)
                    ]

    def test_time_window_agrees_with_count_window_on_unit_gaps(self):
        """With timestamps = positions, a trailing period of n - 0.5
        units covers exactly the most recent n arrivals (the time
        window is closed at both ends, so a full n units would include
        the (n+1)-th most recent sample too)."""
        points = materialize("independent", 2, 150, seed=19)
        count_engine = NofNSkyline(2, 50)
        time_engine = TimeWindowSkyline(2, horizon=50.0)
        for i, point in enumerate(points):
            count_engine.append(point)
            time_engine.append(point, timestamp=float(i + 1))
        for n in (1, 10, 50):
            assert [e.kappa for e in count_engine.query(n)] == [
                e.kappa for e in time_engine.query_last(n - 0.5)
            ]


class TestMixedWorkload:
    def test_continuous_plus_adhoc_over_generator_stream(self):
        stream = DataStream.synthetic("anticorrelated", 3, 500, seed=23)
        engine = NofNSkyline(3, 120)
        manager = ContinuousQueryManager(engine)
        handles = [manager.register(n) for n in (12, 60, 120)]
        for i, point in enumerate(stream):
            manager.append(point)
            if i % 25 == 0:
                for handle in handles:
                    assert handle.result_kappas() == [
                        e.kappa for e in engine.query(handle.n)
                    ]
        engine.check_invariants()
        assert engine.seen_so_far == 500

    def test_feed_helper_with_all_engines(self):
        for engine in (NofNSkyline(2, 30), N1N2Skyline(2, 30)):
            stream = DataStream.synthetic("correlated", 2, 60, seed=29)
            assert feed(engine, stream) == 60
            assert engine.seen_so_far == 60


class TestStatsAccounting:
    def test_stats_survive_long_streams(self):
        engine = NofNSkyline(2, 64)
        for point in materialize("independent", 2, 500, seed=31):
            engine.append(point)
        snap = engine.stats.snapshot()
        assert snap["arrivals"] == 500
        # Every arrival past the fill phase expires at most one element,
        # and expiries only start once the window is full.
        assert snap["expiries"] <= 500 - 64
        assert 0 < snap["rn_size_mean"] <= 64
