"""Unit tests for the four baseline skyline algorithms.

Each algorithm gets targeted behavioural tests; cross-algorithm
agreement on random inputs lives in ``test_baselines_agreement.py``.
"""

from __future__ import annotations

import pytest

from repro.baselines.bnl import BNLStats, bnl_skyline
from repro.baselines.klp import klp_skyline
from repro.baselines.naive import naive_skyline, naive_skyline_youngest
from repro.baselines.sfs import SFSStats, sfs_skyline

# A hand-checked 2-d instance: skyline is {(1,5), (2,3), (4,1)}.
POINTS_2D = [
    (1.0, 5.0),  # 0: skyline
    (2.0, 3.0),  # 1: skyline
    (4.0, 1.0),  # 2: skyline
    (3.0, 4.0),  # 3: dominated by (2,3)
    (5.0, 5.0),  # 4: dominated by everything above-left
    (2.0, 4.0),  # 5: dominated by (2,3)
]
EXPECTED_2D = [0, 1, 2]

ALL_ALGORITHMS = [naive_skyline, klp_skyline, bnl_skyline, sfs_skyline]


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestCommonBehaviour:
    def test_hand_checked_instance(self, algorithm):
        assert algorithm(POINTS_2D) == EXPECTED_2D

    def test_empty_input(self, algorithm):
        assert algorithm([]) == []

    def test_single_point(self, algorithm):
        assert algorithm([(3.0, 3.0)]) == [0]

    def test_all_points_on_a_chain(self, algorithm):
        chain = [(float(i), float(i)) for i in range(5, 0, -1)]
        assert algorithm(chain) == [4]  # only (1,1) survives

    def test_anti_chain_all_survive(self, algorithm):
        anti = [(float(i), float(5 - i)) for i in range(5)]
        assert algorithm(anti) == [0, 1, 2, 3, 4]

    def test_exact_duplicates_all_reported(self, algorithm):
        # Strict dominance: duplicates never kill each other.
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert algorithm(points) == [0, 1]

    def test_one_dimension(self, algorithm):
        points = [(3.0,), (1.0,), (2.0,), (1.0,)]
        assert algorithm(points) == [1, 3]

    def test_five_dimensions(self, algorithm):
        points = [
            (1, 2, 3, 4, 5),
            (5, 4, 3, 2, 1),
            (1, 2, 3, 4, 6),   # dominated by the first
            (0, 9, 9, 9, 9),
        ]
        assert algorithm(points) == [0, 1, 3]


class TestNaiveYoungest:
    def test_duplicates_keep_only_latest(self):
        points = [(1.0, 1.0), (2.0, 2.0), (1.0, 1.0)]
        assert naive_skyline_youngest(points) == [2]

    def test_matches_strict_without_duplicates(self):
        assert naive_skyline_youngest(POINTS_2D) == EXPECTED_2D

    def test_weak_dominance_prunes_ties(self):
        # (1,2) weakly dominated by later (1,2); earlier copy dies.
        points = [(1.0, 2.0), (3.0, 1.0), (1.0, 2.0)]
        assert naive_skyline_youngest(points) == [1, 2]


class TestBNLSpecifics:
    def test_tiny_window_forces_multiple_passes(self):
        stats = BNLStats()
        points = [(float(i), float(9 - i)) for i in range(10)]  # anti-chain
        result = bnl_skyline(points, window_size=2, stats=stats)
        assert result == list(range(10))
        assert stats.passes > 1
        assert stats.overflowed > 0

    def test_unbounded_window_single_pass(self):
        stats = BNLStats()
        bnl_skyline(POINTS_2D, stats=stats)
        assert stats.passes == 1
        assert stats.overflowed == 0

    def test_window_size_validation(self):
        with pytest.raises(ValueError, match="window_size"):
            bnl_skyline(POINTS_2D, window_size=0)

    def test_dominating_late_arrival_evicts_window(self):
        points = [(5.0, 5.0), (4.0, 4.0), (1.0, 1.0)]
        assert bnl_skyline(points, window_size=2) == [2]

    def test_comparisons_counted(self):
        stats = BNLStats()
        bnl_skyline(POINTS_2D, stats=stats)
        assert stats.comparisons > 0


class TestSFSSpecifics:
    def test_custom_monotone_score(self):
        # Max coordinate is also monotone under strict dominance with
        # the sum tiebreak folded in.
        result = sfs_skyline(POINTS_2D, score=lambda p: max(p) + sum(p) / 100)
        assert result == EXPECTED_2D

    def test_comparison_count_bounded_by_skyline_size(self):
        stats = SFSStats()
        sfs_skyline(POINTS_2D, stats=stats)
        # Each point compares against at most the running skyline.
        assert stats.comparisons <= len(POINTS_2D) * len(EXPECTED_2D)

    def test_presorting_means_no_eviction_needed(self):
        # A dominated point placed first in input order must still die.
        points = [(9.0, 9.0), (1.0, 1.0)]
        assert sfs_skyline(points) == [1]

    def test_rounded_score_tie_across_a_dominance_gap(self):
        # 1.0 + 1e-38 rounds to 1.0, so both points score equally even
        # though the second strictly dominates the first; the coordinate
        # tiebreak must still sort the dominator ahead of its victim.
        points = [(1.0, 1.1754943508222875e-38), (1.0, 0.0)]
        assert sfs_skyline(points) == naive_skyline(points) == [1]


class TestKLPSpecifics:
    def test_large_2d_instance_uses_sweep(self):
        import random

        rng = random.Random(0)
        points = [(rng.random(), rng.random()) for _ in range(500)]
        assert klp_skyline(points) == naive_skyline(points)

    def test_recursion_crosses_brute_threshold(self):
        import random

        rng = random.Random(1)
        points = [tuple(rng.random() for _ in range(4)) for _ in range(300)]
        assert klp_skyline(points) == naive_skyline(points)

    def test_constant_first_coordinate_projects(self):
        points = [(1.0, a, b) for a, b in
                  [(2.0, 3.0), (3.0, 2.0), (2.5, 2.5), (4.0, 4.0)]]
        points = points * 6  # force past the brute threshold
        assert klp_skyline(points) == naive_skyline(points)

    def test_heavy_ties_on_split_coordinate(self):
        import random

        rng = random.Random(2)
        points = [
            (rng.choice([0.1, 0.2, 0.3]), rng.random(), rng.random())
            for _ in range(200)
        ]
        assert klp_skyline(points) == naive_skyline(points)
