"""Shared-memory shard replica validation: the zero-IPC read path.

Three properties carry the design (see :mod:`repro.parallel.replicas`):

* **Exact at the claimed version** — a replica answer equals what the
  publishing engine answered at the version/seen the replica is
  labelled with, no matter how far the engine has moved on since
  (including expiry churn past the snapshot).
* **Never torn** — the seqlock rejects a mid-flip buffer outright; the
  router falls back to the command-queue path instead of serving a
  corrupt snapshot.
* **No leaks** — every shared-memory segment is unlinked on ``close()``
  even after a worker is killed outright, and the resource tracker
  stays silent (no spurious "leaked shared_memory" warnings, no
  tracker ``KeyError`` tracebacks).
"""

from __future__ import annotations

import os
import signal
import struct
import subprocess
import sys
from pathlib import Path
from uuid import uuid4

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.element import StreamElement
from repro.exceptions import ShardFailureError, StructureCorruptionError
from repro.parallel import ShardedKSkyband, ShardedNofNSkyline
from repro.parallel import replicas as replicas_mod
from repro.parallel.replicas import (
    ReplicaPublisher,
    ReplicaReader,
    cleanup_replica_segments,
    pending_elements,
    replica_prefixes,
)
from repro.parallel.shard_engines import build_shard_engine

from tests.conftest import random_points

REPO_ROOT = Path(__file__).resolve().parents[1]

coord = st.integers(0, 6).map(lambda v: v / 6)


@pytest.fixture(scope="module", autouse=True)
def no_shm_leaks_across_module():
    """Whatever this module does, /dev/shm must end where it started."""
    if not os.path.isdir("/dev/shm"):
        yield
        return
    before = {f for f in os.listdir("/dev/shm") if f.startswith("rs")}
    yield
    after = {f for f in os.listdir("/dev/shm") if f.startswith("rs")}
    assert after - before == set()


def nofn_spec(capacity, stride=1, dim=2, query_cache=True):
    return {
        "kind": "nofn",
        "dim": dim,
        "capacity": capacity,
        "stride": stride,
        "rtree_max_entries": 12,
        "rtree_min_entries": 4,
        "rtree_split": "quadratic",
        "sanitize": "off",
        "query_cache": query_cache,
        "kernels": "auto",
    }


def keyed(elements):
    return [(e.kappa, tuple(e.values), e.payload) for e in elements]


def fresh_prefix():
    return replica_prefixes(uuid4().hex[:10], 1)[0]


class TestPublisherReaderRoundTrip:
    @pytest.mark.parametrize("query_cache", [True, False])
    def test_snapshot_matches_engine_everywhere(self, rng, query_cache):
        engine = build_shard_engine(nofn_spec(25, query_cache=query_cache))
        for kappa, point in enumerate(random_points(rng, 2, 80, grid=7), 1):
            engine.ingest(
                StreamElement(point, kappa, f"p{kappa}" if kappa % 3 else None)
            )
        prefix = fresh_prefix()
        publisher = ReplicaPublisher(prefix)
        try:
            assert publisher.publish(engine) is True
            # Version-checked no-op: nothing changed, nothing republished.
            assert publisher.publish(engine) is False
            reader = ReplicaReader(prefix)
            snapshot = reader.read()
            assert snapshot is not None
            assert snapshot.version == engine.structure_version
            assert snapshot.seen == engine.seen_so_far
            for stab in (1, 30, 56, 56.5, 80, 200):
                assert keyed(snapshot.stab(stab)) == keyed(
                    engine.stab_elements(stab)
                )
                assert keyed(snapshot.retained_suffix(stab)) == keyed(
                    engine.retained_suffix(stab)
                )
            # The decode is cached until the published version moves.
            assert reader.read() is snapshot
            assert reader.cached_hits >= 1
            reader.close()
        finally:
            publisher.close(unlink=True)

    def test_reader_without_publisher_is_unavailable(self):
        reader = ReplicaReader(fresh_prefix())
        assert reader.read() is None
        assert reader.unavailable == 1
        reader.close()

    def test_pending_elements_counts_round_robin_exactly(self):
        for shards in (1, 2, 3, 5):
            for seen in range(0, 30):
                for m in range(seen, 30):
                    total = sum(
                        pending_elements(seen, m, shard, shards)
                        for shard in range(shards)
                    )
                    assert total == m - seen
                    for shard in range(shards):
                        explicit = sum(
                            1
                            for kappa in range(seen + 1, m + 1)
                            if (kappa - 1) % shards == shard
                        )
                        assert (
                            pending_elements(seen, m, shard, shards)
                            == explicit
                        )


class TestStalenessSemantics:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        st.lists(st.tuples(coord, coord), min_size=4, max_size=40),
        st.integers(2, 8),
        st.randoms(use_true_random=False),
    )
    def test_replica_answers_query_scan_at_claimed_version(
        self, history, capacity, rnd
    ):
        """Interleave ingest/expiry with publishes; every replica answer
        must equal ``query_scan`` *at the version the replica claims*,
        even after the engine has ingested (and expired) far past it."""
        engine = build_shard_engine(nofn_spec(capacity))
        prefix = fresh_prefix()
        publisher = ReplicaPublisher(prefix)
        reader = ReplicaReader(prefix)
        try:
            fed = 0
            while fed < len(history):
                step = rnd.randint(1, 5)
                for point in history[fed:fed + step]:
                    fed += 1
                    engine.ingest(StreamElement(point, fed))
                publisher.publish(engine)
                snapshot = reader.read()
                assert snapshot is not None
                assert snapshot.seen == fed
                # Capture the oracle at the published version...
                captured = {}
                for n in (1, max(1, capacity // 2), capacity):
                    stab = max(1, fed - n + 1)
                    captured[stab] = keyed(engine.query_scan(n))
                # ...then march the engine (and its expiries) ahead
                # WITHOUT republishing: the replica must not move.
                ahead = min(len(history) - fed, rnd.randint(0, 6))
                for point in history[fed:fed + ahead]:
                    engine.ingest(StreamElement(point, fed + 1))
                    fed += 1
                stale = reader.read()
                assert stale is not None and stale.seen == snapshot.seen
                for stab, expected in captured.items():
                    assert keyed(stale.stab(stab)) == expected
            reader.close()
        finally:
            publisher.close(unlink=True)

    def test_lag_zero_serves_only_caught_up_replicas(self, rng):
        with ShardedNofNSkyline(
            dim=2, capacity=20, shards=2, backend="process", timeout=60.0,
            replica_lag=0,
        ) as router:
            reference_points = random_points(rng, 2, 50, grid=7)
            router.append_many(reference_points)
            first = router.query(20)
            stats = router.replica_stats()
            # The first query raced the fire-and-forget backlog: either
            # it fell back (stale) or the workers had already drained.
            assert stats["serves"] + stats["fallbacks"] >= 1
            second = router.query(20)
            assert keyed(second) == keyed(first)
            assert router.replica_stats()["serves"] >= 1

    def test_unbounded_lag_serves_each_shard_at_its_own_version(self, rng):
        points = random_points(rng, 2, 60, grid=7)
        with ShardedNofNSkyline(
            dim=2, capacity=15, shards=2, backend="process", timeout=60.0,
            replica_lag=None,
        ) as router:
            router.append_many(points)
            router.query(15)  # may serve an older (valid) prefix
            router.drain()
            readers = router._executor.replica_readers
            snapshots = [reader.read() for reader in readers]
            for shard, snapshot in enumerate(snapshots):
                assert snapshot is not None
                # Replay exactly the shard's claimed prefix through a
                # fresh engine: the replica must answer identically.
                oracle = build_shard_engine(
                    nofn_spec(15, stride=router.shards)
                )
                for kappa, point in enumerate(points, 1):
                    if kappa > snapshot.seen:
                        break
                    if (kappa - 1) % router.shards == shard:
                        oracle.ingest(StreamElement(tuple(point), kappa))
                assert snapshot.seen == oracle.seen_so_far
                for stab in (1, snapshot.seen // 2, snapshot.seen):
                    assert keyed(snapshot.stab(max(1, stab))) == keyed(
                        oracle.stab_elements(max(1, stab))
                    )


class TestTornWriteRejection:
    def test_odd_seq_is_rejected_until_the_flip_completes(self, rng):
        engine = build_shard_engine(nofn_spec(10))
        for kappa, point in enumerate(random_points(rng, 2, 15, grid=5), 1):
            engine.ingest(StreamElement(point, kappa))
        prefix = fresh_prefix()
        publisher = ReplicaPublisher(prefix)
        reader = ReplicaReader(prefix)
        try:
            publisher.publish(engine)
            good = reader.read()
            assert good is not None
            # Seed a mid-flip state: an odd sequence word means the
            # writer is between "start flip" and "finish flip".
            replicas_mod._SEQ.pack_into(
                reader._control.buf,
                replicas_mod._SEQ_OFFSET,
                publisher._seq + 1,
            )
            reader._cached = None
            assert reader.read() is None
            assert reader.torn >= 1
            # Completing the flip (restoring an even seq) heals reads.
            replicas_mod._SEQ.pack_into(
                reader._control.buf,
                replicas_mod._SEQ_OFFSET,
                publisher._seq,
            )
            healed = reader.read()
            assert healed is not None
            assert keyed(healed.stab(1)) == keyed(good.stab(1))
            reader.close()
        finally:
            publisher.close(unlink=True)

    def test_router_falls_back_on_torn_replica(self, rng):
        with ShardedNofNSkyline(
            dim=2, capacity=12, shards=2, backend="process", timeout=60.0
        ) as router:
            router.append_many(random_points(rng, 2, 30, grid=6))
            expected = keyed(router.query(12))
            assert keyed(router.query(12)) == expected
            reader = router._executor.replica_readers[0]
            header = reader.header()
            replicas_mod._SEQ.pack_into(
                reader._control.buf,
                replicas_mod._SEQ_OFFSET,
                header.seq + 1,
            )
            reader._cached = None
            fallbacks = router.replica_stats()["fallbacks"]
            # The version check rejects the mid-flip buffer; the query
            # falls back to IPC and still answers exactly.
            assert keyed(router.query(12)) == expected
            stats = router.replica_stats()
            assert stats["fallbacks"] == fallbacks + 1
            assert stats["shards"][0]["torn"] >= 1


class TestSanitizerReplicaCheck:
    def test_full_mode_runs_clean_with_replicas(self, rng):
        with ShardedNofNSkyline(
            dim=2, capacity=12, shards=2, backend="process", timeout=60.0,
            sanitize="full",
        ) as router:
            for point in random_points(rng, 2, 25, grid=6):
                router.append(point)
            router.check_invariants()
        with ShardedKSkyband(
            dim=2, capacity=10, k=2, shards=2, backend="process",
            timeout=60.0, sanitize="full",
        ) as band:
            band.append_many(random_points(rng, 2, 25, grid=6))
            band.check_invariants()

    def test_seeded_corruption_is_caught(self, rng):
        with ShardedNofNSkyline(
            dim=2, capacity=15, shards=2, backend="process", timeout=60.0
        ) as router:
            router.append_many(random_points(rng, 2, 40, grid=7))
            router.query(15)
            router.query(15)  # replicas published and current
            reader = router._executor.replica_readers[0]
            header = reader.header()
            slot = header.active
            segment = replicas_mod._open_segment(
                replicas_mod._slot_name(
                    reader.prefix, slot, header.gens[slot]
                ),
                create=False,
            )
            try:
                n, _, _ = replicas_mod._DATA_HEADER.unpack_from(
                    segment.buf, 0
                )
                assert n >= 1
                # Rewrite the interval kappa table in place: the replica
                # now reports the wrong identities for right geometry.
                offset = replicas_mod._DATA_HEADER.size + 16 * n
                for i in range(n):
                    struct.pack_into(
                        "<q", segment.buf, offset + 8 * i, 10_000 + i
                    )
            finally:
                segment.close()
            reader._cached = None
            with pytest.raises(StructureCorruptionError) as excinfo:
                router.check_invariants()
            assert excinfo.value.report.invariant == "shard-replica"


class TestCrashCleanup:
    def test_kill_dash_nine_leaves_no_segments(self, rng):
        router = ShardedNofNSkyline(
            dim=2, capacity=10, shards=2, backend="process", timeout=30.0
        )
        try:
            router.append_many(random_points(rng, 2, 20, grid=5))
            router.query(10)
            prefixes = [
                reader.prefix for reader in router._executor.replica_readers
            ]
            victim = router._executor._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            # New work routed to the dead shard surfaces the failure...
            router.append((0.9, 0.9))  # kappa 21 -> shard 0
            with pytest.raises(ShardFailureError):
                router.query(10)
        finally:
            router.close()
        # ...and close() still reclaims every segment, including the
        # killed worker's: names derive from the surviving control
        # blocks, not from worker-side state.
        if os.path.isdir("/dev/shm"):
            leaked = [
                name
                for name in os.listdir("/dev/shm")
                for prefix in prefixes
                if name.startswith(prefix)
            ]
            assert leaked == []

    def test_cleanup_is_idempotent_and_crash_safe(self):
        prefix = fresh_prefix()
        publisher = ReplicaPublisher(prefix)
        engine = build_shard_engine(nofn_spec(5))
        engine.ingest(StreamElement((0.5, 0.5), 1))
        publisher.publish(engine)
        # Simulate a crashed owner: nobody calls close(unlink=True);
        # the janitor derives the slot names from the control block.
        cleanup_replica_segments([prefix])
        cleanup_replica_segments([prefix])  # idempotent on nothing
        reader = ReplicaReader(prefix)
        assert reader.read() is None
        reader.close()
        publisher.close()  # detach the (already unlinked) segments

    def test_no_resource_tracker_noise_after_worker_kill(self):
        script = """
import os, signal
from repro.parallel import ShardedNofNSkyline

router = ShardedNofNSkyline(
    dim=2, capacity=20, shards=2, backend="process", timeout=30.0
)
router.append_many([[(i * 0.37) % 1.0, (i * 0.61) % 1.0] for i in range(30)])
router.query(10)
router.query(10)
victim = router._executor._processes[0]
os.kill(victim.pid, signal.SIGKILL)
victim.join(timeout=10.0)
router.close()
print("clean-exit")
"""
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=180,
            env=env,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "clean-exit" in result.stdout
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "leaked" not in result.stderr, result.stderr
        assert "KeyError" not in result.stderr, result.stderr
