"""Property-based validation of the n-of-N engine against oracles.

The central invariants from DESIGN.md §6:

* ``query(n)`` equals the quadratic oracle's skyline of the last ``n``
  arrivals, for every ``n``, at every point of the stream;
* ``R_N`` equals the non-redundancy definition *and* the paper's
  Theorem 2 mapping (skyline in (d+1)-dimensional space);
* the dominance graph is a forest whose edges connect each element to
  its youngest older weak dominator.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NofNSkyline
from repro.core.dominance import weakly_dominates

from tests.conftest import (
    reference_rn_kappas,
    reference_rn_via_mapping,
    window_skyline_kappas,
)

# Coarse-grained coordinates provoke ties and duplicates on purpose.
coord = st.integers(0, 7).map(lambda v: v / 7)


def streams(max_dim=4, max_len=60):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.lists(
            st.tuples(*[coord] * d).map(tuple), min_size=1, max_size=max_len
        )
    )


class TestQueryOracle:
    @settings(max_examples=50, deadline=None)
    @given(streams(), st.integers(1, 20))
    def test_final_queries_match_oracle(self, history, capacity):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        for n in range(1, capacity + 1):
            assert [e.kappa for e in engine.query(n)] == (
                window_skyline_kappas(history, min(n, len(history)))
            ), f"n={n}"

    @settings(max_examples=25, deadline=None)
    @given(streams(max_dim=3, max_len=40), st.integers(1, 10))
    def test_queries_match_oracle_at_every_step(self, history, capacity):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        prefix = []
        for point in history:
            prefix.append(point)
            engine.append(point)
            for n in (1, capacity // 2 or 1, capacity):
                assert [e.kappa for e in engine.query(n)] == (
                    window_skyline_kappas(prefix, min(n, len(prefix)))
                )


class TestQueryScanEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(streams(max_dim=3), st.integers(1, 15))
    def test_query_scan_matches_stabbing_query(self, history, capacity):
        """Theorem 3 applied by scan must equal the interval-tree stab
        (two independent implementations of the same theorem)."""
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        for n in range(1, capacity + 1):
            assert engine.query_scan(n) == engine.query(n), f"n={n}"


class TestRNMinimality:
    @settings(max_examples=50, deadline=None)
    @given(streams(), st.integers(1, 15))
    def test_rn_matches_definition(self, history, capacity):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        got = [e.kappa for e in engine.non_redundant()]
        assert got == reference_rn_kappas(history, capacity)

    @settings(max_examples=50, deadline=None)
    @given(streams(), st.integers(1, 15))
    def test_rn_matches_theorem2_mapping(self, history, capacity):
        """R_N == skyline of {(x, M - kappa)} in (d+1)-space."""
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        got = [e.kappa for e in engine.non_redundant()]
        assert got == reference_rn_via_mapping(history, capacity)

    @settings(max_examples=30, deadline=None)
    @given(streams(max_dim=3), st.integers(1, 15))
    def test_every_rn_member_answers_some_query(self, history, capacity):
        """Theorem 1(2): each non-redundant element is a skyline point
        for some n <= N."""
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        reported = set()
        for n in range(1, capacity + 1):
            reported.update(e.kappa for e in engine.query(n))
        assert reported == {e.kappa for e in engine.non_redundant()}


class TestDominanceGraphShape:
    @settings(max_examples=40, deadline=None)
    @given(streams(max_dim=3), st.integers(1, 12))
    def test_edges_point_to_youngest_older_dominator(self, history, capacity):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        rn = {e.kappa: e.values for e in engine.non_redundant()}
        for parent_kappa, child_kappa in engine.dominance_graph_edges():
            child_values = rn[child_kappa]
            dominators = [
                k
                for k, values in rn.items()
                if k < child_kappa and weakly_dominates(values, child_values)
            ]
            if parent_kappa == 0:
                assert not dominators
            else:
                assert parent_kappa == max(dominators)

    @settings(max_examples=40, deadline=None)
    @given(streams(max_dim=3), st.integers(1, 12))
    def test_graph_is_a_forest(self, history, capacity):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
        edges = engine.dominance_graph_edges()
        children = [child for _, child in edges]
        assert len(children) == len(set(children)), "one incoming edge each"
        engine.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(streams(max_dim=3, max_len=50), st.integers(1, 10))
    def test_invariants_hold_at_every_step(self, history, capacity):
        engine = NofNSkyline(dim=len(history[0]), capacity=capacity)
        for point in history:
            engine.append(point)
            engine.check_invariants()
