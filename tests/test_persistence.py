"""Tests for engine snapshot / restore."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import N1N2Skyline, NofNSkyline, TimeWindowSkyline
from repro.core.persistence import SnapshotError, dumps, loads, restore, snapshot
from repro.streams import materialize


class TestNofNRoundTrip:
    def test_queries_survive_round_trip(self):
        engine = NofNSkyline(dim=2, capacity=50)
        for point in materialize("anticorrelated", 2, 120, seed=1):
            engine.append(point)
        clone = restore(snapshot(engine))
        for n in range(1, 51):
            assert [e.kappa for e in clone.query(n)] == [
                e.kappa for e in engine.query(n)
            ]
        clone.check_invariants()

    def test_clone_keeps_evolving_identically(self):
        points = materialize("independent", 3, 150, seed=2)
        engine = NofNSkyline(dim=3, capacity=40)
        for point in points[:100]:
            engine.append(point)
        clone = restore(snapshot(engine))
        for point in points[100:]:
            engine.append(point)
            clone.append(point)
        assert engine.dominance_graph_edges() == clone.dominance_graph_edges()
        assert [e.kappa for e in engine.skyline()] == [
            e.kappa for e in clone.skyline()
        ]

    def test_payloads_and_stats_preserved(self):
        engine = NofNSkyline(dim=1, capacity=5)
        engine.append((1.0,), payload={"deal": 1})
        engine.query(1)
        clone = restore(snapshot(engine))
        assert clone.stats.arrivals == 1
        assert clone.stats.queries == 1  # the clone's own queries: none yet
        [element] = clone.skyline()
        assert element.payload == {"deal": 1}

    def test_json_round_trip(self):
        engine = NofNSkyline(dim=2, capacity=10)
        for point in materialize("correlated", 2, 30, seed=3):
            engine.append(point)
        clone = loads(dumps(engine))
        assert [e.kappa for e in clone.skyline()] == [
            e.kappa for e in engine.skyline()
        ]

    def test_empty_engine_round_trip(self):
        clone = restore(snapshot(NofNSkyline(dim=2, capacity=7)))
        assert clone.seen_so_far == 0
        assert clone.skyline() == []
        clone.append((0.5, 0.5))
        assert [e.kappa for e in clone.skyline()] == [1]


class TestTimeWindowRoundTrip:
    def test_clock_and_horizon_preserved(self):
        engine = TimeWindowSkyline(dim=2, horizon=10.0)
        engine.append((0.5, 0.5), timestamp=1.5)
        engine.append((0.2, 0.8), timestamp=3.0)
        clone = restore(snapshot(engine))
        assert isinstance(clone, TimeWindowSkyline)
        assert clone.now == 3.0
        assert clone.horizon == 10.0
        assert [e.kappa for e in clone.query_last(5.0)] == [
            e.kappa for e in engine.query_last(5.0)
        ]
        # Evolution continues: timestamps must still increase.
        clone.append((0.1, 0.1), timestamp=4.0)
        with pytest.raises(ValueError):
            clone.append((0.3, 0.3), timestamp=4.0)


class TestN1N2RoundTrip:
    def test_all_slices_survive_round_trip(self):
        engine = N1N2Skyline(dim=2, capacity=20)
        for point in materialize("anticorrelated", 2, 50, seed=4):
            engine.append(point)
        clone = restore(snapshot(engine))
        for n1 in range(1, 21, 3):
            for n2 in range(n1, 21, 3):
                assert [e.kappa for e in clone.query(n1, n2)] == [
                    e.kappa for e in engine.query(n1, n2)
                ]
        clone.check_invariants()

    def test_ancestors_preserved(self):
        engine = N1N2Skyline(dim=2, capacity=10)
        for point in materialize("independent", 2, 25, seed=5):
            engine.append(point)
        clone = restore(snapshot(engine))
        for element in engine.window_elements():
            assert clone.ancestors(element.kappa) == (
                engine.ancestors(element.kappa)
            )

    def test_clone_keeps_evolving_identically(self):
        points = materialize("independent", 2, 80, seed=6)
        engine = N1N2Skyline(dim=2, capacity=15)
        for point in points[:50]:
            engine.append(point)
        clone = restore(snapshot(engine))
        for point in points[50:]:
            engine.append(point)
            clone.append(point)
        assert [e.kappa for e in clone.query(3, 12)] == [
            e.kappa for e in engine.query(3, 12)
        ]
        clone.check_invariants()


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(SnapshotError):
            restore("not a dict")  # type: ignore[arg-type]

    def test_rejects_unknown_version(self):
        snap = snapshot(NofNSkyline(dim=1, capacity=2))
        snap["format"] = 99
        with pytest.raises(SnapshotError, match="format"):
            restore(snap)

    def test_rejects_unknown_kind(self):
        snap = snapshot(NofNSkyline(dim=1, capacity=2))
        snap["kind"] = "mystery"
        with pytest.raises(SnapshotError, match="kind"):
            restore(snap)

    def test_rejects_missing_parent(self):
        engine = NofNSkyline(dim=1, capacity=4)
        engine.append((1.0,))
        engine.append((2.0,))  # child of kappa 1
        snap = snapshot(engine)
        snap["records"] = [r for r in snap["records"] if r["kappa"] != 1]
        with pytest.raises(SnapshotError, match="missing"):
            restore(snap)

    def test_rejects_unsupported_engine(self):
        with pytest.raises(SnapshotError, match="unsupported"):
            snapshot(object())  # type: ignore[arg-type]


class TestPropertyRoundTrip:
    coord = st.integers(0, 6).map(lambda v: v / 6)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=40),
        st.integers(1, 10),
    )
    def test_nofn_round_trip_equivalence(self, history, capacity):
        engine = NofNSkyline(dim=2, capacity=capacity)
        for point in history:
            engine.append(point)
        clone = restore(snapshot(engine))
        clone.check_invariants()
        for n in range(1, capacity + 1):
            assert [e.kappa for e in clone.query(n)] == [
                e.kappa for e in engine.query(n)
            ]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=40),
        st.integers(1, 10),
    )
    def test_n1n2_round_trip_equivalence(self, history, capacity):
        engine = N1N2Skyline(dim=2, capacity=capacity)
        for point in history:
            engine.append(point)
        clone = restore(snapshot(engine))
        clone.check_invariants()
        for n1 in range(1, capacity + 1, 2):
            for n2 in range(n1, capacity + 1, 2):
                assert [e.kappa for e in clone.query(n1, n2)] == [
                    e.kappa for e in engine.query(n1, n2)
                ]


class TestRTreeConfigRoundTrip:
    """Snapshots must record the R-tree tuning (fan-out bounds and split
    policy) so a restored engine evolves identically — and must still
    accept older snapshots that predate the ``rtree`` section."""

    coord = st.integers(0, 6).map(lambda v: v / 6)

    FANOUTS = st.tuples(st.integers(4, 16), st.integers(2, 5)).filter(
        lambda t: t[1] * 2 <= t[0]
    )

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=40),
        st.integers(1, 10),
        FANOUTS,
        st.sampled_from(["quadratic", "rstar"]),
    )
    def test_nofn_tuning_round_trips(self, history, capacity, fanout, split):
        max_entries, min_entries = fanout
        engine = NofNSkyline(
            dim=2,
            capacity=capacity,
            rtree_max_entries=max_entries,
            rtree_min_entries=min_entries,
            rtree_split=split,
        )
        for point in history:
            engine.append(point)
        clone = restore(snapshot(engine))
        assert clone._rtree.max_entries == max_entries
        assert clone._rtree.min_entries == min_entries
        assert clone._rtree.split_policy == split
        clone.check_invariants()
        for n in range(1, capacity + 1):
            assert [e.kappa for e in clone.query(n)] == [
                e.kappa for e in engine.query(n)
            ]

    def test_timewindow_tuning_round_trips(self):
        engine = TimeWindowSkyline(
            dim=2,
            horizon=5.0,
            rtree_max_entries=6,
            rtree_min_entries=3,
            rtree_split="rstar",
        )
        for i, point in enumerate(materialize("independent", 2, 60, seed=4)):
            engine.append(point, float(i + 1))
        clone = restore(snapshot(engine))
        assert clone._rtree.max_entries == 6
        assert clone._rtree.min_entries == 3
        assert clone._rtree.split_policy == "rstar"
        assert [e.kappa for e in clone.skyline()] == [
            e.kappa for e in engine.skyline()
        ]

    def test_n1n2_tuning_round_trips(self):
        engine = N1N2Skyline(
            dim=2,
            capacity=20,
            rtree_max_entries=8,
            rtree_min_entries=4,
            rtree_split="rstar",
        )
        for point in materialize("anticorrelated", 2, 50, seed=9):
            engine.append(point)
        clone = restore(snapshot(engine))
        assert clone._rtree.max_entries == 8
        assert clone._rtree.min_entries == 4
        assert clone._rtree.split_policy == "rstar"
        for n1, n2 in ((1, 20), (5, 10), (20, 20)):
            assert [e.kappa for e in clone.query(n1, n2)] == [
                e.kappa for e in engine.query(n1, n2)
            ]

    def test_old_snapshot_without_rtree_section_restores(self):
        """Snapshots written before the rtree section existed must load
        with the default tuning."""
        engine = NofNSkyline(dim=2, capacity=10)
        for point in materialize("independent", 2, 30, seed=3):
            engine.append(point)
        snap = snapshot(engine)
        del snap["rtree"]
        clone = restore(snap)
        assert clone._rtree.max_entries == 12
        assert clone._rtree.min_entries == 4
        assert clone._rtree.split_policy == "quadratic"
        assert [e.kappa for e in clone.skyline()] == [
            e.kappa for e in engine.skyline()
        ]

    def test_malformed_rtree_section_is_rejected(self):
        engine = NofNSkyline(dim=2, capacity=5)
        engine.append((0.5, 0.5))
        snap = snapshot(engine)
        snap["rtree"] = "bogus"
        with pytest.raises(SnapshotError):
            restore(snap)

    def test_clone_with_tuning_keeps_evolving_identically(self):
        points = materialize("anticorrelated", 2, 120, seed=6)
        engine = NofNSkyline(
            dim=2, capacity=30, rtree_max_entries=5, rtree_min_entries=2,
            rtree_split="rstar",
        )
        for point in points[:80]:
            engine.append(point)
        clone = restore(snapshot(engine))
        for point in points[80:]:
            engine.append(point)
            clone.append(point)
        assert engine.dominance_graph_edges() == clone.dominance_graph_edges()
        assert [e.kappa for e in engine.skyline()] == [
            e.kappa for e in clone.skyline()
        ]
